//! Quickstart: build a composable infrastructure and touch far memory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds one host + one CXL switch + one FAM module, issues a few
//! load/store pairs across the fabric, and prints the observed latencies —
//! the smallest end-to-end use of the simulator.

use fcc::fabric::adapter::{HostCompletion, HostOp, HostRequest};
use fcc::fabric::endpoint::PipelinedMemory;
use fcc::fabric::topology::{self, TopologySpec, FAM_BASE};
use fcc::sim::{Component, Ctx, Engine, Msg, SimTime};

/// Collects completions.
struct Sink {
    done: Vec<HostCompletion>,
}

impl Component for Sink {
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        // The sink is only wired to receive completions.
        #[allow(clippy::expect_used)]
        self.done
            .push(msg.downcast::<HostCompletion>().expect("completion"));
    }
}

fn main() {
    let mut engine = Engine::new(42);
    // One host, one switch, one 1 GiB CXL Type 3 memory module.
    let fam = Box::new(PipelinedMemory::new(
        SimTime::from_ns(641.0),
        SimTime::from_ns(679.0),
        SimTime::from_ns(120.0),
        1 << 30,
    ));
    let topo = topology::single_switch(&mut engine, TopologySpec::default(), 1, vec![fam]);
    let sink = engine.add_component("sink", Sink { done: vec![] });
    println!(
        "composable infrastructure: {} host(s), {} switch(es), {} device(s), {} B of FAM",
        topo.hosts.len(),
        topo.switches.len(),
        topo.devices.len(),
        topo.addr_map.total_bytes()
    );
    // Issue four reads and four writes across the fabric.
    for i in 0..4u64 {
        engine.post(
            topo.host().fha,
            SimTime::ZERO,
            HostRequest {
                op: HostOp::Read {
                    addr: FAM_BASE + i * 64,
                    bytes: 64,
                },
                tag: i,
                reply_to: sink,
            },
        );
        engine.post(
            topo.host().fha,
            SimTime::ZERO,
            HostRequest {
                op: HostOp::Write {
                    addr: FAM_BASE + 4096 + i * 64,
                    bytes: 64,
                },
                tag: 100 + i,
                reply_to: sink,
            },
        );
    }
    engine.run_until_idle();
    println!(
        "simulated {} events in {}",
        engine.events_dispatched(),
        engine.now()
    );
    for c in &engine.component::<Sink>(sink).done {
        println!(
            "  {} tag {:>3}: {:>8.1} ns",
            if c.was_read { "load " } else { "store" },
            c.tag,
            c.latency().as_ns()
        );
    }
}
