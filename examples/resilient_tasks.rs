//! Resilient tasks: idempotent re-execution across passive failure
//! domains (design principle #3).
//!
//! ```text
//! cargo run --release --example resilient_tasks
//! ```
//!
//! Builds a fork-join DAG, injects power-domain failures, and compares
//! idempotent re-execution with a checkpoint/restore baseline. Also
//! demonstrates the compilation side: a task that overwrites its own
//! input is detected, versioned into an idempotent pair, and survives a
//! crash that corrupts the naive version.

use fcc::proto::addr::AddrRange;
use fcc::sim::SimTime;
use fcc::unifabric::task::{
    analyze_idempotence, make_idempotent, DagRuntime, Executor, Half, RecoveryMode, TaskSpec,
};
use fcc::workloads::failure::FailureSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn executors(n: usize) -> Vec<Executor> {
    (0..n)
        .map(|d| Executor {
            domain: d,
            speed: 1.0,
            half: Half::Bottom,
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    // A 3-stage fork-join DAG of 50 µs tasks.
    let mut tasks = Vec::new();
    let mut id = 0u32;
    let mut prev: Option<u32> = None;
    for _stage in 0..3 {
        let mut layer = Vec::new();
        for _ in 0..6 {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            tasks.push(TaskSpec::new(id, SimTime::from_us(50.0), deps));
            layer.push(id);
            id += 1;
        }
        tasks.push(TaskSpec::new(id, SimTime::from_us(25.0), layer));
        prev = Some(id);
        id += 1;
    }
    let failures = FailureSchedule::draw(
        4,
        SimTime::from_us(300.0),
        SimTime::from_us(20.0),
        SimTime::from_ms(10.0),
        &mut rng,
    );
    println!(
        "injected {} failures across 4 power domains",
        failures.events().len()
    );
    let idem = DagRuntime::new(executors(4), RecoveryMode::Idempotent).run(&tasks, &failures);
    let ckpt = DagRuntime::new(
        executors(4),
        RecoveryMode::Checkpoint {
            interval: SimTime::from_us(10.0),
            cost: SimTime::from_us(2.0),
        },
    )
    .run(&tasks, &failures);
    println!("idempotent re-execution:");
    println!(
        "  makespan {:.0} us, wasted {:.0} us, restarts {}, overhead 0 us, correct: {}",
        idem.makespan.as_us(),
        idem.wasted_work.as_us(),
        idem.reexecutions,
        idem.correct
    );
    println!("checkpoint/restore baseline:");
    println!(
        "  makespan {:.0} us, wasted {:.0} us, restarts {}, overhead {:.0} us, correct: {}",
        ckpt.makespan.as_us(),
        ckpt.wasted_work.as_us(),
        ckpt.reexecutions,
        ckpt.checkpoint_overhead.as_us(),
        ckpt.correct
    );
    // The compilation framework: clobber detection and output versioning.
    let mut in_place = TaskSpec::new(0, SimTime::from_us(50.0), vec![]);
    in_place.reads = vec![AddrRange::new(0, 4096)];
    in_place.writes = vec![AddrRange::new(0, 4096)];
    let report = analyze_idempotence(&in_place);
    println!(
        "\nin-place task: idempotent = {}, clobbered regions = {:?}",
        report.is_idempotent(),
        report.clobbers
    );
    let versioned = make_idempotent(&in_place, 0x10_0000, 99);
    println!(
        "after output versioning: {} tasks, all idempotent = {}",
        versioned.len(),
        versioned
            .iter()
            .all(|t| analyze_idempotence(t).is_idempotent())
    );
    let crash = FailureSchedule::explicit(vec![fcc::workloads::failure::FailureEvent {
        at: SimTime::from_us(25.0),
        domain: 0,
        recovered_at: SimTime::from_us(30.0),
    }]);
    let single = DagRuntime::new(executors(1), RecoveryMode::Idempotent);
    let naive = single.run(std::slice::from_ref(&in_place), &crash);
    let fixed = single.run(&versioned, &crash);
    println!(
        "crash mid-task: naive re-execution correct = {}, versioned correct = {}",
        naive.correct, fixed.correct
    );
}
