//! Baseband uplink: the §5 case-study pipeline, end to end.
//!
//! ```text
//! cargo run --release --example baseband_uplink
//! ```
//!
//! Runs the real MIMO uplink receive chain (FFT → zero-forcing
//! equalization → QAM demapping → Viterbi decoding) across an SNR sweep,
//! then prints the UniFabric task decomposition the case study ports onto
//! fabric-attached accelerators.

use fcc::baseband::modulation::Modulation;
use fcc::baseband::pipeline::UplinkPipeline;
use fcc::sim::SimTime;
use fcc::unifabric::task::analyze_idempotence;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2);
    let pipeline = UplinkPipeline {
        fft_size: 64,
        streams: 2,
        antennas: 4,
        modulation: Modulation::Qam16,
        symbols_per_frame: 4,
    };
    println!(
        "uplink: {} streams x {} antennas, {}-pt FFT, 16-QAM, rate-1/2 K=7 conv. code",
        pipeline.streams, pipeline.antennas, pipeline.fft_size
    );
    println!(
        "payload: {} information bits per stream per frame\n",
        pipeline.payload_bits_per_stream()
    );
    println!("SNR sweep (5 frames each):");
    for snr_db in [0.0, 5.0, 10.0, 15.0, 20.0, 30.0] {
        let mut errors = 0;
        let mut total = 0;
        for _ in 0..5 {
            let frame = pipeline.generate_frame(snr_db, &mut rng);
            let report = pipeline.process(&frame);
            errors += report.bit_errors;
            total += report.total_bits;
        }
        println!(
            "  {snr_db:>5.1} dB: BER {:.5} ({errors}/{total} bits)",
            errors as f64 / total as f64
        );
    }
    // The UniFabric port: kernel task graph with real data footprints.
    let tasks = pipeline.build_tasks(0x1000_0000, 0x2000_0000, 0x3000_0000, SimTime::from_us(1.0));
    println!(
        "\nUniFabric task graph for one frame ({} tasks):",
        tasks.len()
    );
    for t in &tasks {
        let reads: u64 = t.reads.iter().map(|r| r.len).sum();
        let writes: u64 = t.writes.iter().map(|w| w.len).sum();
        println!(
            "  task {:>2?}: compute {:>6.2} us, reads {:>5} B, writes {:>5} B, \
             deps {:?}, idempotent: {}",
            t.id,
            t.compute.as_us(),
            reads,
            writes,
            t.deps,
            analyze_idempotence(t).is_idempotent()
        );
    }
}
