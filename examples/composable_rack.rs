//! Composable rack: the paper's Figure 1, discovered and orchestrated.
//!
//! ```text
//! cargo run --release --example composable_rack
//! ```
//!
//! Builds two host servers, two cross-linked fabric switches, two FAM
//! chassis and one FAA chassis; lets the fabric manager discover the
//! topology and fill the switching tables; then demonstrates the FCC
//! control plane: a bandwidth reservation through the central arbiter on
//! a dedicated lane, enforced while both hosts hammer the same chassis.

use fcc::fabric::arbiter::{ArbiterOp, FabricArbiter};
use fcc::fabric::manager::StartDiscovery;
use fcc::fabric::switch::{FabricSwitch, FlowId};
use fcc::fabric::topology::{self, TopologySpec};
use fcc::sim::{Component, Ctx, Engine, Msg, SimTime};
use fcc::unifabric::arbiter_client::{ArbiterClient, ClientRequest, FutureResolved};

struct Waiter;

impl Component for Waiter {
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        // This waiter is only ever wired to receive FutureResolved.
        #[allow(clippy::expect_used)]
        let f = msg.downcast::<FutureResolved>().expect("future");
        println!(
            "  distributed future {} resolved: {}",
            f.future_id,
            if f.ok { "granted" } else { "denied" }
        );
    }
}

fn main() {
    let mut engine = Engine::new(7);
    let topo = topology::figure1(&mut engine, TopologySpec::default());
    println!(
        "figure-1 rack: {} hosts, {} switches, {} devices",
        topo.hosts.len(),
        topo.switches.len(),
        topo.devices.len()
    );
    // Fabric manager: discovery + routing-table fill.
    // `figure1` always installs a fabric manager.
    #[allow(clippy::expect_used)]
    let manager = topo.manager.expect("figure1 builds a manager");
    engine.post(manager, SimTime::ZERO, StartDiscovery);
    engine.run_until_idle();
    for (i, &sw) in topo.switches.iter().enumerate() {
        let s = engine.component::<FabricSwitch>(sw);
        println!(
            "  fs{}: {} ports, {} PBR routes installed by the manager",
            i + 1,
            s.port_count(),
            s.routing.pbr_entries()
        );
    }
    // Central arbiter on a dedicated 100 ns lane: host 1 reserves
    // bandwidth toward the first rDIMM of FAM chassis 2.
    let flow = FlowId {
        src: topo.hosts[0].node,
        dst: topo.devices[3].node,
    };
    let mut arb = FabricArbiter::new(SimTime::from_ns(100.0));
    // The flow crosses fs1's inter-switch port (port 0 by construction).
    arb.register_path(flow, vec![(topo.switches[0], 0)]);
    arb.set_capacity((topo.switches[0], 0), 100.0);
    let arb = engine.add_component("arbiter", arb);
    let client = engine.add_component(
        "arbiter-client",
        ArbiterClient::new(arb, SimTime::from_ns(100.0)),
    );
    let waiter = engine.add_component("waiter", Waiter);
    let t = engine.now();
    engine.post(
        client,
        t,
        ClientRequest {
            op: ArbiterOp::Reserve {
                flow,
                gbps: 40.0,
                burst_bytes: 64 * 1024,
            },
            future_id: 1,
            reply_to: waiter,
        },
    );
    engine.post(
        client,
        t + SimTime::from_us(1.0),
        ClientRequest {
            op: ArbiterOp::Query { flow },
            future_id: 2,
            reply_to: waiter,
        },
    );
    engine.run_until_idle();
    let c = engine.component::<ArbiterClient>(client);
    println!(
        "  control-lane RTT: {:.0} ns (the paper argues ≤200 ns makes \
         dedicated lanes cheap)",
        c.rtt.summary_ns().mean
    );
    println!(
        "done at {} after {} events",
        engine.now(),
        engine.events_dispatched()
    );
}
