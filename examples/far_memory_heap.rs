//! Far-memory heap: the unified heap manager of design principle #2.
//!
//! ```text
//! cargo run --release --example far_memory_heap
//! ```
//!
//! Allocates a skewed object population across host-local memory and
//! three fabric-attached node types, then lets the temperature profiler
//! and migration runtime pull the hot set to the fast tiers while cold
//! objects sink to the expanders.

use fcc::memnode::profile::{MemNodeKind, MemNodeProfile};
use fcc::unifabric::heap::{FabricBox, HeapNodeCfg, PlacementHint, UnifiedHeap};
use fcc::workloads::access::ZipfStream;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    // Four memory nodes: local DRAM (small), a CXL expander, a CC-NUMA
    // node and a COMA node.
    let mut heap = UnifiedHeap::new(vec![
        HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::HostLocal, 256 * 1024),
        },
        HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, 1 << 30),
        },
        HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::CcNuma, 1 << 30),
        },
        HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::Coma, 1 << 28),
        },
    ]);
    let objects: Vec<FabricBox> = (0..512)
        // The demo allocates far less than the configured capacity.
        .map(|_| {
            #[allow(clippy::expect_used)]
            heap.alloc(4096, PlacementHint::Auto).expect("capacity")
        })
        .collect();
    println!(
        "allocated {} x 4 KiB objects across {} nodes (local tier fits {})",
        objects.len(),
        heap.node_count(),
        256 * 1024 / 4096
    );
    let mut zipf = ZipfStream::new(objects.len() as u64, 1.1);
    let mut epoch_cost = fcc::sim::SimTime::ZERO;
    let mut epoch_ops = 0u64;
    for epoch in 0..5 {
        for _ in 0..20_000 {
            let obj = objects[zipf.next(&mut rng) as usize];
            let write = rng.gen_bool(0.3);
            // Objects are never freed in this demo.
            #[allow(clippy::expect_used)]
            let cost = heap.access(obj, 0, write).expect("live");
            epoch_cost += cost;
            epoch_ops += 1;
        }
        let mean = epoch_cost.as_ns() / epoch_ops as f64;
        let plan = heap.rebalance();
        println!(
            "epoch {epoch}: mean access {:>6.0} ns | rebalance moved {} objects ({} KiB)",
            mean,
            plan.moves.len(),
            plan.bytes >> 10
        );
        epoch_cost = fcc::sim::SimTime::ZERO;
        epoch_ops = 0;
        for idx in 0..heap.node_count() {
            println!(
                "    node {idx} ({:?}): {:>6} KiB in use",
                heap.node_profile(idx).kind,
                heap.node_used(idx) >> 10
            );
        }
    }
    println!(
        "lifetime: {} migrations, {} KiB moved",
        heap.migrations,
        heap.bytes_migrated >> 10
    );
}
