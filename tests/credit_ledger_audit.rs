//! End-to-end credit-conservation audit over a real topology.
//!
//! Drives traffic through a two-stage switch chain until the event queue
//! drains, then sweeps every switch with [`fcc::fabric::audit_topology`]:
//! each port's link-layer ledger must balance (credits granted ==
//! consumed + available, per class) and each ramp-up allocator must be
//! inside its configured band. A leak anywhere — a lost CreditUpdate, a
//! double release, an allocator oversend — shows up as a named finding.
//! The same quiescent point must also report no deadlock.

use fcc::fabric::adapter::{HostCompletion, HostOp, HostRequest};
use fcc::fabric::endpoint::PipelinedMemory;
use fcc::fabric::topology::{self, StageSpec, TopologySpec, FAM_BASE};
use fcc::fabric::{audit_topology, AllocPolicy};
use fcc::sim::{Component, Ctx, Engine, Msg, SimTime};

struct Sink {
    done: usize,
}

impl Component for Sink {
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        // The sink is only wired to receive completions.
        #[allow(clippy::expect_used)]
        let _ = msg.downcast::<HostCompletion>().expect("hc");
        self.done += 1;
    }
}

fn fam() -> Box<PipelinedMemory> {
    Box::new(PipelinedMemory::new(
        SimTime::from_ns(641.0),
        SimTime::from_ns(679.0),
        SimTime::from_ns(120.0),
        1 << 26,
    ))
}

#[test]
fn quiescent_chain_passes_credit_audit_and_reports_no_deadlock() {
    let mut engine = Engine::new(0xAE);
    let mut spec = TopologySpec::default();
    // Ramp-up allocation so the audit exercises the allocator bands too.
    spec.switch.allocation = AllocPolicy::default_ramp_up();
    let topo = topology::chain(
        &mut engine,
        spec,
        vec![
            StageSpec {
                n_hosts: 2,
                devices: vec![],
            },
            StageSpec {
                n_hosts: 0,
                devices: vec![fam()],
            },
        ],
    );
    let sink = engine.add_component("sink", Sink { done: 0 });
    let base = FAM_BASE;
    let n = 64u64;
    for i in 0..n {
        let host = &topo.hosts[(i % 2) as usize];
        engine.post(
            host.fha,
            SimTime::from_ns(i as f64 * 3.0),
            HostRequest {
                op: if i % 3 == 0 {
                    HostOp::Write {
                        addr: base + i * 64,
                        bytes: 64,
                    }
                } else {
                    HostOp::Read {
                        addr: base + i * 64,
                        bytes: 64,
                    }
                },
                tag: i,
                reply_to: sink,
            },
        );
    }
    engine.run_until_idle();
    assert_eq!(engine.component::<Sink>(sink).done, n as usize);

    // Every switch's per-port ledgers and ramp allocators must balance.
    let report = audit_topology(&engine, &topo);
    assert!(report.is_clean(), "credit ledger findings:\n{report}");

    // And a drained queue with nothing outstanding is not a deadlock.
    assert!(
        engine.deadlock_report().is_none(),
        "unexpected deadlock at quiescence"
    );
}
