//! Multi-domain fabric: HBR (Hierarchy Based Routing) across domains.
//!
//! "A CXL fabric contains several domains connected via HBR links, where
//! each one consists of one or more switches that are PBR capable" (§2.1).
//! This test builds two PBR domains joined by an HBR link, installs
//! domain routes instead of per-node entries at the gateway switches, and
//! verifies cross-domain traffic flows while intra-domain tables stay
//! small — the scalability point of hierarchical routing.

use fcc::fabric::adapter::{Fea, Fha, HostCompletion, HostOp, HostRequest};
use fcc::fabric::endpoint::PipelinedMemory;
use fcc::fabric::routing::DomainId;
use fcc::fabric::switch::{FabricSwitch, SwitchConfig};
use fcc::proto::addr::{AddrMap, AddrRange, NodeId};
use fcc::proto::link::CreditConfig;
use fcc::proto::phys::PhysConfig;
use fcc::sim::{Component, Ctx, Engine, Msg, SimTime};

struct Sink {
    done: Vec<HostCompletion>,
}

impl Component for Sink {
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        // The sink is only wired to receive completions.
        #[allow(clippy::expect_used)]
        self.done
            .push(msg.downcast::<HostCompletion>().expect("hc"));
    }
}

#[test]
fn hbr_routes_cross_domain_traffic_with_small_tables() {
    let mut engine = Engine::new(0xD0);
    let phys = PhysConfig::omega_like();
    let credit = CreditConfig::default();
    let cfg = SwitchConfig::fabrex_like();
    // Domain 0: host + switch s0. Domain 1: switch s1 + FAM.
    let s0 = engine.add_component("s0", FabricSwitch::new(cfg));
    let s1 = engine.add_component("s1", FabricSwitch::new(cfg));
    {
        // Declare domain membership of the switches' routing tables.
        engine.component_mut::<FabricSwitch>(s0).routing =
            fcc::fabric::routing::RoutingTable::new(DomainId(0));
        engine.component_mut::<FabricSwitch>(s1).routing =
            fcc::fabric::routing::RoutingTable::new(DomainId(1));
    }
    // Inter-domain (HBR) link between s0 and s1.
    let hbr0 = {
        let s = engine.component_mut::<FabricSwitch>(s0);
        let p = s.add_port();
        s.connect(p, s1);
        p
    };
    let hbr1 = {
        let s = engine.component_mut::<FabricSwitch>(s1);
        let p = s.add_port();
        s.connect(p, s0);
        p
    };
    // Host in domain 0.
    let host_node = NodeId(1);
    let dev_node = NodeId(1000);
    let mut map = AddrMap::new();
    map.add_direct(AddrRange::new(0x1000_0000, 1 << 24), dev_node);
    let fha = engine.add_component("fha", Fha::new(host_node, phys, credit, map, 8));
    {
        let s = engine.component_mut::<FabricSwitch>(s0);
        let p = s.add_port();
        s.connect(p, fha);
        s.routing.add_pbr(host_node, p);
    }
    engine.component_mut::<Fha>(fha).connect(s0);
    // FAM in domain 1.
    let fea = engine.add_component(
        "fea",
        Fea::new(
            dev_node,
            phys,
            credit,
            Box::new(PipelinedMemory::new(
                SimTime::from_ns(120.0),
                SimTime::from_ns(130.0),
                SimTime::from_ns(20.0),
                1 << 24,
            )),
        ),
    );
    {
        let s = engine.component_mut::<FabricSwitch>(s1);
        let p = s.add_port();
        s.connect(p, fea);
        s.routing.add_pbr(dev_node, p);
    }
    engine.component_mut::<Fea>(fea).connect(s1);
    // HBR entries only: s0 knows "domain 1 is that way" (not the device),
    // s1 knows "domain 0 is that way" (not the host).
    {
        let s = engine.component_mut::<FabricSwitch>(s0);
        s.routing.set_domain(dev_node, DomainId(1));
        s.routing.add_hbr(DomainId(1), hbr0);
    }
    {
        let s = engine.component_mut::<FabricSwitch>(s1);
        s.routing.set_domain(host_node, DomainId(0));
        s.routing.add_hbr(DomainId(0), hbr1);
    }
    let sink = engine.add_component("sink", Sink { done: vec![] });
    for i in 0..20u64 {
        engine.post(
            fha,
            SimTime::ZERO,
            HostRequest {
                op: if i % 2 == 0 {
                    HostOp::Read {
                        addr: 0x1000_0000 + i * 64,
                        bytes: 64,
                    }
                } else {
                    HostOp::Write {
                        addr: 0x1000_0000 + i * 64,
                        bytes: 64,
                    }
                },
                tag: i,
                reply_to: sink,
            },
        );
    }
    engine.run_until_idle();
    let done = &engine.component::<Sink>(sink).done;
    assert_eq!(done.len(), 20, "cross-domain traffic completes");
    // The scalability point: each switch holds exactly ONE local PBR entry
    // plus one HBR entry — no per-foreign-node state.
    assert_eq!(
        engine.component::<FabricSwitch>(s0).routing.pbr_entries(),
        1
    );
    assert_eq!(
        engine.component::<FabricSwitch>(s1).routing.pbr_entries(),
        1
    );
    // Both switches forwarded in both directions.
    assert!(engine.component::<FabricSwitch>(s0).forwarded.get() >= 40);
    assert!(engine.component::<FabricSwitch>(s1).forwarded.get() >= 40);
}
