//! Cross-crate integration tests: the whole stack wired together through
//! the `fcc` facade.

use fcc::cache::core::{AccessPattern, CoreReport, CpuCore, RunDone, StartRun};
use fcc::cache::hierarchy::{HierarchyConfig, MemoryHierarchy};
use fcc::fabric::adapter::{HostCompletion, HostOp, HostRequest};
use fcc::fabric::endpoint::PipelinedMemory;
use fcc::fabric::manager::StartDiscovery;
use fcc::fabric::switch::FabricSwitch;
use fcc::fabric::topology::{self, TopologySpec, FAM_BASE};
use fcc::memnode::dram::{DramDevice, DramTiming};
use fcc::sim::{Component, Ctx, Engine, Msg, SimTime};
use fcc::unifabric::etrans::{
    ETrans, ETransDone, MigrationAgent, SubmitETrans, TransAttrs, TransOwnership, TransactionEngine,
};

struct Sink {
    completions: Vec<HostCompletion>,
    transfers: Vec<ETransDone>,
    reports: Vec<CoreReport>,
}

impl Sink {
    fn new() -> Self {
        Sink {
            completions: vec![],
            transfers: vec![],
            reports: vec![],
        }
    }
}

impl Component for Sink {
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<HostCompletion>() {
            Ok(c) => {
                self.completions.push(c);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ETransDone>() {
            Ok(d) => {
                self.transfers.push(d);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<RunDone>() {
            Ok(r) => self.reports.push(r.report),
            Err(m) => panic!("sink: unexpected {}", m.type_name()),
        }
    }
}

fn fam(capacity: u64) -> Box<dyn fcc::fabric::endpoint::Endpoint> {
    Box::new(PipelinedMemory::new(
        SimTime::from_ns(641.0),
        SimTime::from_ns(679.0),
        SimTime::from_ns(120.0),
        capacity,
    ))
}

/// CPU core → cache hierarchy → FHA → switch → FEA → DRAM device, with a
/// real banked DRAM (not the calibrated pipelined controller).
#[test]
fn core_to_banked_dram_over_fabric() {
    let mut engine = Engine::new(100);
    let dram: Box<dyn fcc::fabric::endpoint::Endpoint> =
        Box::new(DramDevice::new(DramTiming::default(), 1 << 26));
    let topo = topology::single_switch(&mut engine, TopologySpec::default(), 1, vec![dram]);
    let sink = engine.add_component("sink", Sink::new());
    let mut core = CpuCore::new(MemoryHierarchy::new(HierarchyConfig::omega_like()), 8);
    core.set_fha(topo.hosts[0].fha);
    let core = engine.add_component("core", core);
    engine.post(
        core,
        SimTime::ZERO,
        StartRun {
            pattern: AccessPattern::Dependent {
                base: FAM_BASE,
                region: 1 << 22,
                stride: 4096,
                count: 500,
                write: false,
                warmup_passes: 0,
            },
            reply_to: sink,
        },
    );
    engine.run_until_idle();
    let report = &engine.component::<Sink>(sink).reports[0];
    assert_eq!(report.ops, 500);
    assert_eq!(report.served[3], 500, "all remote");
    // Banked DRAM behind the stock topology: several hundred ns RTT.
    assert!(
        report.latency.mean > 300.0,
        "latency {}",
        report.latency.mean
    );
}

/// eTrans moves data between two devices through the full fabric while a
/// plain host keeps issuing its own traffic — no interference in
/// correctness, both complete.
#[test]
fn etrans_and_foreground_traffic_coexist() {
    let mut engine = Engine::new(101);
    let topo = topology::single_switch(
        &mut engine,
        TopologySpec::default(),
        2,
        vec![fam(1 << 24), fam(1 << 24)],
    );
    let sink = engine.add_component("sink", Sink::new());
    let agent = engine.add_component("agent", MigrationAgent::new(topo.hosts[1].fha, 4096, 2));
    let te = engine.add_component("etrans", TransactionEngine::new(vec![agent]));
    engine.post(
        te,
        SimTime::ZERO,
        SubmitETrans {
            etrans: ETrans {
                src: vec![(topo.devices[0].range.base, 128 * 1024)],
                dst: vec![(topo.devices[1].range.base, 128 * 1024)],
                immediate: false,
                attrs: TransAttrs::default(),
                ownership: TransOwnership::Caller,
            },
            tag: 1,
            reply_to: sink,
        },
    );
    for i in 0..50u64 {
        engine.post(
            topo.hosts[0].fha,
            SimTime::from_ns(i as f64 * 200.0),
            HostRequest {
                op: HostOp::Read {
                    addr: topo.devices[0].range.base + i * 64,
                    bytes: 64,
                },
                tag: 100 + i,
                reply_to: sink,
            },
        );
    }
    engine.run_until_idle();
    let s = engine.component::<Sink>(sink);
    assert_eq!(s.transfers.len(), 1);
    assert_eq!(s.transfers[0].bytes, 128 * 1024);
    assert_eq!(s.completions.len(), 50);
}

/// Managed discovery then traffic across the Figure 1 rack.
#[test]
fn discovered_rack_carries_cross_switch_traffic() {
    let mut engine = Engine::new(102);
    let topo = topology::figure1(&mut engine, TopologySpec::default());
    engine.post(
        topo.manager.expect("manager"),
        SimTime::ZERO,
        StartDiscovery,
    );
    engine.run_until_idle();
    let sink = engine.add_component("sink", Sink::new());
    let t = engine.now();
    // Host 2 (on fs2) reads from FAM chassis 1 (on fs1): two switch hops.
    engine.post(
        topo.hosts[1].fha,
        t,
        HostRequest {
            op: HostOp::Read {
                addr: topo.devices[0].range.base,
                bytes: 64,
            },
            tag: 1,
            reply_to: sink,
        },
    );
    engine.run_until_idle();
    let s = engine.component::<Sink>(sink);
    assert_eq!(s.completions.len(), 1);
    let sw0 = engine.component::<FabricSwitch>(topo.switches[0]);
    let sw1 = engine.component::<FabricSwitch>(topo.switches[1]);
    assert!(sw0.forwarded.get() > 0 && sw1.forwarded.get() > 0);
}

/// Determinism across the whole stack: identical seeds produce identical
/// event counts, times, and latencies.
#[test]
fn full_stack_runs_are_deterministic() {
    fn run(seed: u64) -> (u64, SimTime, f64) {
        let mut engine = Engine::new(seed);
        let topo =
            topology::single_switch(&mut engine, TopologySpec::default(), 2, vec![fam(1 << 24)]);
        let sink = engine.add_component("sink", Sink::new());
        for h in 0..2 {
            for i in 0..40u64 {
                engine.post(
                    topo.hosts[h].fha,
                    SimTime::from_ns(i as f64 * 97.0),
                    HostRequest {
                        op: if i % 3 == 0 {
                            HostOp::Write {
                                addr: FAM_BASE + i * 4096,
                                bytes: 4096,
                            }
                        } else {
                            HostOp::Read {
                                addr: FAM_BASE + i * 64,
                                bytes: 64,
                            }
                        },
                        tag: (h as u64) << 32 | i,
                        reply_to: sink,
                    },
                );
            }
        }
        engine.run_until_idle();
        let s = engine.component::<Sink>(sink);
        let mean = s
            .completions
            .iter()
            .map(|c| c.latency().as_ns())
            .sum::<f64>()
            / s.completions.len() as f64;
        (engine.events_dispatched(), engine.now(), mean)
    }
    let a = run(7);
    let b = run(7);
    let c = run(8);
    assert_eq!(a, b, "same seed, same trace");
    // A different seed still completes the same workload.
    assert_eq!(a.0, c.0, "deterministic workload shape");
}

/// A second CPU core model sharing the same fabric as a raw host: both
/// make progress (multi-initiator integration).
#[test]
fn two_initiator_kinds_share_the_fabric() {
    let mut engine = Engine::new(103);
    let topo = topology::single_switch(&mut engine, TopologySpec::default(), 2, vec![fam(1 << 26)]);
    let sink = engine.add_component("sink", Sink::new());
    let mut core = CpuCore::new(MemoryHierarchy::new(HierarchyConfig::omega_like()), 4);
    core.set_fha(topo.hosts[0].fha);
    let core = engine.add_component("core", core);
    engine.post(
        core,
        SimTime::ZERO,
        StartRun {
            pattern: AccessPattern::Independent {
                base: FAM_BASE,
                region: 1 << 20,
                stride: 4096,
                count: 200,
                write: false,
                warmup_passes: 0,
            },
            reply_to: sink,
        },
    );
    for i in 0..100u64 {
        engine.post(
            topo.hosts[1].fha,
            SimTime::from_ns(i as f64 * 500.0),
            HostRequest {
                op: HostOp::Write {
                    addr: FAM_BASE + (1 << 21) + i * 64,
                    bytes: 64,
                },
                tag: i,
                reply_to: sink,
            },
        );
    }
    engine.run_until_idle();
    let s = engine.component::<Sink>(sink);
    assert_eq!(s.reports.len(), 1);
    assert_eq!(s.reports[0].ops, 200);
    assert_eq!(s.completions.len(), 100);
}
