//! End-to-end UniFabric scenarios through the `fcc` facade: the heap, the
//! task runtime, the arbiter, and the baseband case study working
//! together the way the paper's §5 walkthrough describes.

use fcc::baseband::pipeline::UplinkPipeline;
use fcc::memnode::profile::{MemNodeKind, MemNodeProfile};
use fcc::sim::SimTime;
use fcc::unifabric::heap::{HeapNodeCfg, PlacementHint, UnifiedHeap};
use fcc::unifabric::task::{analyze_idempotence, DagRuntime, Executor, Half, RecoveryMode};
use fcc::workloads::failure::{FailureEvent, FailureSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The §5 porting steps: (1) data objects to the unified heap, (2) kernels
/// as idempotent tasks on FAAs, (3) failure-tolerant execution.
#[test]
fn case_study_port_follows_the_papers_steps() {
    // Step 1: move the frame and CSI objects into the unified heap.
    let mut heap = UnifiedHeap::new(vec![
        HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::HostLocal, 1 << 20),
        },
        HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, 1 << 26),
        },
        HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::Coma, 1 << 24),
        },
    ]);
    let pipeline = UplinkPipeline::default();
    let frame_bytes =
        (pipeline.fft_size * pipeline.antennas * 16) as u64 * pipeline.symbols_per_frame as u64;
    let csi_bytes = (pipeline.antennas * pipeline.streams * 16) as u64;
    let frame_obj = heap.alloc(frame_bytes, PlacementHint::Auto).expect("frame");
    let csi_obj = heap
        .alloc(csi_bytes, PlacementHint::Kind(MemNodeKind::Coma))
        .expect("csi");
    // CSI is touched by every equalize kernel: it gets hot and promotes.
    for _ in 0..200 {
        heap.access(csi_obj, 0, false).expect("live");
    }
    heap.access(frame_obj, 0, false).expect("live");
    heap.rebalance();
    let csi_node = heap.node_of(csi_obj).expect("live");
    assert_eq!(
        heap.node_profile(csi_node).kind,
        MemNodeKind::HostLocal,
        "hot CSI promoted to the fastest tier"
    );

    // Step 2: kernels become idempotent tasks.
    let tasks = pipeline.build_tasks(0x1000_0000, 0x2000_0000, 0x3000_0000, SimTime::from_us(1.0));
    assert!(tasks.iter().all(|t| analyze_idempotence(t).is_idempotent()));

    // Step 3: execute across two FAAs with a failure; re-execution
    // finishes the frame correctly.
    let execs = vec![
        Executor {
            domain: 0,
            speed: 1.0,
            half: Half::Bottom,
        },
        Executor {
            domain: 1,
            speed: 1.0,
            half: Half::Bottom,
        },
    ];
    let rt = DagRuntime::new(execs, RecoveryMode::Idempotent);
    let clean = rt.run(&tasks, &FailureSchedule::explicit(vec![]));
    let crash = FailureSchedule::explicit(vec![FailureEvent {
        at: clean.makespan / 2,
        domain: 0,
        recovered_at: clean.makespan / 2 + SimTime::from_us(3.0),
    }]);
    let failed = rt.run(&tasks, &crash);
    assert!(failed.correct);
    assert!(failed.makespan >= clean.makespan);
    assert!(failed.reexecutions >= 1);
}

/// Real bits flow through the whole ported pipeline: generate at the
/// radio, decode at the MAC, verify against ground truth.
#[test]
fn real_frames_decode_after_the_port() {
    let mut rng = StdRng::seed_from_u64(99);
    let pipeline = UplinkPipeline::default();
    let frame = pipeline.generate_frame(30.0, &mut rng);
    let report = pipeline.process(&frame);
    assert_eq!(report.bit_errors, 0);
    assert_eq!(report.bits.len(), pipeline.streams);
    for (s, bits) in report.bits.iter().enumerate() {
        assert_eq!(bits, &frame.truth[s]);
    }
}
