//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! protocol types for forward compatibility, but no serializer crate
//! (serde_json etc.) is present, so nothing ever calls the traits. This
//! stub keeps the annotations compiling offline: the traits are empty
//! markers blanket-implemented for every type, and the derive macros are
//! no-ops re-exported from `serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; blanket-implemented, carries no methods.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait; blanket-implemented, carries no methods.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
