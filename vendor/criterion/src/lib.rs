//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use — groups,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId` —
//! with a simple calibrated wall-clock timing loop and plain-text
//! output instead of criterion's statistical machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark.
const MEASURE_FOR: Duration = Duration::from_millis(200);

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts CLI arguments (ignored; present for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), None, &mut f);
        self
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier (name, optional parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the sample count (ignored; present for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Drives the closure under measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, repeating it enough to fill the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate with one untimed run, then batch.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (MEASURE_FOR.as_nanos() / 10 / once.as_nanos()).clamp(1, 100_000) as u64;
        let deadline = Instant::now() + MEASURE_FOR;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            self.elapsed += t.elapsed();
            self.iters += per_batch;
        }
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("{label}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.3} Melem/s", n as f64 / per_iter * 1e3),
        Throughput::Bytes(n) => format!(
            ", {:.3} MiB/s",
            n as f64 / per_iter * 1e9 / (1 << 20) as f64
        ),
    });
    println!(
        "{label}: {per_iter:.1} ns/iter ({} iters){}",
        b.iters,
        rate.unwrap_or_default()
    );
}

/// Declares a group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares a `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
