//! Deterministic case generation and failure reporting.

use std::fmt;

/// Cases generated per property (the real crate defaults to 256; 64
/// keeps the workspace's heavier vector-of-ops properties fast while
/// still exploring a meaningful sample).
pub const CASES: usize = 64;

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator driving strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a test name, so every run of a given
    /// property explores the same cases.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut x = h;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A draw in `[0, bound)` via widening multiply (no modulo bias).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
