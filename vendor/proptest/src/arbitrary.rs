//! `any::<T>()` support.

use std::marker::PhantomData;

use crate::strategy::{Index, Strategy};
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.unit_f64())
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
