//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] test macro, `prop_assert*` macros, range / tuple /
//! `prop::collection::vec` / `any::<T>()` strategies, and
//! `prop::sample::Index`. Cases are generated from a deterministic RNG
//! seeded by the test's name, so failures reproduce exactly; there is no
//! shrinking — a failing case reports its case number and generated
//! inputs instead.

pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

/// Strategy combinators, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }

    /// Sampling helpers (`prop::sample::Index`).
    pub mod sample {
        pub use crate::strategy::Index;
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn name(input in strategy, other in strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::test_runner::CASES {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __inputs = ::std::format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        ::std::panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1,
                            $crate::test_runner::CASES,
                            e,
                            __inputs,
                        );
                    }
                }
            }
        )+
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the rest of the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
