//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Numeric types uniformly sampleable from a half-open range.
pub trait UniformValue: Sized + Copy + PartialOrd {
    /// Draws from `[lo, hi)`.
    fn uniform(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformValue for $t {
            fn uniform(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                lo + rng.below((hi - lo) as u64) as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformValue for $t {
            fn uniform(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformValue for $t {
            fn uniform(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

impl<T: UniformValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "strategy range is empty");
        T::uniform(rng, self.start, self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Length bounds for [`vec()`], half-open.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates vectors of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A vector strategy over `element` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A position into a collection of as-yet-unknown size
/// (`prop::sample::Index`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Index(pub(crate) f64);

impl Index {
    /// Projects onto `[0, size)`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "index into empty collection");
        ((self.0 * size as f64) as usize).min(size - 1)
    }
}
