//! No-op derive macros for the vendored `serde` stub.
//!
//! The stub's traits are blanket-implemented for all types, so the
//! derives have nothing to emit; they exist only so that
//! `#[derive(Serialize, Deserialize)]` attributes resolve.

use proc_macro::TokenStream;

/// Emits nothing: `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Emits nothing: `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
