//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`]. The core generator is xoshiro256** seeded via
//! SplitMix64 — deterministic across platforms, which is all the
//! simulator requires (it never claims cryptographic strength).

use std::ops::Range;

/// Types constructible from a seed. Only the `seed_from_u64` entry point
/// of the real trait is provided; no caller uses seed arrays.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform full-range sampling used by [`Rng::gen`] (the real crate's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Sampling uniformly from a half-open range, used by [`Rng::gen_range`].
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws one value in `[range.start, range.end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// The user-facing generator interface.
pub trait Rng {
    /// Returns the next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform value over the type's full range (or `[0, 1)`
    /// for floats, matching `rand`'s `Standard`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns a uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range on empty range");
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Maps a raw 64-bit draw to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                let span = (range.end - range.start) as u64;
                // Widening multiply maps the raw draw onto [0, span)
                // without the low-bit bias of a plain modulo.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + hi as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                let span = (range.end as i128 - range.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (range.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                range.start + (range.end - range.start) * u
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for `rand`'s
    /// `StdRng`; same API, different — but stable — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Random slice operations (shuffle, choose).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_and_ranges() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v: u8 = a.gen_range(0..2);
            assert!(v < 2);
            let f: f64 = a.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let u: f64 = a.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }
}
