//! Routing tables: Port Based Routing and Hierarchy Based Routing.
//!
//! "A CXL fabric contains several domains connected via HBR links, where
//! each one consists of one or more switches that are PBR capable. [...]
//! An intra-domain switch uses 12-bit PBR IDs to address up to 4096 unique
//! edge ports" (§2.1). A [`RoutingTable`] resolves a destination node to
//! one or more candidate output ports: exact PBR entries for nodes in the
//! local domain, HBR entries (by destination domain) for foreign nodes.
//! Multiple candidates per destination enable adaptive routing.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use fcc_proto::addr::NodeId;

/// A routing domain (a set of PBR-interconnected switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct DomainId(pub u8);

/// Per-switch routing state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoutingTable {
    local_domain: DomainId,
    /// PBR: destination node → candidate output ports (primary first).
    pbr: HashMap<NodeId, Vec<usize>>,
    /// HBR: foreign domain → candidate output ports.
    hbr: HashMap<DomainId, Vec<usize>>,
    /// Which domain each known node lives in.
    domain_of: HashMap<NodeId, DomainId>,
}

impl RoutingTable {
    /// Creates an empty table for a switch in `local_domain`.
    pub fn new(local_domain: DomainId) -> Self {
        RoutingTable {
            local_domain,
            ..Default::default()
        }
    }

    /// The switch's own domain.
    pub fn local_domain(&self) -> DomainId {
        self.local_domain
    }

    /// Installs (or extends) a PBR route: `dst` reachable via `port`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not PBR-addressable (12-bit ID space).
    pub fn add_pbr(&mut self, dst: NodeId, port: usize) {
        assert!(dst.is_pbr_addressable(), "node {dst} exceeds PBR ID space");
        let ports = self.pbr.entry(dst).or_default();
        if !ports.contains(&port) {
            ports.push(port);
        }
        self.domain_of.entry(dst).or_insert(self.local_domain);
    }

    /// Installs an HBR route toward a foreign domain.
    pub fn add_hbr(&mut self, domain: DomainId, port: usize) {
        let ports = self.hbr.entry(domain).or_default();
        if !ports.contains(&port) {
            ports.push(port);
        }
    }

    /// Records that `node` lives in `domain` (HBR classification).
    pub fn set_domain(&mut self, node: NodeId, domain: DomainId) {
        self.domain_of.insert(node, domain);
    }

    /// Resolves `dst` to candidate output ports, primary first.
    ///
    /// Resolution order: exact PBR entry, then the HBR route of the node's
    /// domain (if foreign), then `None` (unroutable — the switch drops and
    /// lets the fabric manager hear about it).
    pub fn route(&self, dst: NodeId) -> Option<&[usize]> {
        if let Some(ports) = self.pbr.get(&dst) {
            return Some(ports);
        }
        let domain = self.domain_of.get(&dst)?;
        if *domain == self.local_domain {
            return None;
        }
        self.hbr.get(domain).map(|v| v.as_slice())
    }

    /// Removes every PBR route (and the domain record) for `dst`; returns
    /// whether an entry existed. Hot-remove prunes with this only after
    /// the node has quiesced — pruning a live destination turns its
    /// in-flight flits into unroutable drops at [`crate::switch`] admit.
    pub fn remove_pbr(&mut self, dst: NodeId) -> bool {
        let existed = self.pbr.remove(&dst).is_some();
        self.domain_of.remove(&dst);
        existed
    }

    /// Number of installed PBR entries.
    pub fn pbr_entries(&self) -> usize {
        self.pbr.len()
    }

    /// Clears everything (fabric-manager re-initialization).
    pub fn clear(&mut self) {
        self.pbr.clear();
        self.hbr.clear();
        self.domain_of.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pbr_exact_match_wins() {
        let mut rt = RoutingTable::new(DomainId(0));
        rt.add_pbr(NodeId(5), 2);
        rt.add_hbr(DomainId(1), 7);
        rt.set_domain(NodeId(5), DomainId(1));
        // Even though node 5 is marked foreign, the exact entry wins.
        assert_eq!(rt.route(NodeId(5)), Some(&[2][..]));
    }

    #[test]
    fn foreign_nodes_use_hbr() {
        let mut rt = RoutingTable::new(DomainId(0));
        rt.add_hbr(DomainId(1), 3);
        rt.set_domain(NodeId(9), DomainId(1));
        assert_eq!(rt.route(NodeId(9)), Some(&[3][..]));
    }

    #[test]
    fn unknown_nodes_are_unroutable() {
        let rt = RoutingTable::new(DomainId(0));
        assert_eq!(rt.route(NodeId(1)), None);
    }

    #[test]
    fn local_domain_without_pbr_is_unroutable() {
        let mut rt = RoutingTable::new(DomainId(0));
        rt.set_domain(NodeId(4), DomainId(0));
        assert_eq!(rt.route(NodeId(4)), None);
    }

    #[test]
    fn alternates_accumulate_without_duplicates() {
        let mut rt = RoutingTable::new(DomainId(0));
        rt.add_pbr(NodeId(1), 0);
        rt.add_pbr(NodeId(1), 4);
        rt.add_pbr(NodeId(1), 0);
        assert_eq!(rt.route(NodeId(1)), Some(&[0, 4][..]));
        assert_eq!(rt.pbr_entries(), 1);
    }

    #[test]
    #[should_panic(expected = "PBR ID space")]
    fn oversized_node_id_rejected() {
        let mut rt = RoutingTable::new(DomainId(0));
        rt.add_pbr(NodeId(4096), 0);
    }

    #[test]
    fn remove_pbr_forgets_all_alternates() {
        let mut rt = RoutingTable::new(DomainId(0));
        rt.add_pbr(NodeId(7), 1);
        rt.add_pbr(NodeId(7), 3);
        assert!(rt.remove_pbr(NodeId(7)));
        assert_eq!(rt.route(NodeId(7)), None);
        assert_eq!(rt.pbr_entries(), 0);
        assert!(!rt.remove_pbr(NodeId(7)));
    }

    #[test]
    fn remove_then_reinstall_routes_again() {
        let mut rt = RoutingTable::new(DomainId(0));
        rt.add_pbr(NodeId(2), 4);
        rt.remove_pbr(NodeId(2));
        rt.add_pbr(NodeId(2), 5);
        assert_eq!(rt.route(NodeId(2)), Some(&[5][..]));
    }

    #[test]
    fn clear_resets() {
        let mut rt = RoutingTable::new(DomainId(2));
        rt.add_pbr(NodeId(1), 0);
        rt.clear();
        assert_eq!(rt.route(NodeId(1)), None);
        assert_eq!(rt.local_domain(), DomainId(2));
    }
}
