//! The device behind a Fabric Endpoint Adapter.
//!
//! An FEA "stays close to the remote device, operating as a target
//! responder, responsible for fabric protocol processing and converting
//! between the fabric packets and device-dependent primitives" (§2.2).
//! The conversion target is this [`Endpoint`] trait; `fcc-memnode`
//! implements realistic DRAM devices, and [`FixedLatencyMemory`] provides a
//! simple device for tests and calibration.

use fcc_proto::channel::{MemOpcode, Transaction, TransactionKind};
use fcc_sim::SimTime;

/// A device's answer to one transaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndpointResponse {
    /// Response opcode to send back, if any (posted writes may be silent,
    /// but CXL.mem completes writes with `Cmp`).
    pub kind: Option<TransactionKind>,
    /// Payload bytes of the response (reads return the request size).
    pub bytes: u32,
    /// Absolute time at which the device has finished the access and the
    /// response may start back into the fabric.
    pub ready_at: SimTime,
}

/// A device reachable through an FEA: memory module, accelerator, etc.
///
/// `Send` because endpoints live inside components and the sharded
/// executor moves whole engines across worker threads.
pub trait Endpoint: Send + 'static {
    /// Accepts a transaction at `now` (the time the FEA finished
    /// reassembling it) and returns the device's response.
    fn service(&mut self, txn: &Transaction, now: SimTime) -> EndpointResponse;

    /// Device capacity in bytes (0 for non-memory devices).
    fn capacity(&self) -> u64 {
        0
    }

    /// Whether the device's internal machinery (banks, buses, admission
    /// pipelines) has fully drained by `now`. The elastic composer's
    /// hot-remove path polls this through [`crate::adapter::Fea`] before
    /// detaching a node. Stateless devices keep the default.
    fn is_idle(&self, now: SimTime) -> bool {
        let _ = now;
        true
    }

    /// Attaches a telemetry track for device-internal spans (bank/row
    /// activity, media scheduling). Devices without internal structure
    /// worth tracing keep the default no-op.
    fn set_trace(&mut self, track: fcc_telemetry::Track) {
        let _ = track;
    }
}

/// A memory device with fixed read/write service times and a single
/// internal port (accesses serialize).
///
/// Useful for calibration: the service time is exactly what you configure,
/// so fabric overheads can be measured by subtraction.
#[derive(Debug, Clone)]
pub struct FixedLatencyMemory {
    /// Time to service a read once the device is free.
    pub read_latency: SimTime,
    /// Time to service a write once the device is free.
    pub write_latency: SimTime,
    /// Device capacity in bytes.
    pub capacity: u64,
    busy_until: SimTime,
    reads: u64,
    writes: u64,
}

impl FixedLatencyMemory {
    /// Creates a device with the given service times and capacity.
    pub fn new(read_latency: SimTime, write_latency: SimTime, capacity: u64) -> Self {
        FixedLatencyMemory {
            read_latency,
            write_latency,
            capacity,
            busy_until: SimTime::ZERO,
            reads: 0,
            writes: 0,
        }
    }

    /// Total reads serviced.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes serviced.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl Endpoint for FixedLatencyMemory {
    fn service(&mut self, txn: &Transaction, now: SimTime) -> EndpointResponse {
        let start = self.busy_until.max(now);
        match txn.kind {
            TransactionKind::Mem(op) if op.carries_data() => {
                // Writes: MemWr / MemWrPtl.
                self.writes += 1;
                self.busy_until = start + self.write_latency;
                EndpointResponse {
                    kind: Some(TransactionKind::Mem(MemOpcode::Cmp)),
                    bytes: 0,
                    ready_at: self.busy_until,
                }
            }
            TransactionKind::Mem(_) => {
                self.reads += 1;
                self.busy_until = start + self.read_latency;
                EndpointResponse {
                    kind: Some(TransactionKind::Mem(MemOpcode::MemData)),
                    bytes: txn.bytes.max(64),
                    ready_at: self.busy_until,
                }
            }
            TransactionKind::Io(op) => {
                let (kind, bytes, lat) = match op {
                    fcc_proto::channel::IoOpcode::MemRead => (
                        Some(TransactionKind::Io(
                            fcc_proto::channel::IoOpcode::Completion,
                        )),
                        txn.bytes.max(4),
                        self.read_latency,
                    ),
                    _ => (None, 0, self.write_latency),
                };
                if kind.is_some() {
                    self.reads += 1;
                } else {
                    self.writes += 1;
                }
                self.busy_until = start + lat;
                EndpointResponse {
                    kind,
                    bytes,
                    ready_at: self.busy_until,
                }
            }
            TransactionKind::Cache(_) => {
                // A plain expander does not speak CXL.cache; treat as a
                // read-current of the backing line.
                self.reads += 1;
                self.busy_until = start + self.read_latency;
                EndpointResponse {
                    kind: Some(TransactionKind::Cache(
                        fcc_proto::channel::CacheOpcode::Data,
                    )),
                    bytes: 64,
                    ready_at: self.busy_until,
                }
            }
        }
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }
}

/// A pipelined memory device: fixed access latency, but overlapping
/// accesses are admitted every `min_gap` (a banked controller front-end).
///
/// Peak throughput is `1/min_gap` while each access still takes
/// `latency` end to end — the combination the Omega FAM exhibits in
/// Table 2 (1575 ns latency yet 2.5 MOPS with a few outstanding loads).
#[derive(Debug, Clone)]
pub struct PipelinedMemory {
    /// Per-access service latency once admitted.
    pub read_latency: SimTime,
    /// Per-access write latency once admitted.
    pub write_latency: SimTime,
    /// Admission spacing (1 / peak throughput) for a minimal access.
    pub min_gap: SimTime,
    /// Additional occupancy per payload byte (ns/B); large transfers hold
    /// the controller proportionally longer.
    pub gap_per_byte_ns: f64,
    /// Device capacity.
    pub capacity: u64,
    next_admit: SimTime,
    accesses: u64,
}

impl PipelinedMemory {
    /// Creates the device (no per-byte occupancy).
    pub fn new(
        read_latency: SimTime,
        write_latency: SimTime,
        min_gap: SimTime,
        capacity: u64,
    ) -> Self {
        PipelinedMemory {
            read_latency,
            write_latency,
            min_gap,
            gap_per_byte_ns: 0.0,
            capacity,
            next_admit: SimTime::ZERO,
            accesses: 0,
        }
    }

    /// Sets byte-proportional controller occupancy.
    pub fn with_gap_per_byte(mut self, ns_per_byte: f64) -> Self {
        self.gap_per_byte_ns = ns_per_byte;
        self
    }

    /// Total accesses serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

impl Endpoint for PipelinedMemory {
    fn service(&mut self, txn: &Transaction, now: SimTime) -> EndpointResponse {
        self.accesses += 1;
        let admit = self.next_admit.max(now);
        let occupancy =
            self.min_gap + SimTime::from_ns(self.gap_per_byte_ns * txn.bytes.max(64) as f64);
        self.next_admit = admit + occupancy;
        let is_write = txn.kind.carries_data();
        let lat = if is_write {
            self.write_latency
        } else {
            self.read_latency
        };
        let ready_at = admit + lat;
        if is_write {
            EndpointResponse {
                kind: Some(TransactionKind::Mem(MemOpcode::Cmp)),
                bytes: 0,
                ready_at,
            }
        } else {
            EndpointResponse {
                kind: Some(TransactionKind::Mem(MemOpcode::MemData)),
                bytes: txn.bytes.max(64),
                ready_at,
            }
        }
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn is_idle(&self, now: SimTime) -> bool {
        self.next_admit <= now
    }
}

#[cfg(test)]
mod tests {
    use fcc_proto::addr::NodeId;

    use super::*;

    fn txn(kind: TransactionKind, bytes: u32) -> Transaction {
        Transaction {
            id: 1,
            kind,
            addr: 0,
            bytes,
            src: NodeId(0),
            dst: NodeId(1),
        }
    }

    #[test]
    fn read_returns_data_after_latency() {
        let mut dev =
            FixedLatencyMemory::new(SimTime::from_ns(100.0), SimTime::from_ns(120.0), 1 << 30);
        let r = dev.service(
            &txn(TransactionKind::Mem(MemOpcode::MemRd), 64),
            SimTime::from_ns(10.0),
        );
        assert_eq!(r.ready_at, SimTime::from_ns(110.0));
        assert_eq!(r.bytes, 64);
        assert_eq!(r.kind, Some(TransactionKind::Mem(MemOpcode::MemData)));
        assert_eq!(dev.reads(), 1);
    }

    #[test]
    fn accesses_serialize_on_the_device() {
        let mut dev =
            FixedLatencyMemory::new(SimTime::from_ns(100.0), SimTime::from_ns(100.0), 1 << 30);
        let a = dev.service(
            &txn(TransactionKind::Mem(MemOpcode::MemRd), 64),
            SimTime::ZERO,
        );
        let b = dev.service(
            &txn(TransactionKind::Mem(MemOpcode::MemRd), 64),
            SimTime::ZERO,
        );
        assert_eq!(a.ready_at, SimTime::from_ns(100.0));
        assert_eq!(b.ready_at, SimTime::from_ns(200.0), "second waits");
    }

    #[test]
    fn write_completes_without_data() {
        let mut dev =
            FixedLatencyMemory::new(SimTime::from_ns(100.0), SimTime::from_ns(50.0), 1 << 30);
        let r = dev.service(
            &txn(TransactionKind::Mem(MemOpcode::MemWr), 64),
            SimTime::ZERO,
        );
        assert_eq!(r.kind, Some(TransactionKind::Mem(MemOpcode::Cmp)));
        assert_eq!(r.bytes, 0);
        assert_eq!(dev.writes(), 1);
    }

    #[test]
    fn pipelined_memory_overlaps_up_to_the_admission_rate() {
        let mut dev = PipelinedMemory::new(
            SimTime::from_ns(600.0),
            SimTime::from_ns(700.0),
            SimTime::from_ns(100.0),
            1 << 20,
        );
        // Four reads issued at t=0: admissions space by 100 ns, each takes
        // 600 ns after admission.
        let expected = [600.0, 700.0, 800.0, 900.0];
        for (i, want) in expected.iter().enumerate() {
            let r = dev.service(
                &txn(TransactionKind::Mem(MemOpcode::MemRd), 64),
                SimTime::ZERO,
            );
            assert!(
                (r.ready_at.as_ns() - want).abs() < 1e-9,
                "access {i}: {} vs {want}",
                r.ready_at.as_ns()
            );
        }
        assert_eq!(dev.accesses(), 4);
    }

    #[test]
    fn pipelined_memory_idle_gap_resets_admission() {
        let mut dev = PipelinedMemory::new(
            SimTime::from_ns(600.0),
            SimTime::from_ns(700.0),
            SimTime::from_ns(100.0),
            1 << 20,
        );
        dev.service(
            &txn(TransactionKind::Mem(MemOpcode::MemRd), 64),
            SimTime::ZERO,
        );
        // A much later access is admitted immediately.
        let r = dev.service(
            &txn(TransactionKind::Mem(MemOpcode::MemRd), 64),
            SimTime::from_us(10.0),
        );
        assert_eq!(r.ready_at, SimTime::from_us(10.0) + SimTime::from_ns(600.0));
    }

    #[test]
    fn per_byte_occupancy_scales_with_transfer_size() {
        let mut dev = PipelinedMemory::new(
            SimTime::from_ns(200.0),
            SimTime::from_ns(220.0),
            SimTime::from_ns(40.0),
            1 << 20,
        )
        .with_gap_per_byte(0.04);
        // A 16 KiB write holds the controller 40 + 0.04*16384 = 695.36 ns:
        // the next access is admitted only after that.
        let w = dev.service(
            &txn(TransactionKind::Mem(MemOpcode::MemWr), 16384),
            SimTime::ZERO,
        );
        assert_eq!(w.kind, Some(TransactionKind::Mem(MemOpcode::Cmp)));
        let r = dev.service(
            &txn(TransactionKind::Mem(MemOpcode::MemRd), 64),
            SimTime::ZERO,
        );
        let admit_ns = 40.0 + 0.04 * 16384.0;
        assert!(
            (r.ready_at.as_ns() - (admit_ns + 200.0)).abs() < 1e-6,
            "{}",
            r.ready_at.as_ns()
        );
    }

    #[test]
    fn io_read_gets_completion() {
        let mut dev =
            FixedLatencyMemory::new(SimTime::from_ns(10.0), SimTime::from_ns(10.0), 1 << 20);
        let r = dev.service(
            &txn(
                TransactionKind::Io(fcc_proto::channel::IoOpcode::MemRead),
                128,
            ),
            SimTime::ZERO,
        );
        assert_eq!(
            r.kind,
            Some(TransactionKind::Io(
                fcc_proto::channel::IoOpcode::Completion
            ))
        );
        assert_eq!(r.bytes, 128);
    }
}
