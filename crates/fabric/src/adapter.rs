//! Fabric adapters: the FHA (host side) and FEA (device side).
//!
//! "An FHA converts channel requests into fabric routable packets (or
//! flits) following the protocol specification and transmits them to the
//! wire. [...] when an adapter receives responses, it parses the packets,
//! obtains replied data or completion signals, and delivers them to the
//! processor execution pipeline" (§2.2). The [`Fha`] exposes a
//! message-based request interface to host-side models (the cache
//! hierarchy, the UniFabric runtime); the [`Fea`] terminates the fabric at
//! a device implementing [`Endpoint`].

use std::collections::{BTreeMap, VecDeque};

use fcc_proto::addr::{AddrMap, NodeId};
use fcc_proto::channel::{MemOpcode, Transaction, TransactionKind};
use fcc_proto::flit::{flits_for_transfer, FlitPayload};
use fcc_proto::link::CreditConfig;
use fcc_proto::phys::PhysConfig;
use fcc_sim::{Component, ComponentId, Counter, Ctx, Histogram, Msg, PendingWork, SimTime};
use fcc_telemetry::{TraceCtx, Track};

use crate::endpoint::Endpoint;
use crate::port::{FlitMsg, LinkPort, PortEvent};

/// A host-side memory operation submitted to an [`Fha`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostOp {
    /// Read `bytes` from host physical address `addr`.
    Read {
        /// Host physical address.
        addr: u64,
        /// Transfer size.
        bytes: u32,
    },
    /// Write `bytes` to host physical address `addr`.
    Write {
        /// Host physical address.
        addr: u64,
        /// Transfer size.
        bytes: u32,
    },
    /// A CXL.cache coherent request (to a CC-NUMA directory node).
    Cache {
        /// The cache opcode (`RdShared`, `RdOwn`, `DirtyEvict`, …).
        op: fcc_proto::channel::CacheOpcode,
        /// Host physical address.
        addr: u64,
        /// Payload size (64 for line transfers, 0 for control).
        bytes: u32,
    },
}

impl HostOp {
    /// The target address.
    pub fn addr(self) -> u64 {
        match self {
            HostOp::Read { addr, .. } | HostOp::Write { addr, .. } | HostOp::Cache { addr, .. } => {
                addr
            }
        }
    }

    /// The transfer size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            HostOp::Read { bytes, .. }
            | HostOp::Write { bytes, .. }
            | HostOp::Cache { bytes, .. } => bytes,
        }
    }

    /// Whether the completion returns data to the host.
    pub fn is_read(self) -> bool {
        match self {
            HostOp::Read { .. } => true,
            HostOp::Write { .. } => false,
            HostOp::Cache { op, .. } => matches!(
                op,
                fcc_proto::channel::CacheOpcode::RdCurr
                    | fcc_proto::channel::CacheOpcode::RdOwn
                    | fcc_proto::channel::CacheOpcode::RdShared
            ),
        }
    }
}

/// A request message accepted by the [`Fha`].
#[derive(Debug, Clone, Copy)]
pub struct HostRequest {
    /// The operation.
    pub op: HostOp,
    /// Caller-chosen tag echoed in the completion.
    pub tag: u64,
    /// Component to notify on completion.
    pub reply_to: ComponentId,
}

/// Completion notification for a [`HostRequest`].
#[derive(Debug, Clone, Copy)]
pub struct HostCompletion {
    /// The request's tag.
    pub tag: u64,
    /// When the FHA accepted the request.
    pub issued_at: SimTime,
    /// When the last response flit arrived.
    pub completed_at: SimTime,
    /// Whether the operation was a read.
    pub was_read: bool,
}

impl HostCompletion {
    /// End-to-end latency of the operation.
    pub fn latency(&self) -> SimTime {
        self.completed_at - self.issued_at
    }
}

/// An unsolicited request (e.g. a coherence snoop from a CC-NUMA
/// directory) that arrived at an [`Fha`]; forwarded to the registered
/// snoop handler.
#[derive(Debug, Clone)]
pub struct SnoopMsg {
    /// The arriving request.
    pub txn: Transaction,
}

/// A handler's answer to a [`SnoopMsg`], sent back through the [`Fha`].
#[derive(Debug, Clone)]
pub struct SnoopReply {
    /// The response transaction (endpoints already swapped).
    pub txn: Transaction,
}

/// Extends an [`Fha`]'s decode window with a newly composed fabric range
/// (from the elastic composer's hot-add commit phase). Sent only *after*
/// the switches' PBR routes for the range's node have landed — announcing
/// a range before its routes exist would turn the first request into an
/// unroutable drop.
#[derive(Debug, Clone, Copy)]
pub struct InstallMapping {
    /// The host-physical range being announced.
    pub range: fcc_proto::addr::AddrRange,
    /// The fabric node backing it.
    pub node: NodeId,
}

/// Identification probe from the fabric manager.
#[derive(Debug, Clone, Copy)]
pub struct IdentifyReq {
    /// Where to send the [`IdentifyRsp`].
    pub reply_to: ComponentId,
}

/// Identification answer.
#[derive(Debug, Clone, Copy)]
pub struct IdentifyRsp {
    /// The responding component.
    pub component: ComponentId,
    /// Its fabric node id.
    pub node: NodeId,
    /// Whether the component is a host adapter (vs. endpoint adapter).
    pub is_host: bool,
}

#[derive(Debug)]
struct PendingReq {
    tag: u64,
    reply_to: ComponentId,
    issued_at: SimTime,
    is_read: bool,
    bytes: u32,
    slots_expected: u64,
    slots_got: u64,
    header_got: bool,
}

/// A human-readable size suffix for RTT span labels (`64B`, `16KiB`).
fn size_label(bytes: u32) -> String {
    if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}KiB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

/// The Fabric Host Adapter: converts host requests into fabric flits and
/// matches responses back to completions.
pub struct Fha {
    node: NodeId,
    port: LinkPort,
    addr_map: AddrMap,
    max_outstanding: usize,
    next_txn: u64,
    outstanding: BTreeMap<u64, PendingReq>,
    waitq: VecDeque<(HostRequest, SimTime)>,
    snoop_handler: Option<ComponentId>,
    trace: Track,
    /// Completed operations.
    pub completions: Counter,
    /// End-to-end latency distribution (ps).
    pub latency: Histogram,
    /// Unsolicited requests forwarded to the snoop handler.
    pub snoops: Counter,
}

impl Fha {
    /// Creates a host adapter.
    ///
    /// `max_outstanding` models the depth of the core's load/store window
    /// toward the fabric: "the throughput of a memory fabric that a core
    /// can drive depends on its channel bandwidth capacity and the depth of
    /// the CPU pipeline" (§3 D#1).
    pub fn new(
        node: NodeId,
        phys: PhysConfig,
        credit: CreditConfig,
        addr_map: AddrMap,
        max_outstanding: usize,
    ) -> Self {
        Fha {
            node,
            port: LinkPort::new(phys, credit),
            addr_map,
            max_outstanding: max_outstanding.max(1),
            next_txn: 0,
            outstanding: BTreeMap::new(),
            waitq: VecDeque::new(),
            snoop_handler: None,
            trace: Track::default(),
            completions: Counter::new(),
            latency: Histogram::new(),
            snoops: Counter::new(),
        }
    }

    /// Registers the component that answers unsolicited requests (snoops)
    /// arriving at this host.
    pub fn set_snoop_handler(&mut self, handler: ComponentId) {
        self.snoop_handler = Some(handler);
    }

    /// This adapter's fabric node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Connects the adapter's port to its peer (switch or FEA).
    pub fn connect(&mut self, peer: ComponentId) {
        self.port.connect(peer);
    }

    /// The link port (probes).
    pub fn port(&self) -> &LinkPort {
        &self.port
    }

    /// The link port, mutably (telemetry wiring).
    pub fn port_mut(&mut self) -> &mut LinkPort {
        &mut self.port
    }

    /// Attaches a telemetry track; the adapter then emits window-wait and
    /// end-to-end RTT spans (`rtt-<op><size>`) keyed by transaction id.
    pub fn set_trace(&mut self, track: Track) {
        self.trace = track;
    }

    /// Extends the adapter's decode window: `range` now reaches `node`.
    /// Idempotent — re-announcing an already-decoded range (a re-added
    /// node reusing its old window) is a no-op.
    pub fn add_mapping(&mut self, range: fcc_proto::addr::AddrRange, node: NodeId) {
        if self.addr_map.decode(range.base).is_some() {
            return;
        }
        self.addr_map.add_direct(range, node);
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Requests queued behind the outstanding window.
    pub fn queued(&self) -> usize {
        self.waitq.len()
    }

    fn alloc_txn_id(&mut self) -> u64 {
        let id = ((self.node.0 as u64) << 48) | self.next_txn;
        self.next_txn += 1;
        id
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>, req: HostRequest, issued_at: SimTime) {
        let decoded = self
            .addr_map
            .decode(req.op.addr())
            .unwrap_or_else(|| panic!("unmapped fabric address {:#x}", req.op.addr()));
        let id = self.alloc_txn_id();
        // A request popped from the wait queue stalled behind the
        // outstanding window; attribute that stall to the txn it became.
        self.trace.span_nonzero(
            "fha",
            "fha.window_wait",
            issued_at,
            ctx.now(),
            TraceCtx::new(id),
        );
        let mode = self.port.phys.flit_mode;
        let (kind, slots_out, slots_expected) = match req.op {
            HostOp::Read { bytes, .. } => (
                TransactionKind::Mem(MemOpcode::MemRd),
                0,
                flits_for_transfer(mode, bytes as u64),
            ),
            HostOp::Write { bytes, .. } => (
                TransactionKind::Mem(MemOpcode::MemWr),
                flits_for_transfer(mode, bytes as u64),
                0,
            ),
            HostOp::Cache { op, bytes, .. } => {
                let kind = TransactionKind::Cache(op);
                let out = if kind.carries_data() && bytes > 0 {
                    flits_for_transfer(mode, bytes as u64)
                } else {
                    0
                };
                let expect = if req.op.is_read() {
                    flits_for_transfer(mode, bytes.max(64) as u64)
                } else {
                    0
                };
                (kind, out, expect)
            }
        };
        let txn = Transaction {
            id,
            kind,
            addr: decoded.dpa,
            bytes: req.op.bytes(),
            src: self.node,
            dst: decoded.node,
        };
        self.outstanding.insert(
            id,
            PendingReq {
                tag: req.tag,
                reply_to: req.reply_to,
                issued_at,
                is_read: req.op.is_read(),
                bytes: req.op.bytes(),
                slots_expected,
                slots_got: 0,
                header_got: false,
            },
        );
        self.port.enqueue(ctx, FlitPayload::Transaction(txn));
        for slot in 0..slots_out {
            self.port.enqueue(
                ctx,
                FlitPayload::Data {
                    txn_id: id,
                    slot: slot as u32,
                    src: self.node,
                    dst: decoded.node,
                },
            );
        }
    }

    fn complete(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        // Callers only pass ids they just found in `outstanding`.
        #[allow(clippy::expect_used)]
        let pending = self
            .outstanding
            .remove(&id)
            .expect("completing unknown txn");
        let completion = HostCompletion {
            tag: pending.tag,
            issued_at: pending.issued_at,
            completed_at: ctx.now(),
            was_read: pending.is_read,
        };
        if self.trace.is_enabled() {
            // Label by direction and size so trace-report can separate the
            // small-op and bulk flows sharing one fabric.
            let name = format!(
                "rtt-{}{}",
                if pending.is_read { "rd" } else { "wr" },
                size_label(pending.bytes)
            );
            self.trace.span(
                "fha",
                &name,
                pending.issued_at,
                ctx.now(),
                TraceCtx::new(id),
            );
        }
        self.completions.inc();
        self.latency.record_time(completion.latency());
        ctx.send(pending.reply_to, SimTime::ZERO, completion);
        // Admit a waiting request, if any; its latency clock started when it
        // entered the wait queue, so window stalls show up in the histogram.
        if let Some((req, queued_at)) = self.waitq.pop_front() {
            self.issue(ctx, req, queued_at);
        }
    }

    fn on_payload(&mut self, ctx: &mut Ctx<'_>, payload: FlitPayload) {
        let class = payload.msg_class();
        // The host pipeline drains responses immediately.
        self.port.release(ctx, class);
        match payload {
            FlitPayload::Transaction(txn) => {
                let id = txn.id;
                if !txn.kind.is_response() {
                    // Unsolicited request: a snoop from a coherence
                    // directory. Forward to the host's coherent agent.
                    self.snoops.inc();
                    if let Some(handler) = self.snoop_handler {
                        ctx.send(handler, SimTime::ZERO, SnoopMsg { txn });
                    }
                    return;
                }
                let Some(pending) = self.outstanding.get_mut(&id) else {
                    return;
                };
                pending.header_got = true;
                let done = pending.slots_got >= pending.slots_expected;
                // Writes complete on Cmp; reads on header + all data slots.
                if !pending.is_read || done {
                    self.complete(ctx, id);
                }
            }
            FlitPayload::Data { txn_id, .. } => {
                let Some(pending) = self.outstanding.get_mut(&txn_id) else {
                    return;
                };
                pending.slots_got += 1;
                if pending.header_got && pending.slots_got >= pending.slots_expected {
                    self.complete(ctx, txn_id);
                }
            }
            _ => {}
        }
    }
}

impl Component for Fha {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<HostRequest>() {
            Ok(req) => {
                if self.outstanding.len() < self.max_outstanding {
                    self.issue(ctx, req, ctx.now());
                } else {
                    self.waitq.push_back((req, ctx.now()));
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<FlitMsg>() {
            Ok(fm) => {
                match self.port.receive(ctx, fm) {
                    PortEvent::Delivered(payload, _) => self.on_payload(ctx, payload),
                    PortEvent::CreditFreed
                    | PortEvent::VcCreditReturned { .. }
                    | PortEvent::Quiet => {}
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<SnoopReply>() {
            Ok(reply) => {
                let txn = reply.txn;
                let slots = if txn.kind.carries_data() && txn.bytes > 0 {
                    flits_for_transfer(self.port.phys.flit_mode, txn.bytes as u64)
                } else {
                    0
                };
                let (id, src, dst) = (txn.id, txn.src, txn.dst);
                self.port.enqueue(ctx, FlitPayload::Transaction(txn));
                for slot in 0..slots {
                    self.port.enqueue(
                        ctx,
                        FlitPayload::Data {
                            txn_id: id,
                            slot: slot as u32,
                            src,
                            dst,
                        },
                    );
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<InstallMapping>() {
            Ok(im) => {
                self.add_mapping(im.range, im.node);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<IdentifyReq>() {
            Ok(req) => {
                let rsp = IdentifyRsp {
                    component: ctx.self_id(),
                    node: self.node,
                    is_host: true,
                };
                ctx.send(req.reply_to, SimTime::from_ns(100.0), rsp);
            }
            Err(m) => panic!("fha: unexpected message {}", m.type_name()),
        }
    }

    fn outstanding(&self, out: &mut Vec<PendingWork>) {
        let mut ids: Vec<u64> = self.outstanding.keys().copied().collect();
        ids.sort_unstable();
        out.extend(ids.iter().map(|id| PendingWork {
            what: format!("txn {id:#x} awaiting fabric response"),
            waiting_on: self.port.peer_opt(),
        }));
        if !self.waitq.is_empty() {
            out.push(PendingWork {
                what: format!(
                    "{} request(s) queued behind the outstanding window",
                    self.waitq.len()
                ),
                waiting_on: self.port.peer_opt(),
            });
        }
    }
}

#[derive(Debug)]
struct Reassembly {
    txn: Transaction,
    slots_needed: u64,
    slots_got: u64,
}

/// The Fabric Endpoint Adapter: terminates the fabric at a device.
///
/// The FEA admits at most `queue_depth` transactions into the device at a
/// time; a request beyond that *holds its ingress buffer credit*, so a
/// slow device backpressures through the fabric (the paper's credit
/// back-propagation, §3 D#3).
pub struct Fea {
    node: NodeId,
    port: LinkPort,
    device: Box<dyn Endpoint>,
    reassembly: BTreeMap<u64, Reassembly>,
    queue_depth: usize,
    in_service: usize,
    waiting: VecDeque<(Transaction, SimTime)>,
    trace: Track,
    /// Transactions serviced by the device.
    pub serviced: Counter,
}

/// Self-message: the device finished an access; the response (if any) may
/// enter the fabric and the next waiting request may be admitted.
#[derive(Debug)]
struct ResponseDue {
    txn: Option<Transaction>,
    slots: u64,
}

impl Fea {
    /// Creates an endpoint adapter around `device` with a deep (32-entry)
    /// device admission queue.
    pub fn new(
        node: NodeId,
        phys: PhysConfig,
        credit: CreditConfig,
        device: Box<dyn Endpoint>,
    ) -> Self {
        Self::with_queue_depth(node, phys, credit, device, 32)
    }

    /// Creates an endpoint adapter with an explicit device admission queue
    /// depth (small depths make slow devices backpressure the fabric).
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn with_queue_depth(
        node: NodeId,
        phys: PhysConfig,
        credit: CreditConfig,
        device: Box<dyn Endpoint>,
        queue_depth: usize,
    ) -> Self {
        assert!(queue_depth > 0, "need at least one admission slot");
        Fea {
            node,
            port: LinkPort::new(phys, credit),
            device,
            reassembly: BTreeMap::new(),
            queue_depth,
            in_service: 0,
            waiting: VecDeque::new(),
            trace: Track::default(),
            serviced: Counter::new(),
        }
    }

    /// This adapter's fabric node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Connects the adapter's port to its peer (switch or FHA).
    pub fn connect(&mut self, peer: ComponentId) {
        self.port.connect(peer);
    }

    /// The link port (probes).
    pub fn port(&self) -> &LinkPort {
        &self.port
    }

    /// The link port, mutably (telemetry wiring).
    pub fn port_mut(&mut self) -> &mut LinkPort {
        &mut self.port
    }

    /// Attaches a telemetry track; the adapter then emits admission-wait
    /// and device-service spans keyed by transaction id.
    pub fn set_trace(&mut self, track: Track) {
        self.trace = track;
    }

    /// Whether the adapter has fully drained: nothing in device service,
    /// nothing parked awaiting admission, no partial reassemblies, and no
    /// response payloads awaiting tx credit. Combined with the device's
    /// own [`Endpoint::is_idle`], this is the endpoint half of the
    /// quiescence check that gates hot-remove.
    pub fn is_quiescent(&self, now: SimTime) -> bool {
        self.in_service == 0
            && self.waiting.is_empty()
            && self.reassembly.is_empty()
            && self.port.pending_len() == 0
            && self.device.is_idle(now)
    }

    /// Immutable access to the device.
    pub fn device(&self) -> &dyn Endpoint {
        self.device.as_ref()
    }

    /// Mutable access to the device (telemetry wiring, fault injection).
    pub fn device_mut(&mut self) -> &mut dyn Endpoint {
        self.device.as_mut()
    }

    /// Replaces the device admission-queue depth (experiments shrink it
    /// so slow devices backpressure the fabric).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn set_queue_depth(&mut self, depth: usize) {
        assert!(depth > 0, "need at least one admission slot");
        self.queue_depth = depth;
    }

    /// Admits a fully-reassembled transaction: starts device service if a
    /// slot is free (releasing the request's ingress credit), otherwise
    /// parks it *still holding the credit* so upstream backpressure forms.
    fn try_admit(&mut self, ctx: &mut Ctx<'_>, txn: Transaction) {
        if self.in_service < self.queue_depth {
            self.in_service += 1;
            self.port.release(ctx, txn.kind.msg_class());
            self.service_now(ctx, txn);
        } else {
            self.waiting.push_back((txn, ctx.now()));
        }
    }

    fn service_now(&mut self, ctx: &mut Ctx<'_>, txn: Transaction) {
        let rsp = self.device.service(&txn, ctx.now());
        self.trace.span_nonzero(
            "device",
            "device.service",
            ctx.now(),
            rsp.ready_at,
            txn.trace_ctx(),
        );
        self.serviced.inc();
        let delay = rsp.ready_at - ctx.now();
        let (response, slots) = match rsp.kind {
            Some(kind) => {
                let slots = if kind.carries_data() && rsp.bytes > 0 {
                    flits_for_transfer(self.port.phys.flit_mode, rsp.bytes as u64)
                } else {
                    0
                };
                (Some(txn.response(kind, rsp.bytes)), slots)
            }
            None => (None, 0),
        };
        ctx.send_self(
            delay,
            ResponseDue {
                txn: response,
                slots,
            },
        );
    }

    fn on_payload(&mut self, ctx: &mut Ctx<'_>, payload: FlitPayload) {
        match payload {
            FlitPayload::Transaction(txn) => {
                let mode = self.port.phys.flit_mode;
                if txn.kind.carries_data() && txn.bytes > 0 {
                    let needed = flits_for_transfer(mode, txn.bytes as u64);
                    self.reassembly.insert(
                        txn.id,
                        Reassembly {
                            txn,
                            slots_needed: needed,
                            slots_got: 0,
                        },
                    );
                } else {
                    // The request's credit is held until device admission.
                    self.try_admit(ctx, txn);
                }
            }
            FlitPayload::Data { txn_id, .. } => {
                // Data slots drain into the reassembly buffer immediately.
                self.port.release(
                    ctx,
                    FlitPayload::Data {
                        txn_id,
                        slot: 0,
                        src: self.node,
                        dst: self.node,
                    }
                    .msg_class(),
                );
                let done = {
                    let Some(r) = self.reassembly.get_mut(&txn_id) else {
                        return;
                    };
                    r.slots_got += 1;
                    r.slots_got >= r.slots_needed
                };
                if done {
                    if let Some(r) = self.reassembly.remove(&txn_id) {
                        self.try_admit(ctx, r.txn);
                    }
                }
            }
            other => {
                self.port.release(ctx, other.msg_class());
            }
        }
    }
}

impl Component for Fea {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<FlitMsg>() {
            Ok(fm) => {
                match self.port.receive(ctx, fm) {
                    PortEvent::Delivered(payload, _) => self.on_payload(ctx, payload),
                    PortEvent::CreditFreed
                    | PortEvent::VcCreditReturned { .. }
                    | PortEvent::Quiet => {}
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ResponseDue>() {
            Ok(due) => {
                if let Some(txn) = due.txn {
                    let (id, src, dst) = (txn.id, txn.src, txn.dst);
                    self.port.enqueue(ctx, FlitPayload::Transaction(txn));
                    for slot in 0..due.slots {
                        self.port.enqueue(
                            ctx,
                            FlitPayload::Data {
                                txn_id: id,
                                slot: slot as u32,
                                src,
                                dst,
                            },
                        );
                    }
                }
                // Free the device slot and admit the next waiter.
                self.in_service = self.in_service.saturating_sub(1);
                if let Some((next, parked_at)) = self.waiting.pop_front() {
                    self.in_service += 1;
                    // The wait held an ingress credit the whole time — this
                    // span is the root cause behind upstream credit-waits.
                    self.trace.span_nonzero(
                        "fea",
                        "fea.admission_wait",
                        parked_at,
                        ctx.now(),
                        next.trace_ctx(),
                    );
                    self.port.release(ctx, next.kind.msg_class());
                    self.service_now(ctx, next);
                }
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<IdentifyReq>() {
            Ok(req) => {
                let rsp = IdentifyRsp {
                    component: ctx.self_id(),
                    node: self.node,
                    is_host: false,
                };
                ctx.send(req.reply_to, SimTime::from_ns(100.0), rsp);
            }
            Err(m) => panic!("fea: unexpected message {}", m.type_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use fcc_proto::addr::AddrRange;
    use fcc_sim::Engine;

    use super::*;
    use crate::endpoint::FixedLatencyMemory;

    /// Collects completions for assertions.
    struct Sink {
        done: Vec<HostCompletion>,
    }

    impl Component for Sink {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            self.done
                .push(msg.downcast::<HostCompletion>().expect("completion"));
        }
    }

    /// Builds host ↔ device directly attached (no switch).
    fn direct_pair(
        engine: &mut Engine,
        read_ns: f64,
        write_ns: f64,
        max_outstanding: usize,
    ) -> (ComponentId, ComponentId, ComponentId) {
        let phys = PhysConfig::omega_like();
        let credit = CreditConfig::default();
        let host_node = NodeId(1);
        let dev_node = NodeId(2);
        let mut map = AddrMap::new();
        map.add_direct(AddrRange::new(0, 1 << 30), dev_node);
        let fha = engine.add_component(
            "fha",
            Fha::new(host_node, phys, credit, map, max_outstanding),
        );
        let dev = FixedLatencyMemory::new(
            SimTime::from_ns(read_ns),
            SimTime::from_ns(write_ns),
            1 << 30,
        );
        let fea = engine.add_component("fea", Fea::new(dev_node, phys, credit, Box::new(dev)));
        engine.component_mut::<Fha>(fha).connect(fea);
        engine.component_mut::<Fea>(fea).connect(fha);
        let sink = engine.add_component("sink", Sink { done: vec![] });
        (fha, fea, sink)
    }

    #[test]
    fn read_round_trip_latency_adds_up() {
        let mut engine = Engine::new(3);
        let (fha, _fea, sink) = direct_pair(&mut engine, 100.0, 100.0, 8);
        engine.post(
            fha,
            SimTime::ZERO,
            HostRequest {
                op: HostOp::Read {
                    addr: 0x1000,
                    bytes: 64,
                },
                tag: 1,
                reply_to: sink,
            },
        );
        engine.run_until_idle();
        let done = &engine.component::<Sink>(sink).done;
        assert_eq!(done.len(), 1);
        let lat = done[0].latency();
        let phys = PhysConfig::omega_like();
        // Request flit out + device 100ns + response header + data slot back.
        let one_way = phys.flit_serialization() + phys.propagation;
        let min = one_way * 2 + SimTime::from_ns(100.0);
        assert!(lat >= min, "latency {lat} < floor {min}");
        assert!(lat < min + SimTime::from_ns(20.0), "latency {lat} too high");
        assert!(done[0].was_read);
    }

    #[test]
    fn write_completes_on_cmp() {
        let mut engine = Engine::new(3);
        let (fha, fea, sink) = direct_pair(&mut engine, 100.0, 40.0, 8);
        engine.post(
            fha,
            SimTime::ZERO,
            HostRequest {
                op: HostOp::Write {
                    addr: 0x2000,
                    bytes: 64,
                },
                tag: 7,
                reply_to: sink,
            },
        );
        engine.run_until_idle();
        let done = &engine.component::<Sink>(sink).done;
        assert_eq!(done.len(), 1);
        assert!(!done[0].was_read);
        let fea_ref = engine.component::<Fea>(fea);
        assert_eq!(fea_ref.serviced.get(), 1);
    }

    #[test]
    fn outstanding_window_throttles_issue() {
        let mut engine = Engine::new(3);
        let (fha, _fea, sink) = direct_pair(&mut engine, 100.0, 100.0, 2);
        for i in 0..6 {
            engine.post(
                fha,
                SimTime::ZERO,
                HostRequest {
                    op: HostOp::Read {
                        addr: i * 64,
                        bytes: 64,
                    },
                    tag: i,
                    reply_to: sink,
                },
            );
        }
        // Immediately after issue, only 2 in flight, 4 queued.
        engine.call_at(SimTime::from_ps(1), move |e| {
            let f = e.component::<Fha>(fha);
            assert_eq!(f.in_flight(), 2);
            assert_eq!(f.queued(), 4);
        });
        engine.run_until_idle();
        let done = &engine.component::<Sink>(sink).done;
        assert_eq!(done.len(), 6);
        // With a window of 2 and a 100ns serial device, the last completion
        // is no earlier than 3 * (2 serialized reads) behind the first...
        // simpler invariant: completions are spread over ≥ 6 * 100ns of
        // device time because the device is serial.
        let last = done.iter().map(|c| c.completed_at).max().expect("some");
        assert!(last >= SimTime::from_ns(600.0));
    }

    #[test]
    fn large_read_streams_data_slots() {
        let mut engine = Engine::new(3);
        let (fha, _fea, sink) = direct_pair(&mut engine, 100.0, 100.0, 8);
        engine.post(
            fha,
            SimTime::ZERO,
            HostRequest {
                op: HostOp::Read {
                    addr: 0,
                    bytes: 16384,
                },
                tag: 1,
                reply_to: sink,
            },
        );
        engine.run_until_idle();
        let done = &engine.component::<Sink>(sink).done;
        assert_eq!(done.len(), 1);
        // 16 KiB = 256 data flits at ~1.08ns each ≈ 278ns of wire, plus
        // device and propagation: must be well above the 64B case.
        assert!(done[0].latency() > SimTime::from_ns(350.0));
    }

    #[test]
    fn txn_ids_are_globally_unique_per_node() {
        let phys = PhysConfig::omega_like();
        let mut map = AddrMap::new();
        map.add_direct(AddrRange::new(0, 4096), NodeId(9));
        let mut a = Fha::new(NodeId(1), phys, CreditConfig::default(), map.clone(), 4);
        let mut b = Fha::new(NodeId(2), phys, CreditConfig::default(), map, 4);
        let ia = a.alloc_txn_id();
        let ib = b.alloc_txn_id();
        assert_ne!(ia, ib);
        assert_eq!(ia >> 48, 1);
        assert_eq!(ib >> 48, 2);
    }
}
