//! A Flex Bus link endpoint bound to a simulated wire.
//!
//! [`LinkPort`] couples a `fcc-proto` [`LinkLayer`] state machine with the
//! timing of one unidirectional wire pair: flits occupy the wire for their
//! serialization time (tracked with a `wire_free_at` watermark so
//! back-to-back flits pipeline at line rate), then arrive at the peer after
//! the propagation delay. The port also runs the credit pump: payloads
//! queue locally until the link layer has transmit credit, and incoming
//! credit updates release them.

use std::collections::VecDeque;

use rand::Rng;

use fcc_proto::channel::MsgClass;
use fcc_proto::flit::{Flit, FlitPayload};
use fcc_proto::link::{CreditConfig, LinkLayer, RxAction};
use fcc_proto::phys::PhysConfig;
use fcc_sim::{ComponentId, Counter, Ctx, SimTime};
use fcc_telemetry::Track;

/// A flit crossing a wire between two components.
#[derive(Debug)]
pub struct FlitMsg {
    /// The flit on the wire.
    pub flit: Flit,
    /// Virtual channel the flit occupies on a wormhole switch-to-switch
    /// link (`None` on legacy links and endpoint-facing ports). Carried
    /// out of band of the flit encoding: the VC tag is hop-local switch
    /// state, re-chosen at every hop, so it never enters the CRC.
    pub vc: Option<u8>,
}

/// What a received flit meant for the owner of the port.
#[derive(Debug, PartialEq)]
pub enum PortEvent {
    /// A transaction-layer payload was delivered into the receive buffer.
    /// The owner must call [`LinkPort::release`] once it drains. The VC
    /// tag (if any) names the lane whose downstream buffer the flit now
    /// occupies; the owner must return it upstream with
    /// [`LinkPort::return_vc_credit`] when the flit departs.
    Delivered(FlitPayload, Option<u8>),
    /// Link-layer control was processed and transmit credits may have been
    /// freed; the owner should re-run any blocked scheduling decisions.
    CreditFreed,
    /// The peer returned per-virtual-channel credits for lane `vc`; the
    /// owner should refund its VC ledger and re-run scheduling.
    VcCreditReturned {
        /// Lane being replenished.
        vc: u8,
        /// Flit credits granted.
        credits: u32,
    },
    /// Nothing actionable (duplicate, ack bookkeeping, retransmission).
    Quiet,
}

/// One endpoint of a full-duplex Flex Bus link.
pub struct LinkPort {
    /// Physical-layer configuration of the wire.
    pub phys: PhysConfig,
    /// Link-layer state machine.
    pub link: LinkLayer,
    peer: Option<ComponentId>,
    wire_free_at: SimTime,
    pending: VecDeque<(FlitPayload, SimTime)>,
    pending_limit: usize,
    trace: Track,
    /// Per-flit corruption probability (fault injection).
    pub error_rate: f64,
    /// Flits transmitted (including control and retransmissions).
    pub tx_flits: Counter,
    /// Flits received (pre link-layer filtering).
    pub rx_flits: Counter,
}

impl LinkPort {
    /// Creates an unbound port.
    pub fn new(phys: PhysConfig, credit: CreditConfig) -> Self {
        LinkPort {
            phys,
            link: LinkLayer::symmetric(phys.flit_mode, credit),
            peer: None,
            wire_free_at: SimTime::ZERO,
            pending: VecDeque::new(),
            pending_limit: usize::MAX,
            trace: Track::default(),
            error_rate: 0.0,
            tx_flits: Counter::new(),
            rx_flits: Counter::new(),
        }
    }

    /// Bounds the local pending queue (for components that must exert
    /// backpressure instead of buffering arbitrarily).
    pub fn with_pending_limit(mut self, limit: usize) -> Self {
        self.pending_limit = limit;
        self
    }

    /// Binds the port to its peer component.
    pub fn connect(&mut self, peer: ComponentId) {
        self.peer = Some(peer);
    }

    /// Attaches a telemetry track; the port then emits credit-wait,
    /// serialization, and retransmission spans for the flits it moves.
    pub fn set_trace(&mut self, track: Track) {
        self.trace = track;
    }

    /// The connected peer.
    ///
    /// # Panics
    ///
    /// Panics if the port was never connected.
    pub fn peer(&self) -> ComponentId {
        #[allow(clippy::expect_used)] // a send on an unwired port is a topology bug
        self.peer.expect("port not connected")
    }

    /// The connected peer, if the port has been wired up.
    pub fn peer_opt(&self) -> Option<ComponentId> {
        self.peer
    }

    /// Whether the local pending queue can take another payload.
    pub fn can_enqueue(&self) -> bool {
        self.pending.len() < self.pending_limit
    }

    /// Number of payloads waiting for transmit credit.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Whether a payload of `class` could be sent immediately (credit
    /// available and nothing already queued ahead of it).
    pub fn can_send_now(&self, class: MsgClass) -> bool {
        self.pending.is_empty() && self.link.can_send(class)
    }

    /// Queues a payload and pumps the transmit path.
    ///
    /// Returns `false` (payload refused) when the pending queue is full.
    pub fn enqueue(&mut self, ctx: &mut Ctx<'_>, payload: FlitPayload) -> bool {
        if !self.can_enqueue() {
            return false;
        }
        self.pending.push_back((payload, ctx.now()));
        self.pump(ctx);
        true
    }

    /// Sends a payload immediately, bypassing the pending queue.
    ///
    /// The caller must have checked [`LinkPort::can_send_now`]; used by the
    /// switch scheduler which runs its own queueing.
    ///
    /// # Panics
    ///
    /// Panics if the link layer refuses the payload.
    pub fn send_now(&mut self, ctx: &mut Ctx<'_>, payload: FlitPayload) {
        self.send_now_vc(ctx, payload, None);
    }

    /// Sends a payload immediately on virtual channel `vc` (wormhole
    /// switch dispatch). Same contract as [`LinkPort::send_now`]; the VC
    /// tag rides the wire message so the peer knows which lane's buffer
    /// the flit occupies.
    ///
    /// # Panics
    ///
    /// Panics if the link layer refuses the payload.
    pub fn send_now_vc(&mut self, ctx: &mut Ctx<'_>, payload: FlitPayload, vc: Option<u8>) {
        // Documented-panic API: the caller contract is can_send_now first.
        #[allow(clippy::expect_used)]
        let flit = self
            .link
            .send(payload)
            .expect("caller must check can_send_now");
        self.transmit(ctx, flit, vc);
    }

    /// Returns `credits` flit credits for virtual channel `vc` to the
    /// peer (uncredited control; the wormhole switch calls this when a
    /// VC-tagged flit departs its ingress buffer).
    pub fn return_vc_credit(&mut self, ctx: &mut Ctx<'_>, vc: u8, credits: u32) {
        self.transmit_control(ctx, FlitPayload::VcCredit { vc, credits });
    }

    /// Moves queued payloads onto the wire while credits allow.
    pub fn pump(&mut self, ctx: &mut Ctx<'_>) {
        while let Some((front, _)) = self.pending.front() {
            if !self.link.can_send(front.msg_class()) {
                break;
            }
            // front() was Some and can_send was checked on the same
            // single-threaded link state, so both steps must succeed.
            #[allow(clippy::expect_used)]
            let (payload, queued_at) = self.pending.pop_front().expect("front exists");
            self.trace.span_nonzero_merged(
                "credit",
                "link.credit_wait",
                queued_at,
                ctx.now(),
                payload.trace_ctx(),
            );
            #[allow(clippy::expect_used)]
            let flit = self.link.send(payload).expect("can_send checked");
            self.transmit(ctx, flit, None);
        }
    }

    fn transmit(&mut self, ctx: &mut Ctx<'_>, mut flit: Flit, vc: Option<u8>) {
        // Error injection applies to sequenced payload flits only: real
        // link layers recover lost control DLLPs with replay timers, which
        // this model omits; corrupting an un-timed NAK would wedge the
        // link rather than exercise the retry path under study.
        if self.error_rate > 0.0
            && !flit.payload.is_control()
            && ctx.rng().gen_bool(self.error_rate)
        {
            flit.corrupt();
        }
        let serialize = self.phys.flit_serialization();
        let depart = self.wire_free_at.max(ctx.now());
        self.wire_free_at = depart + serialize;
        let arrive = self.wire_free_at + self.phys.propagation;
        self.tx_flits.inc();
        // Only transaction-carrying flits get serialize spans: ack and
        // credit chatter (trace id 0) would bloat the trace and break the
        // merge chains that collapse a bulk burst into one span.
        let tctx = flit.payload.trace_ctx();
        if tctx.is_tracked() {
            self.trace
                .span_merged("link", "link.serialize", depart, self.wire_free_at, tctx);
        }
        ctx.send(self.peer(), arrive - ctx.now(), FlitMsg { flit, vc });
    }

    /// Sends a control payload (uncredited) onto the wire.
    fn transmit_control(&mut self, ctx: &mut Ctx<'_>, payload: FlitPayload) {
        // Control payloads bypass credits and the retry buffer, so the
        // link layer can never refuse them.
        #[allow(clippy::expect_used)]
        let flit = self.link.send(payload).expect("control is uncredited");
        self.transmit(ctx, flit, None);
    }

    /// Processes an arriving flit and returns what it meant.
    pub fn receive(&mut self, ctx: &mut Ctx<'_>, msg: FlitMsg) -> PortEvent {
        self.rx_flits.inc();
        // NAKs demand retransmission, which needs the flits back from the
        // retry buffer — handle them here rather than in the link layer.
        // VC credit returns are likewise owner-level state (the switch's
        // per-lane ledgers), not link-layer state.
        if msg.flit.crc_ok() {
            if let FlitPayload::Nak { from_seq } = msg.flit.payload {
                self.retransmit_from(ctx, from_seq);
                return PortEvent::Quiet;
            }
            if let FlitPayload::VcCredit { vc, credits } = msg.flit.payload {
                return PortEvent::VcCreditReturned { vc, credits };
            }
        }
        let vc = msg.vc;
        match self.link.receive(msg.flit) {
            RxAction::Deliver(payload) => {
                if let Some(ack) = self.link.take_ack() {
                    self.transmit_control(ctx, ack);
                }
                PortEvent::Delivered(payload, vc)
            }
            RxAction::Control => {
                // A NAK requires us to retransmit; a credit update may have
                // unblocked the pending queue.
                // The link layer already applied acks and credit grants.
                self.pump(ctx);
                PortEvent::CreditFreed
            }
            RxAction::Refused(nak) => {
                self.transmit_control(ctx, nak);
                PortEvent::Quiet
            }
            RxAction::Duplicate => PortEvent::Quiet,
        }
    }

    /// Retransmits all unacked flits from `from_seq` (go-back-N).
    ///
    /// Invoked automatically by [`LinkPort::receive`] when a NAK arrives.
    pub fn retransmit_from(&mut self, ctx: &mut Ctx<'_>, from_seq: u64) {
        let flits = self.link.on_nak(from_seq);
        for f in flits {
            self.trace
                .instant("link", "link.retransmit", ctx.now(), f.payload.trace_ctx());
            // Retransmissions lose the hop-local VC tag; VC-flow-controlled
            // links run error-free (see `FabricSwitch::set_vc_link`).
            self.transmit(ctx, f, None);
        }
    }

    /// Releases one received message of `class` from the receive buffer
    /// and returns any due credit update to the peer.
    pub fn release(&mut self, ctx: &mut Ctx<'_>, class: MsgClass) {
        self.link.release(class);
        if let Some(update) = self.link.take_credit_update() {
            self.transmit_control(ctx, update);
        }
    }

    /// Flushes coalesced acks and credit returns (idle-timer path).
    pub fn flush_control(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(ack) = self.link.flush_ack() {
            self.transmit_control(ctx, ack);
        }
        for update in self.link.flush_credit_updates() {
            self.transmit_control(ctx, update);
        }
    }

    /// The time the wire will next be idle (for utilization probes).
    pub fn wire_free_at(&self) -> SimTime {
        self.wire_free_at
    }
}

#[cfg(test)]
mod tests {
    use fcc_proto::addr::NodeId;
    use fcc_proto::channel::{MemOpcode, Transaction, TransactionKind};
    use fcc_sim::{Component, Engine, Msg};

    use super::*;

    /// Two components joined by a link; the sink counts deliveries.
    struct Node {
        port: LinkPort,
        delivered: Vec<FlitPayload>,
        release_on_delivery: bool,
    }

    impl Node {
        fn new(release: bool) -> Self {
            Node {
                port: LinkPort::new(PhysConfig::omega_like(), CreditConfig::default()),
                delivered: Vec::new(),
                release_on_delivery: release,
            }
        }
    }

    impl Node {
        fn handle_flit(&mut self, ctx: &mut Ctx<'_>, fm: FlitMsg) {
            match self.port.receive(ctx, fm) {
                PortEvent::Delivered(payload, _) => {
                    let class = payload.msg_class();
                    self.delivered.push(payload);
                    if self.release_on_delivery {
                        self.port.release(ctx, class);
                    }
                }
                PortEvent::CreditFreed | PortEvent::VcCreditReturned { .. } | PortEvent::Quiet => {}
            }
        }

        fn handle_inject(&mut self, ctx: &mut Ctx<'_>, inj: Inject) {
            for p in inj.0 {
                assert!(self.port.enqueue(ctx, p), "pending queue full");
            }
        }
    }

    fn read_txn(id: u64) -> FlitPayload {
        FlitPayload::Transaction(Transaction {
            id,
            kind: TransactionKind::Mem(MemOpcode::MemRd),
            addr: id * 64,
            bytes: 0,
            src: NodeId(0),
            dst: NodeId(1),
        })
    }

    struct Inject(Vec<FlitPayload>);

    fn inject(engine: &mut Engine, node: ComponentId, payloads: Vec<FlitPayload>) {
        engine.post(node, engine.now(), Inject(payloads));
    }

    /// Test component: a link endpoint that records deliveries and accepts
    /// harness-injected payloads.
    struct DrivenNode(Node);

    impl Component for DrivenNode {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            match msg.downcast::<Inject>() {
                Ok(inj) => self.0.handle_inject(ctx, inj),
                Err(msg) => {
                    let fm = msg.downcast::<FlitMsg>().expect("flit");
                    self.0.handle_flit(ctx, fm);
                }
            }
        }
    }

    fn driven_pair(engine: &mut Engine, release: bool) -> (ComponentId, ComponentId) {
        let a = engine.add_component("a", DrivenNode(Node::new(release)));
        let b = engine.add_component("b", DrivenNode(Node::new(release)));
        engine.component_mut::<DrivenNode>(a).0.port.connect(b);
        engine.component_mut::<DrivenNode>(b).0.port.connect(a);
        (a, b)
    }

    #[test]
    fn delivery_latency_is_serialization_plus_propagation() {
        let mut engine = Engine::new(1);
        let (a, b) = driven_pair(&mut engine, true);
        inject(&mut engine, a, vec![read_txn(0)]);
        engine.run_until_idle();
        let node_b = &engine.component::<DrivenNode>(b).0;
        assert_eq!(node_b.delivered.len(), 1);
        let phys = PhysConfig::omega_like();
        let expect = phys.flit_serialization() + phys.propagation;
        // Final time includes ack/credit control chatter; the delivery
        // itself happened at `expect`. Verify through the wire watermark.
        assert!(engine.now() >= expect);
    }

    #[test]
    fn back_to_back_flits_pipeline_at_line_rate() {
        let mut engine = Engine::new(1);
        let (a, b) = driven_pair(&mut engine, true);
        let n = 32;
        inject(&mut engine, a, (0..n).map(read_txn).collect());
        engine.run_until_idle();
        let node_b = &engine.component::<DrivenNode>(b).0;
        assert_eq!(node_b.delivered.len(), n as usize);
        let phys = PhysConfig::omega_like();
        // All n flits serialized consecutively: wire busy n * ser.
        let sender = &engine.component::<DrivenNode>(a).0;
        let min_busy = phys.flit_serialization() * n;
        assert!(sender.port.wire_free_at() >= min_busy);
    }

    #[test]
    fn without_release_credits_exhaust_and_pending_builds() {
        let mut engine = Engine::new(1);
        let (a, b) = driven_pair(&mut engine, false);
        // Default config: 64 buffer flits, 16 credits per class.
        let n = 40;
        inject(&mut engine, a, (0..n).map(read_txn).collect());
        engine.run_until_idle();
        let node_b = &engine.component::<DrivenNode>(b).0;
        assert_eq!(node_b.delivered.len(), 16, "one class worth of credits");
        let sender = &engine.component::<DrivenNode>(a).0;
        assert_eq!(sender.port.pending_len(), (n - 16) as usize);
        let _ = a;
    }

    #[test]
    fn release_returns_credits_and_unblocks() {
        let mut engine = Engine::new(1);
        let (a, b) = driven_pair(&mut engine, true);
        let n = 100;
        inject(&mut engine, a, (0..n).map(read_txn).collect());
        engine.run_until_idle();
        let node_b = &engine.component::<DrivenNode>(b).0;
        assert_eq!(node_b.delivered.len(), n as usize);
        let sender = &engine.component::<DrivenNode>(a).0;
        assert_eq!(sender.port.pending_len(), 0);
    }

    #[test]
    fn corrupted_flits_are_retransmitted() {
        let mut engine = Engine::new(7);
        let (a, b) = driven_pair(&mut engine, true);
        engine.component_mut::<DrivenNode>(a).0.port.error_rate = 0.2;
        let n = 50;
        inject(&mut engine, a, (0..n).map(read_txn).collect());
        engine.run_until_idle();
        let node_b = &engine.component::<DrivenNode>(b).0;
        assert_eq!(
            node_b.delivered.len(),
            n as usize,
            "lossless despite errors"
        );
        let ids: Vec<u64> = node_b
            .delivered
            .iter()
            .filter_map(|p| match p {
                FlitPayload::Transaction(t) => Some(t.id),
                _ => None,
            })
            .collect();
        let expect: Vec<u64> = (0..n).collect();
        assert_eq!(ids, expect, "in order exactly once");
        assert!(
            engine
                .component::<DrivenNode>(a)
                .0
                .port
                .link
                .retransmissions()
                > 0
        );
    }

    #[test]
    fn pending_limit_exerts_backpressure() {
        let mut engine = Engine::new(1);
        let a = engine.add_component(
            "a",
            DrivenNode(Node {
                port: LinkPort::new(PhysConfig::omega_like(), CreditConfig::default())
                    .with_pending_limit(2),
                delivered: Vec::new(),
                release_on_delivery: false,
            }),
        );
        let b = engine.add_component("b", DrivenNode(Node::new(false)));
        engine.component_mut::<DrivenNode>(a).0.port.connect(b);
        engine.component_mut::<DrivenNode>(b).0.port.connect(a);
        // Exhaust the 16 Req credits, then fill the 2-entry pending queue;
        // can_enqueue must then report backpressure.
        inject(&mut engine, a, (0..18).map(read_txn).collect());
        engine.call_at(SimTime::from_ps(1), move |e| {
            let sender = &e.component::<DrivenNode>(a).0;
            assert_eq!(sender.port.pending_len(), 2);
            assert!(!sender.port.can_enqueue());
        });
        engine.run_until_idle();
        let sender = &engine.component::<DrivenNode>(a).0;
        assert_eq!(sender.port.pending_len(), 2, "receiver never releases");
    }
}
