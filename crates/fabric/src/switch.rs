//! The fabric switch (FS): ports, queueing, scheduling, and forwarding.
//!
//! "An FS consists of upstream ports (UPs) for FHA connectivity,
//! downstream ports (DPs) for remote devices/memory modules, and internal
//! switching tables associated with efficient traffic orchestration"
//! (§2.2). The model is an input-queued switch:
//!
//! * Arriving flits are admitted by the ingress port's link layer (credit
//!   pool) and wait in an ingress queue for the per-flit forwarding
//!   latency, then for egress credit toward the next hop. Ingress buffer
//!   credits return upstream only when a flit departs — this is what makes
//!   congestion back-propagate across switches (§3 D#3, "credit
//!   coordination").
//! * [`QueueDiscipline::Fifo`] keeps one FIFO per input: a head flit whose
//!   output is credit-starved blocks younger flits to idle outputs —
//!   head-of-line blocking (§3 D#3, "credit-flow scheduling").
//! * [`QueueDiscipline::Voq`] keeps virtual output queues, removing HOL
//!   blocking; outputs arbitrate round-robin across inputs.
//! * Egress credit allocation follows [`AllocPolicy`]: static-fair, the
//!   exponential ramp-up scheme the paper critiques, or arbitrated
//!   reservations installed by the central arbiter.
//! * Adaptive routing picks the least-backlogged candidate port.

use std::collections::{BTreeMap, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use fcc_proto::addr::NodeId;
use fcc_proto::channel::MsgClass;
use fcc_proto::flit::FlitPayload;
use fcc_proto::link::CreditConfig;
use fcc_proto::phys::PhysConfig;
use fcc_sched::{FabricScheduler, InstallScheduler};
use fcc_sim::{Component, ComponentId, Counter, Ctx, Msg, PendingWork, SimTime, TokenBucket};
use fcc_telemetry::Track;

use crate::credit::{AllocPolicy, RampUpState};
use crate::port::{FlitMsg, LinkPort, PortEvent};
use crate::routing::RoutingTable;
use crate::wormhole::{VcConfig, VcLink};

/// Identifies a flow (source endpoint, destination endpoint) for the
/// arbiter's reservations and the switch's rate enforcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// Ingress queue organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// One FIFO per input port (credit-agnostic; HOL-blocking prone).
    Fifo,
    /// Virtual output queues per (input, output).
    Voq,
    /// Wormhole switching with per-virtual-channel flow control: ingress
    /// queues per (input, VC), flit-granular lane allocation that holds a
    /// VC for a whole transfer (header + data slots), per-(port, VC)
    /// credit ledgers on egress links configured via
    /// [`FabricSwitch::set_vc_link`], and escape-VC routing (lane 0 is
    /// restricted to each destination's primary deterministic route). See
    /// [`crate::wormhole`].
    Wormhole,
}

/// Static switch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// Physical layer of every port (per-port overrides via
    /// [`FabricSwitch::add_port_with`]).
    pub phys: PhysConfig,
    /// Link-layer credit configuration of every port.
    pub credit: CreditConfig,
    /// Per-flit forwarding latency through the crossbar (FabreX: <100 ns).
    pub fwd_latency: SimTime,
    /// Ingress queue organization.
    pub queueing: QueueDiscipline,
    /// Egress credit allocation policy.
    pub allocation: AllocPolicy,
    /// Whether to spread traffic across alternate routes adaptively.
    pub adaptive: bool,
}

impl SwitchConfig {
    /// A FabreX-like switch: ~90 ns port latency, fair allocation, VOQs.
    pub fn fabrex_like() -> Self {
        SwitchConfig {
            phys: PhysConfig::omega_like(),
            credit: CreditConfig::default(),
            fwd_latency: SimTime::from_ns(90.0),
            queueing: QueueDiscipline::Voq,
            allocation: AllocPolicy::Fair,
            adaptive: false,
        }
    }
}

/// Installs a PBR route (from the fabric manager).
#[derive(Debug, Clone, Copy)]
pub struct InstallPbrRoute {
    /// Destination node.
    pub dst: NodeId,
    /// Output port.
    pub port: usize,
}

/// Prunes every PBR route toward a node (from the fabric manager or the
/// elastic composer, once the node has quiesced).
#[derive(Debug, Clone, Copy)]
pub struct RemovePbrRoute {
    /// Destination node whose routes are withdrawn.
    pub dst: NodeId,
}

/// Installs an HBR route (from the fabric manager).
#[derive(Debug, Clone, Copy)]
pub struct InstallHbrRoute {
    /// Foreign domain.
    pub domain: crate::routing::DomainId,
    /// Output port.
    pub port: usize,
}

/// Declares a node's domain (from the fabric manager).
#[derive(Debug, Clone, Copy)]
pub struct SetNodeDomain {
    /// The node.
    pub node: NodeId,
    /// Its domain.
    pub domain: crate::routing::DomainId,
}

/// Installs a flow rate reservation (from the central arbiter).
#[derive(Debug, Clone, Copy)]
pub struct InstallRate {
    /// The reserved flow.
    pub flow: FlowId,
    /// Sustained rate in Gbit/s.
    pub gbps: f64,
    /// Burst allowance in bytes.
    pub burst_bytes: u64,
}

/// Removes a flow reservation (from the central arbiter).
#[derive(Debug, Clone, Copy)]
pub struct RemoveRate {
    /// The flow to release.
    pub flow: FlowId,
}

/// Discovery probe (from the fabric manager).
#[derive(Debug, Clone, Copy)]
pub struct DiscoverReq {
    /// Where to send the [`DiscoverRsp`].
    pub reply_to: ComponentId,
}

/// Discovery answer: the peer component on each port.
#[derive(Debug, Clone)]
pub struct DiscoverRsp {
    /// The responding switch.
    pub switch: ComponentId,
    /// Peer component per port index.
    pub peers: Vec<ComponentId>,
}

/// Self-message: re-run the scheduler.
#[derive(Debug, Clone, Copy)]
struct Kick;

/// Self-message: ramp-up window rollover.
#[derive(Debug, Clone, Copy)]
struct WindowTick;

/// Self-message: tenant-scheduler window rollover.
#[derive(Debug, Clone, Copy)]
struct SchedTick;

#[derive(Debug)]
struct Entry {
    payload: FlitPayload,
    class: MsgClass,
    ready_at: SimTime,
    flow: FlowId,
    enqueued_at: SimTime,
    /// Ingress lane the flit arrived on (VC-flow-controlled links only);
    /// its credit is returned upstream when the flit departs.
    in_vc: Option<u8>,
}

/// An in-transit multi-flit transfer (header + data slots) holding — or
/// about to hold — one egress virtual channel from head to tail.
#[derive(Debug)]
struct Worm {
    /// Egress port fixed at head admission; body flits follow the head.
    out: usize,
    /// Lane allocated at head dispatch (`None` until the head moves).
    lane: Option<u8>,
    /// Flits of this transfer not yet dispatched (including the header).
    remaining: u64,
}

/// A fabric switch component.
pub struct FabricSwitch {
    cfg: SwitchConfig,
    ports: Vec<LinkPort>,
    peer_to_port: HashMap<ComponentId, usize>,
    /// Routing table (public so topology builders can pre-install routes).
    pub routing: RoutingTable,
    /// FIFO discipline: one queue per input.
    fifo: Vec<VecDeque<Entry>>,
    /// VOQ discipline: queues[input][output].
    voq: Vec<Vec<VecDeque<Entry>>>,
    /// Wormhole discipline: queues[input][ingress lane]. Ports without VC
    /// flow control (endpoint-facing) keep a single lane-0 queue.
    vcq: Vec<Vec<VecDeque<Entry>>>,
    /// Per-egress-port VC credit ledgers (only on links configured via
    /// [`FabricSwitch::set_vc_link`]).
    vc_links: Vec<Option<VcLink>>,
    /// In-transit transfers, keyed by transaction id.
    worms: BTreeMap<u64, Worm>,
    rr_input: usize,
    ramp: Vec<Option<RampUpState>>,
    flows: BTreeMap<FlowId, TokenBucket>,
    /// Tenant admission point, when fabric-level QoS is installed. The
    /// partition gate layers over the per-output ramp gate: a flit
    /// dispatches only when both its input's ramp allocation and its
    /// tenant's partition window admit it.
    sched: Option<FabricScheduler>,
    sched_tick_armed: bool,
    tick_armed: bool,
    /// Earliest pending Kick self-message (dedup: one in flight).
    next_kick_at: Option<SimTime>,
    trace: Track,
    /// Flits forwarded.
    pub forwarded: Counter,
    /// Flits dropped for lack of a route.
    pub unroutable: Counter,
    /// Sum of per-flit queueing delays (ps) for mean-delay probes.
    pub queue_delay_ps: Counter,
}

impl FabricSwitch {
    /// Creates a switch with no ports.
    pub fn new(cfg: SwitchConfig) -> Self {
        FabricSwitch {
            cfg,
            ports: Vec::new(),
            peer_to_port: HashMap::new(),
            routing: RoutingTable::new(crate::routing::DomainId(0)),
            fifo: Vec::new(),
            voq: Vec::new(),
            vcq: Vec::new(),
            vc_links: Vec::new(),
            worms: BTreeMap::new(),
            rr_input: 0,
            ramp: Vec::new(),
            flows: BTreeMap::new(),
            sched: None,
            sched_tick_armed: false,
            tick_armed: false,
            next_kick_at: None,
            trace: Track::default(),
            forwarded: Counter::new(),
            unroutable: Counter::new(),
            queue_delay_ps: Counter::new(),
        }
    }

    /// Adds a port with the switch-default phys/credit config.
    pub fn add_port(&mut self) -> usize {
        self.add_port_with(self.cfg.phys, self.cfg.credit)
    }

    /// Adds a port with explicit physical/credit configuration.
    pub fn add_port_with(&mut self, phys: PhysConfig, credit: CreditConfig) -> usize {
        let idx = self.ports.len();
        self.ports.push(LinkPort::new(phys, credit));
        self.fifo.push(VecDeque::new());
        for q in &mut self.voq {
            q.push(VecDeque::new());
        }
        self.voq
            .push((0..self.ports.len()).map(|_| VecDeque::new()).collect());
        // Existing voq rows gained a column above; new row sized to ports.
        for q in &mut self.voq {
            while q.len() < self.ports.len() {
                q.push(VecDeque::new());
            }
        }
        self.ramp.push(None);
        self.vcq.push(vec![VecDeque::new()]);
        self.vc_links.push(None);
        idx
    }

    /// Enables per-virtual-channel flow control on `port` (a wormhole
    /// switch-to-switch link). Both ends of the link must be configured
    /// with the same `cfg`: the egress ledger created here mirrors the
    /// peer's per-lane ingress buffers. VC links must run error-free
    /// (`error_rate` 0) — retransmitted flits lose their hop-local lane
    /// tag — and their link-layer credit pools should be at least
    /// `vcs * buf_flits` per class so the per-lane ledgers, not the
    /// shared class pool, are the binding flow-control constraint (the
    /// escape-VC deadlock argument needs lane isolation).
    pub fn set_vc_link(&mut self, port: usize, cfg: VcConfig) {
        self.vc_links[port] = Some(VcLink::new(cfg));
        let lanes = usize::from(cfg.vcs.max(2));
        while self.vcq[port].len() < lanes {
            self.vcq[port].push(VecDeque::new());
        }
    }

    /// The VC credit ledger of an egress port, if configured.
    pub fn vc_link(&self, port: usize) -> Option<&VcLink> {
        self.vc_links[port].as_ref()
    }

    /// Total runtime VC credit-conservation violations across all ports.
    pub fn vc_violations(&self) -> u64 {
        self.vc_links.iter().flatten().map(|v| v.violations).sum()
    }

    /// Connects a port to its peer component.
    ///
    /// # Panics
    ///
    /// Panics if the port index is out of range.
    pub fn connect(&mut self, port: usize, peer: ComponentId) {
        self.ports[port].connect(peer);
        self.peer_to_port.insert(peer, port);
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Drops every rate reservation whose flow touches `node` and returns
    /// how many were reclaimed. Part of drain: the arbiter's bandwidth
    /// shares for a departing node go back to the unreserved pool.
    pub fn reclaim_flows(&mut self, node: NodeId) -> usize {
        let before = self.flows.len();
        self.flows.retain(|f, _| f.src != node && f.dst != node);
        before - self.flows.len()
    }

    /// Detaches `port` at quiescence: verifies no flit is queued at or
    /// toward the port, nothing awaits tx credit, and the port's
    /// link-layer credit ledger balances, then forgets the peer binding
    /// (releasing any ramp-up allocation the input held). Routes through
    /// the port must be pruned first — see [`RemovePbrRoute`]. Returns
    /// the detached peer.
    pub fn detach_port(&mut self, port: usize) -> Result<ComponentId, String> {
        if port >= self.ports.len() {
            return Err(format!("port {port} out of range"));
        }
        if !self.fifo[port].is_empty() {
            return Err(format!(
                "port {port}: {} flit(s) queued",
                self.fifo[port].len()
            ));
        }
        let inbound: usize = self.voq[port].iter().map(|q| q.len()).sum();
        let outbound: usize = self.voq.iter().map(|row| row[port].len()).sum();
        if inbound + outbound > 0 {
            return Err(format!(
                "port {port}: {inbound} flit(s) from it, {outbound} toward it"
            ));
        }
        let lanes: usize = self.vcq[port].iter().map(|q| q.len()).sum();
        if lanes > 0 {
            return Err(format!("port {port}: {lanes} flit(s) in ingress lanes"));
        }
        let toward: usize = self.worms.values().filter(|w| w.out == port).count();
        if toward > 0 {
            return Err(format!(
                "port {port}: {toward} worm(s) in transit toward it"
            ));
        }
        if let Some(vl) = &self.vc_links[port] {
            vl.audit()
                .map_err(|e| format!("port {port} vc ledger: {e}"))?;
        }
        if self.ports[port].pending_len() > 0 {
            return Err(format!(
                "port {port}: {} payload(s) awaiting tx credit",
                self.ports[port].pending_len()
            ));
        }
        self.ports[port]
            .link
            .audit()
            .map_err(|e| format!("port {port} ledger: {e}"))?;
        let peer = self.ports[port]
            .peer_opt()
            .ok_or_else(|| format!("port {port} already detached"))?;
        for state in self.ramp.iter_mut().flatten() {
            state.release_input(port);
        }
        self.peer_to_port.remove(&peer);
        Ok(peer)
    }

    /// Access to a port (probes).
    pub fn port(&self, idx: usize) -> &LinkPort {
        &self.ports[idx]
    }

    /// Mutable access to a port (fault injection).
    pub fn port_mut(&mut self, idx: usize) -> &mut LinkPort {
        &mut self.ports[idx]
    }

    /// Attaches a telemetry track; the switch then emits crossbar-forward
    /// and credit/arbitration wait spans for every dispatched flit.
    pub fn set_trace(&mut self, track: Track) {
        self.trace = track;
    }

    /// Installs (or replaces) the tenant admission scheduler. Builder
    /// form — install before traffic flows; the scheduler's window tick
    /// arms when the first flit is admitted. For installation mid-run,
    /// send [`InstallScheduler`] instead.
    pub fn install_scheduler(&mut self, sched: FabricScheduler) {
        self.sched = Some(sched);
    }

    /// The installed tenant scheduler, if any.
    pub fn scheduler(&self) -> Option<&FabricScheduler> {
        self.sched.as_ref()
    }

    /// Mutable access to the installed tenant scheduler.
    pub fn scheduler_mut(&mut self) -> Option<&mut FabricScheduler> {
        self.sched.as_mut()
    }

    /// Total flits waiting in ingress queues.
    pub fn queued(&self) -> usize {
        let fifo: usize = self.fifo.iter().map(|q| q.len()).sum();
        let voq: usize = self
            .voq
            .iter()
            .flat_map(|row| row.iter().map(|q| q.len()))
            .sum();
        let vcq: usize = self
            .vcq
            .iter()
            .flat_map(|row| row.iter().map(|q| q.len()))
            .sum();
        fifo + voq + vcq
    }

    /// Current ramp-up allocations for an output (empty if unused).
    pub fn ramp_allocations(&self, output: usize) -> Vec<u32> {
        self.ramp[output]
            .as_ref()
            .map(|s| s.allocations().to_vec())
            .unwrap_or_default()
    }

    /// Audits every credit ledger this switch maintains: each port's link
    /// layer (see [`fcc_proto::link::LinkLayer::audit`]) and each output's
    /// ramp-up allocator (see [`RampUpState::audit`]).
    ///
    /// Call at quiescence; with flits in flight the in-transit credits are
    /// reported as imbalances. See [`crate::ledger`] for topology-wide
    /// sweeps.
    pub fn audit(&self) -> crate::ledger::AuditReport {
        let mut report = crate::ledger::AuditReport::default();
        for (p, port) in self.ports.iter().enumerate() {
            if let Err(e) = port.link.audit() {
                report.push(format!("port {p}"), e.to_string());
            }
        }
        for (out, state) in self.ramp.iter().enumerate() {
            if let Some(state) = state {
                if let Err(e) = state.audit() {
                    report.push(format!("ramp[output {out}]"), e);
                }
            }
        }
        for (p, vl) in self.vc_links.iter().enumerate() {
            if let Some(vl) = vl {
                if let Err(e) = vl.audit() {
                    report.push(format!("vc[port {p}]"), e);
                }
            }
        }
        if !self.worms.is_empty() {
            report.push(
                "worms",
                format!("{} transfer(s) still holding lanes", self.worms.len()),
            );
        }
        if let Some(sched) = &self.sched {
            if let Err(e) = sched.audit() {
                report.push("sched", e);
            }
        }
        report
    }

    fn flow_of(payload: &FlitPayload) -> FlowId {
        match payload {
            FlitPayload::Transaction(t) => FlowId {
                src: t.src,
                dst: t.dst,
            },
            FlitPayload::Data { src, dst, .. } => FlowId {
                src: *src,
                dst: *dst,
            },
            _ => FlowId {
                src: NodeId(0),
                dst: NodeId(0),
            },
        }
    }

    fn dst_of(payload: &FlitPayload) -> Option<NodeId> {
        match payload {
            FlitPayload::Transaction(t) => Some(t.dst),
            FlitPayload::Data { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Picks the output port for `dst`, adaptively if configured: among
    /// the candidates, choose the one with the least backlog, counting
    /// queued flits first (a credit-starved egress has an idle wire but a
    /// deep queue — the wire watermark alone would keep feeding it) and
    /// breaking ties on wire occupancy.
    fn pick_output(&self, dst: NodeId, now: SimTime) -> Option<usize> {
        let candidates = self.routing.route(dst)?;
        if candidates.is_empty() {
            return None;
        }
        if !self.cfg.adaptive || candidates.len() == 1 {
            return Some(candidates[0]);
        }
        candidates.iter().copied().min_by_key(|&p| {
            let queued: usize = self.voq.iter().map(|row| row[p].len()).sum();
            // Under wormhole queueing the committed load on an egress is
            // the undelivered remainder of every worm routed toward it.
            let committed: u64 = self
                .worms
                .values()
                .filter(|w| w.out == p)
                .map(|w| w.remaining)
                .sum();
            let pending = self.ports[p].pending_len();
            let backlog = self.ports[p].wire_free_at().saturating_sub(now);
            (queued + committed as usize + pending, backlog, p)
        })
    }

    /// Flits this transaction's transfer occupies at a switch: the header
    /// plus its data slots (mirrors the adapters' slot computation).
    fn expected_flits(&self, in_port: usize, t: &fcc_proto::channel::Transaction) -> u64 {
        if t.kind.carries_data() && t.bytes > 0 {
            let mode = self.ports[in_port].phys.flit_mode;
            1 + fcc_proto::flit::flits_for_transfer(mode, t.bytes as u64)
        } else {
            1
        }
    }

    /// Returns the ingress lane credit for a departing (or dropped) flit.
    fn return_in_vc(&mut self, ctx: &mut Ctx<'_>, in_port: usize, in_vc: Option<u8>) {
        if let Some(v) = in_vc {
            self.ports[in_port].return_vc_credit(ctx, v, 1);
        }
    }

    fn admit(
        &mut self,
        ctx: &mut Ctx<'_>,
        in_port: usize,
        payload: FlitPayload,
        in_vc: Option<u8>,
    ) {
        let Some(dst) = Self::dst_of(&payload) else {
            // Pure control should have been consumed by the link layer.
            self.ports[in_port].release(ctx, payload.msg_class());
            self.return_in_vc(ctx, in_port, in_vc);
            return;
        };
        let class = payload.msg_class();
        let flow = Self::flow_of(&payload);
        let ready_at = ctx.now() + self.cfg.fwd_latency;
        // Output resolution is deferred to dispatch for adaptive routing,
        // but unroutable flits are dropped immediately.
        if self.routing.route(dst).is_none() {
            self.unroutable.inc();
            self.ports[in_port].release(ctx, class);
            self.return_in_vc(ctx, in_port, in_vc);
            return;
        }
        let entry = Entry {
            payload,
            class,
            ready_at,
            flow,
            enqueued_at: ctx.now(),
            in_vc,
        };
        match self.cfg.queueing {
            QueueDiscipline::Fifo => self.fifo[in_port].push_back(entry),
            QueueDiscipline::Voq => {
                // route() was checked above, but a racing route removal
                // would leave no candidate: drop rather than panic.
                let Some(out) = self.pick_output(dst, ctx.now()) else {
                    self.unroutable.inc();
                    self.ports[in_port].release(ctx, class);
                    self.return_in_vc(ctx, in_port, in_vc);
                    return;
                };
                self.voq[in_port][out].push_back(entry);
            }
            QueueDiscipline::Wormhole => {
                // A worm's body flits must follow the head's egress; route
                // only at the header.
                let forced = match &entry.payload {
                    FlitPayload::Data { txn_id, .. } => self.worms.get(txn_id).map(|w| w.out),
                    _ => None,
                };
                let Some(out) = forced.or_else(|| self.pick_output(dst, ctx.now())) else {
                    self.unroutable.inc();
                    self.ports[in_port].release(ctx, class);
                    self.return_in_vc(ctx, in_port, in_vc);
                    return;
                };
                match &entry.payload {
                    FlitPayload::Transaction(t) => {
                        let remaining = self.expected_flits(in_port, t);
                        self.worms.insert(
                            t.id,
                            Worm {
                                out,
                                lane: None,
                                remaining,
                            },
                        );
                    }
                    FlitPayload::Data { txn_id, .. } => {
                        // Normal case: the header's worm exists. An orphan
                        // data slot (header raced a route change) becomes
                        // its own single-flit worm.
                        self.worms.entry(*txn_id).or_insert(Worm {
                            out,
                            lane: None,
                            remaining: 1,
                        });
                    }
                    _ => {}
                }
                let lane = usize::from(entry.in_vc.unwrap_or(0));
                let lane = lane.min(self.vcq[in_port].len().saturating_sub(1));
                self.vcq[in_port][lane].push_back(entry);
            }
        }
        self.arm_tick(ctx);
        self.arm_sched_tick(ctx);
        self.request_kick(ctx, ready_at);
    }

    /// Schedules a Kick at `at`, suppressing duplicates: at most one Kick
    /// is pending at a time (redundant kicks at the same ready time would
    /// otherwise multiply into an event storm under contention).
    fn request_kick(&mut self, ctx: &mut Ctx<'_>, at: SimTime) {
        if let Some(t) = self.next_kick_at {
            if t <= at {
                return;
            }
        }
        self.next_kick_at = Some(at);
        ctx.send_self(at - ctx.now(), Kick);
    }

    fn arm_tick(&mut self, ctx: &mut Ctx<'_>) {
        if self.tick_armed {
            return;
        }
        if let AllocPolicy::RampUp { window, .. } = self.cfg.allocation {
            self.tick_armed = true;
            ctx.send_self(window, WindowTick);
        }
    }

    /// Arms the tenant scheduler's window rollover, if one is installed
    /// and not already pending. Re-armed from the tick handler while
    /// flits are queued, so an exhausted tenant's flits always have a
    /// refill coming — the admission gate can defer but never strand.
    fn arm_sched_tick(&mut self, ctx: &mut Ctx<'_>) {
        if self.sched_tick_armed {
            return;
        }
        if let Some(sched) = &self.sched {
            self.sched_tick_armed = true;
            ctx.send_self(sched.window(), SchedTick);
        }
    }

    /// Non-consuming tenant admission probe for a flit of `flow`.
    fn sched_admits(&mut self, flow: FlowId) -> bool {
        self.sched.as_mut().is_none_or(|s| s.admits(flow.src))
    }

    fn ramp_state(&mut self, output: usize) -> Option<&mut RampUpState> {
        if let AllocPolicy::RampUp {
            floor,
            ceiling,
            pool,
            ..
        } = self.cfg.allocation
        {
            let inputs = self.ports.len();
            Some(
                self.ramp[output]
                    .get_or_insert_with(|| RampUpState::new(inputs, floor, ceiling, pool)),
            )
        } else {
            None
        }
    }

    /// Whether the allocation policy lets input `i` send to `out` now.
    /// Returns the retry time if the flit is rate-limited.
    fn policy_gate(
        &mut self,
        i: usize,
        out: usize,
        flow: FlowId,
        now: SimTime,
        reserved_phase: bool,
    ) -> Result<(), Option<SimTime>> {
        match self.cfg.allocation {
            AllocPolicy::Fair => {
                if reserved_phase {
                    Err(None)
                } else {
                    Ok(())
                }
            }
            AllocPolicy::RampUp { .. } => {
                if reserved_phase {
                    return Err(None);
                }
                // ramp_state is Some whenever the policy is RampUp; treat
                // the impossible None as "no allocation gate".
                match self.ramp_state(out) {
                    Some(state) if !state.may_send(i) => Err(None),
                    _ => Ok(()),
                }
            }
            AllocPolicy::Arbitrated => {
                let is_reserved = self.flows.contains_key(&flow);
                if is_reserved != reserved_phase {
                    return Err(None);
                }
                if let Some(bucket) = self.flows.get_mut(&flow) {
                    let bytes = self.cfg.phys.flit_mode.bytes();
                    let at = bucket.earliest(now, bytes);
                    if at > now {
                        return Err(Some(at));
                    }
                }
                Ok(())
            }
        }
    }

    fn record_send(&mut self, i: usize, out: usize, flow: FlowId, now: SimTime) {
        if let Some(state) = self.ramp_state(out) {
            state.on_send(i);
        }
        if let Some(bucket) = self.flows.get_mut(&flow) {
            bucket.force_consume(now, self.cfg.phys.flit_mode.bytes());
        }
        if let Some(sched) = self.sched.as_mut() {
            sched.charge(flow.src);
        }
    }

    /// One scheduling sweep: move every dispatchable flit to its egress.
    fn schedule(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let n = self.ports.len();
        let mut next_kick: Option<SimTime> = None;
        // Reserved traffic first (only meaningful under Arbitrated).
        for reserved_phase in [true, false] {
            if reserved_phase && !matches!(self.cfg.allocation, AllocPolicy::Arbitrated) {
                continue;
            }
            let mut progress = true;
            while progress {
                progress = false;
                for step in 0..n {
                    let i = (self.rr_input + step) % n;
                    if self.try_dispatch_input(ctx, i, now, reserved_phase, &mut next_kick) {
                        progress = true;
                    }
                }
                self.rr_input = (self.rr_input + 1) % n;
            }
        }
        if let Some(at) = next_kick {
            self.request_kick(ctx, at);
        }
    }

    /// Attempts to dispatch one flit from input `i`; returns whether one moved.
    fn try_dispatch_input(
        &mut self,
        ctx: &mut Ctx<'_>,
        i: usize,
        now: SimTime,
        reserved_phase: bool,
        next_kick: &mut Option<SimTime>,
    ) -> bool {
        match self.cfg.queueing {
            QueueDiscipline::Fifo => self.try_dispatch_fifo(ctx, i, now, reserved_phase, next_kick),
            QueueDiscipline::Voq => self.try_dispatch_voq(ctx, i, now, reserved_phase, next_kick),
            QueueDiscipline::Wormhole => {
                self.try_dispatch_wormhole(ctx, i, now, reserved_phase, next_kick)
            }
        }
    }

    fn try_dispatch_fifo(
        &mut self,
        ctx: &mut Ctx<'_>,
        i: usize,
        now: SimTime,
        reserved_phase: bool,
        next_kick: &mut Option<SimTime>,
    ) -> bool {
        let Some(head) = self.fifo[i].front() else {
            return false;
        };
        let (ready_at, flow, class) = (head.ready_at, head.flow, head.class);
        let Some(dst) = Self::dst_of(&head.payload) else {
            // admit() only queues routable payloads; drop defensively.
            self.unroutable.inc();
            if self.fifo[i].pop_front().is_some() {
                self.ports[i].release(ctx, class);
            }
            return true;
        };
        if ready_at > now {
            self.note_kick(next_kick, ready_at);
            return false;
        }
        let Some(out) = self.pick_output(dst, now) else {
            return false;
        };
        match self.policy_gate(i, out, flow, now, reserved_phase) {
            Ok(()) => {}
            Err(Some(at)) => {
                self.note_kick(next_kick, at);
                return false;
            }
            // HOL blocking: the whole input queue waits behind its head.
            Err(None) => return false,
        }
        // Tenant out of partition credits: wait for the SchedTick refill.
        if !self.sched_admits(flow) {
            return false;
        }
        if !self.ports[out].link.can_send(class) {
            return false;
        }
        let Some(entry) = self.fifo[i].pop_front() else {
            return false;
        };
        self.finish_dispatch(ctx, i, out, entry, now, None);
        true
    }

    fn try_dispatch_voq(
        &mut self,
        ctx: &mut Ctx<'_>,
        i: usize,
        now: SimTime,
        reserved_phase: bool,
        next_kick: &mut Option<SimTime>,
    ) -> bool {
        let n = self.ports.len();
        for o in 0..n {
            let out = (i + o) % n;
            let Some((ready_at, flow, class)) = self.voq[i][out]
                .front()
                .map(|h| (h.ready_at, h.flow, h.class))
            else {
                continue;
            };
            if ready_at > now {
                self.note_kick(next_kick, ready_at);
                continue;
            }
            match self.policy_gate(i, out, flow, now, reserved_phase) {
                Ok(()) => {}
                Err(Some(at)) => {
                    self.note_kick(next_kick, at);
                    continue;
                }
                Err(None) => continue,
            }
            // Tenant out of partition credits: wait for the SchedTick refill.
            if !self.sched_admits(flow) {
                continue;
            }
            if !self.ports[out].link.can_send(class) {
                continue;
            }
            let Some(entry) = self.voq[i][out].pop_front() else {
                continue;
            };
            self.finish_dispatch(ctx, i, out, entry, now, None);
            return true;
        }
        false
    }

    /// Attempts to dispatch one flit from input `i`'s ingress lanes
    /// (wormhole discipline). Lanes are independent: a worm stalled on
    /// lane 2's egress credits never blocks lane 0's escape traffic on
    /// the same input — the isolation the deadlock argument rests on.
    fn try_dispatch_wormhole(
        &mut self,
        ctx: &mut Ctx<'_>,
        i: usize,
        now: SimTime,
        reserved_phase: bool,
        next_kick: &mut Option<SimTime>,
    ) -> bool {
        for l in 0..self.vcq[i].len() {
            let Some((ready_at, flow, class, id, dst)) = self.vcq[i][l].front().map(|h| {
                (
                    h.ready_at,
                    h.flow,
                    h.class,
                    h.payload.trace_id(),
                    Self::dst_of(&h.payload),
                )
            }) else {
                continue;
            };
            if ready_at > now {
                self.note_kick(next_kick, ready_at);
                continue;
            }
            // Every wormhole-admitted flit has a worm (created at admit);
            // a missing one means its transfer raced a teardown — drop.
            let Some(out) = self.worms.get(&id).map(|w| w.out) else {
                if let Some(entry) = self.vcq[i][l].pop_front() {
                    self.unroutable.inc();
                    self.ports[i].release(ctx, entry.class);
                    self.return_in_vc(ctx, i, entry.in_vc);
                }
                return true;
            };
            match self.policy_gate(i, out, flow, now, reserved_phase) {
                Ok(()) => {}
                Err(Some(at)) => {
                    self.note_kick(next_kick, at);
                    continue;
                }
                Err(None) => continue,
            }
            // Tenant out of partition credits: wait for the SchedTick refill.
            if !self.sched_admits(flow) {
                continue;
            }
            if !self.ports[out].link.can_send(class) {
                continue;
            }
            // Per-VC egress gate. Escape lane 0 is eligible only when the
            // egress is the destination's primary (deterministic) route.
            let escape_ok = dst
                .and_then(|d| self.routing.route(d))
                .is_some_and(|c| c.first() == Some(&out));
            let held = self.worms.get(&id).and_then(|w| w.lane);
            let out_vc = match self.vc_links[out].as_mut() {
                Some(vl) => match held {
                    Some(v) => {
                        if !vl.can_send(v) {
                            continue;
                        }
                        Some(v)
                    }
                    None => match vl.allocate(id, escape_ok) {
                        Some(v) => Some(v),
                        None => continue,
                    },
                },
                None => None,
            };
            let Some(entry) = self.vcq[i][l].pop_front() else {
                continue;
            };
            if let Some(v) = out_vc {
                if let Some(vl) = self.vc_links[out].as_mut() {
                    vl.consume(v, id);
                }
            }
            let done = match self.worms.get_mut(&id) {
                Some(w) => {
                    w.lane = out_vc;
                    w.remaining = w.remaining.saturating_sub(1);
                    w.remaining == 0
                }
                None => true,
            };
            if done {
                self.worms.remove(&id);
                if let Some(v) = out_vc {
                    if let Some(vl) = self.vc_links[out].as_mut() {
                        vl.release(v);
                    }
                }
            }
            self.finish_dispatch(ctx, i, out, entry, now, out_vc);
            return true;
        }
        false
    }

    fn finish_dispatch(
        &mut self,
        ctx: &mut Ctx<'_>,
        i: usize,
        out: usize,
        entry: Entry,
        now: SimTime,
        out_vc: Option<u8>,
    ) {
        self.record_send(i, out, entry.flow, now);
        self.queue_delay_ps.add((now - entry.enqueued_at).as_ps());
        if self.trace.is_enabled() {
            let ctx_id = entry.payload.trace_ctx();
            // Crossbar transit (fixed fwd latency), then any time the flit
            // sat *ready* but undispatched: egress credit starvation under
            // Fair allocation, allocator gating otherwise.
            self.trace.span_merged(
                "switch",
                "switch.forward",
                entry.enqueued_at,
                entry.ready_at,
                ctx_id,
            );
            let (cat, name) = if self.cfg.queueing == QueueDiscipline::Wormhole {
                // Under wormhole switching, ready-but-undispatched time is
                // dominated by per-lane credit/allocation waits.
                ("credit", "switch.vc_wait")
            } else {
                match self.cfg.allocation {
                    AllocPolicy::Fair => ("credit", "switch.credit_wait"),
                    AllocPolicy::RampUp { .. } | AllocPolicy::Arbitrated => {
                        ("arb", "switch.arb_wait")
                    }
                }
            };
            self.trace
                .span_nonzero_merged(cat, name, entry.ready_at, now, ctx_id);
        }
        self.forwarded.inc();
        self.ports[out].send_now_vc(ctx, entry.payload, out_vc);
        self.ports[i].release(ctx, entry.class);
        self.return_in_vc(ctx, i, entry.in_vc);
    }

    #[allow(clippy::trivially_copy_pass_by_ref)]
    fn note_kick(&self, next: &mut Option<SimTime>, at: SimTime) {
        match next {
            Some(t) if *t <= at => {}
            _ => *next = Some(at),
        }
    }

    fn on_flit(&mut self, ctx: &mut Ctx<'_>, in_port: usize, fm: FlitMsg) {
        match self.ports[in_port].receive(ctx, fm) {
            PortEvent::Delivered(payload, in_vc) => self.admit(ctx, in_port, payload, in_vc),
            PortEvent::CreditFreed => self.schedule(ctx),
            PortEvent::VcCreditReturned { vc, credits } => {
                if let Some(vl) = self.vc_links[in_port].as_mut() {
                    vl.refund(vc, credits);
                }
                self.schedule(ctx);
            }
            PortEvent::Quiet => {}
        }
    }
}

impl Component for FabricSwitch {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let src = msg.src;
        let msg = match msg.downcast::<FlitMsg>() {
            Ok(fm) => {
                // Flits arrive only via ctx.send from a wired peer; a
                // source-less or unknown sender is a topology bug.
                #[allow(clippy::expect_used)]
                let src = src.expect("flits always have a source");
                #[allow(clippy::expect_used)]
                let port = *self
                    .peer_to_port
                    .get(&src)
                    .expect("flit from unconnected component");
                self.on_flit(ctx, port, fm);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Kick>() {
            Ok(Kick) => {
                // Clear before sweeping so the sweep may arm a new kick.
                if self.next_kick_at.is_some_and(|t| t <= ctx.now()) {
                    self.next_kick_at = None;
                }
                self.schedule(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<WindowTick>() {
            Ok(WindowTick) => {
                for state in self.ramp.iter_mut().flatten() {
                    debug_assert!(state.audit().is_ok(), "{:?}", state.audit());
                    state.rollover();
                    debug_assert!(state.audit().is_ok(), "{:?}", state.audit());
                }
                self.tick_armed = false;
                if self.queued() > 0 {
                    self.arm_tick(ctx);
                    self.schedule(ctx);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<SchedTick>() {
            Ok(SchedTick) => {
                if let Some(sched) = self.sched.as_mut() {
                    debug_assert!(sched.audit().is_ok(), "{:?}", sched.audit());
                    sched.rollover();
                    debug_assert!(sched.audit().is_ok(), "{:?}", sched.audit());
                }
                self.sched_tick_armed = false;
                if self.queued() > 0 {
                    self.arm_sched_tick(ctx);
                    self.schedule(ctx);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<InstallScheduler>() {
            Ok(r) => {
                self.install_scheduler(r.sched);
                if self.queued() > 0 {
                    self.arm_sched_tick(ctx);
                    self.schedule(ctx);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<InstallPbrRoute>() {
            Ok(r) => {
                self.routing.add_pbr(r.dst, r.port);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RemovePbrRoute>() {
            Ok(r) => {
                self.routing.remove_pbr(r.dst);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<InstallHbrRoute>() {
            Ok(r) => {
                self.routing.add_hbr(r.domain, r.port);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<SetNodeDomain>() {
            Ok(r) => {
                self.routing.set_domain(r.node, r.domain);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<InstallRate>() {
            Ok(r) => {
                self.flows
                    .insert(r.flow, TokenBucket::new(r.gbps, r.burst_bytes.max(1)));
                self.schedule(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<RemoveRate>() {
            Ok(r) => {
                self.flows.remove(&r.flow);
                self.schedule(ctx);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<DiscoverReq>() {
            Ok(req) => {
                let peers: Vec<ComponentId> = (0..self.ports.len())
                    .map(|p| self.ports[p].peer())
                    .collect();
                let rsp = DiscoverRsp {
                    switch: ctx.self_id(),
                    peers,
                };
                ctx.send(req.reply_to, SimTime::from_ns(100.0), rsp);
            }
            Err(m) => panic!("switch: unexpected message {}", m.type_name()),
        }
    }

    fn outstanding(&self, out: &mut Vec<PendingWork>) {
        for (i, q) in self.fifo.iter().enumerate() {
            if let Some(head) = q.front() {
                // The whole FIFO waits behind its head's egress.
                let waiting_on = Self::dst_of(&head.payload)
                    .and_then(|d| self.pick_output(d, SimTime::ZERO))
                    .and_then(|o| self.ports[o].peer_opt());
                out.push(PendingWork {
                    what: format!("{} flit(s) queued at input {i}", q.len()),
                    waiting_on,
                });
            }
        }
        for (i, row) in self.voq.iter().enumerate() {
            for (o, q) in row.iter().enumerate() {
                if !q.is_empty() {
                    out.push(PendingWork {
                        what: format!("{} flit(s) queued input {i} -> output {o}", q.len()),
                        waiting_on: self.ports[o].peer_opt(),
                    });
                }
            }
        }
        for (i, row) in self.vcq.iter().enumerate() {
            for (l, q) in row.iter().enumerate() {
                if let Some(head) = q.front() {
                    // The head's worm names the egress this lane waits on.
                    let waiting_on = self
                        .worms
                        .get(&head.payload.trace_id())
                        .and_then(|w| self.ports[w.out].peer_opt());
                    out.push(PendingWork {
                        what: format!("{} flit(s) queued input {i} lane {l}", q.len()),
                        waiting_on,
                    });
                }
            }
        }
        for (p, port) in self.ports.iter().enumerate() {
            if port.pending_len() > 0 {
                out.push(PendingWork {
                    what: format!(
                        "{} payload(s) awaiting tx credit on port {p}",
                        port.pending_len()
                    ),
                    waiting_on: port.peer_opt(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_growth_keeps_voq_square() {
        let mut sw = FabricSwitch::new(SwitchConfig::fabrex_like());
        for _ in 0..5 {
            sw.add_port();
        }
        assert_eq!(sw.port_count(), 5);
        assert_eq!(sw.voq.len(), 5);
        for row in &sw.voq {
            assert_eq!(row.len(), 5);
        }
        assert_eq!(sw.queued(), 0);
    }

    #[test]
    fn flow_extraction() {
        use fcc_proto::channel::{MemOpcode, Transaction, TransactionKind};
        let t = FlitPayload::Transaction(Transaction {
            id: 1,
            kind: TransactionKind::Mem(MemOpcode::MemRd),
            addr: 0,
            bytes: 0,
            src: NodeId(3),
            dst: NodeId(9),
        });
        assert_eq!(
            FabricSwitch::flow_of(&t),
            FlowId {
                src: NodeId(3),
                dst: NodeId(9)
            }
        );
        assert_eq!(FabricSwitch::dst_of(&t), Some(NodeId(9)));
        let d = FlitPayload::Data {
            txn_id: 1,
            slot: 0,
            src: NodeId(3),
            dst: NodeId(9),
        };
        assert_eq!(FabricSwitch::dst_of(&d), Some(NodeId(9)));
        assert_eq!(FabricSwitch::dst_of(&FlitPayload::Idle), None);
    }

    #[test]
    fn scheduler_gates_mapped_tenants_and_audits_clean() {
        use fcc_sched::{CreditPartition, TenantShare};
        use fcc_sim::SimTime;

        let mut sw = FabricSwitch::new(SwitchConfig::fabrex_like());
        let mut part = CreditPartition::new(4);
        part.add_tenant(
            7,
            TenantShare {
                group: 0,
                weight: 1,
                floor: 1,
            },
        );
        let mut sched = FabricScheduler::new(part, SimTime::from_ns(1000.0));
        sched.map_node(NodeId(3), 7);
        sw.install_scheduler(sched);

        let mapped = FlowId {
            src: NodeId(3),
            dst: NodeId(9),
        };
        let unmapped = FlowId {
            src: NodeId(5),
            dst: NodeId(9),
        };
        // The mapped tenant drains its whole allocation, then defers;
        // unmapped sources stay ungoverned throughout.
        for _ in 0..4 {
            assert!(sw.sched_admits(mapped));
            sw.record_send(0, 0, mapped, SimTime::ZERO);
        }
        assert!(!sw.sched_admits(mapped));
        assert!(sw.sched_admits(unmapped));
        let sched = sw.scheduler().unwrap();
        assert_eq!(sched.admitted, 4);
        assert_eq!(sched.deferred, 1);
        assert!(sw.audit().is_clean(), "{:?}", sw.audit());
        // A window rollover refills the partition.
        sw.scheduler_mut().unwrap().rollover();
        assert!(sw.sched_admits(mapped));
    }
}
