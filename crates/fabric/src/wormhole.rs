//! Wormhole virtual-channel flow control: per-(port, VC) credit ledgers.
//!
//! Under [`crate::switch::QueueDiscipline::Wormhole`] a multi-flit
//! transfer (one `Transaction` header plus its `Data` slots — a *worm*)
//! holds one virtual channel of its egress link from head to tail: the
//! head flit allocates a lane, body flits ride the held lane, and the
//! tail releases it. Each lane carries an independent flit-credit ledger
//! sized to the peer's per-lane ingress buffer, so a stalled worm blocks
//! only its own lane while other lanes of the same physical link keep
//! moving — the classic VC answer to wormhole head-of-line coupling.
//!
//! Deadlock freedom follows Duato's escape-channel argument: lane 0 (the
//! *escape* VC) only ever carries flits whose egress is the destination's
//! primary route — the deterministic dimension-ordered / up\*-down\* path
//! installed by the topology generators ([`crate::pods`]) — whose channel
//! dependency graph is acyclic by construction (checked exhaustively by
//! `fcc-verify`'s `check-routing`). Adaptive lanes (1..) may follow any
//! route candidate; when they saturate, every switch can still drain
//! traffic through the acyclic escape network, so no cycle of waits is
//! sustainable. See DESIGN.md for the full invariant list.

use serde::{Deserialize, Serialize};

/// Per-link virtual-channel configuration. Both ends of a link must use
/// the same values (the upstream ledger mirrors the downstream buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcConfig {
    /// Number of virtual channels (lane 0 is the escape VC). At least 2:
    /// one escape lane plus one adaptive lane.
    pub vcs: u8,
    /// Ingress buffer depth per lane, in flits — the initial credit grant.
    pub buf_flits: u32,
}

impl Default for VcConfig {
    fn default() -> Self {
        VcConfig {
            vcs: 4,
            buf_flits: 8,
        }
    }
}

/// One virtual channel of an egress link: credit ledger plus hold state.
#[derive(Debug, Clone)]
pub struct VcLane {
    /// Flit credits available (free slots in the peer's lane buffer).
    pub credits: u32,
    /// Initial grant (the peer's lane buffer depth).
    pub cap: u32,
    /// Transaction id of the worm holding this lane, if any.
    pub holder: Option<u64>,
    /// Flits dispatched on this lane (each consumed one credit).
    pub sent: u64,
    /// Credits returned by the peer.
    pub returned: u64,
}

impl VcLane {
    fn new(cap: u32) -> Self {
        VcLane {
            credits: cap,
            cap,
            holder: None,
            sent: 0,
            returned: 0,
        }
    }

    /// Conservation check: credits must always equal `cap - in_flight`
    /// where `in_flight = sent - returned`. At quiescence (`sent ==
    /// returned`) the lane must be full and free.
    fn audit(&self, lane: usize) -> Result<(), String> {
        let in_flight = self.sent.checked_sub(self.returned).ok_or_else(|| {
            format!(
                "lane {lane}: returned {} > sent {}",
                self.returned, self.sent
            )
        })?;
        let expect = (self.cap as u64)
            .checked_sub(in_flight)
            .ok_or_else(|| format!("lane {lane}: {in_flight} in flight > cap {}", self.cap))?;
        if self.credits as u64 != expect {
            return Err(format!(
                "lane {lane}: {} credits, expected {expect} (cap {} - {in_flight} in flight)",
                self.credits, self.cap
            ));
        }
        if in_flight != 0 {
            return Err(format!("lane {lane}: {in_flight} flit(s) still in flight"));
        }
        if let Some(id) = self.holder {
            return Err(format!("lane {lane}: idle but held by worm {id}"));
        }
        Ok(())
    }
}

/// The egress side of one VC-flow-controlled link: all lanes plus the
/// violation counter the audit and the E14 smoke gate key on.
#[derive(Debug, Clone)]
pub struct VcLink {
    /// Lane state, index = VC number (0 = escape).
    pub lanes: Vec<VcLane>,
    /// Credit-conservation violations observed at runtime (a refund
    /// overflowing the cap, or a consume from an empty ledger). Stays 0
    /// on every correct run; E14 exports it as `credit_violations`.
    pub violations: u64,
}

impl VcLink {
    /// Creates the ledger for one egress link.
    pub fn new(cfg: VcConfig) -> Self {
        VcLink {
            lanes: (0..cfg.vcs.max(2))
                .map(|_| VcLane::new(cfg.buf_flits))
                .collect(),
            violations: 0,
        }
    }

    /// Picks the lane for a worm's head flit: the lowest-numbered lane
    /// that is free (or already held by `worm`) with a credit available.
    /// Lane 0 is only eligible when `escape_ok` (the egress is the
    /// destination's primary deterministic route).
    pub fn allocate(&mut self, worm: u64, escape_ok: bool) -> Option<u8> {
        let first = usize::from(!escape_ok);
        (first..self.lanes.len())
            .find(|&v| {
                let lane = &self.lanes[v];
                lane.credits > 0 && (lane.holder.is_none() || lane.holder == Some(worm))
            })
            .map(|v| v as u8)
    }

    /// Whether lane `vc` has a credit for the next flit of its held worm.
    pub fn can_send(&self, vc: u8) -> bool {
        self.lanes
            .get(vc as usize)
            .is_some_and(|lane| lane.credits > 0)
    }

    /// Consumes one credit on lane `vc` for a flit of `worm`, marking the
    /// lane held. Caller must have checked [`VcLink::can_send`]; a
    /// consume from an empty ledger is recorded as a violation.
    pub fn consume(&mut self, vc: u8, worm: u64) {
        let Some(lane) = self.lanes.get_mut(vc as usize) else {
            self.violations += 1;
            return;
        };
        if lane.credits == 0 {
            self.violations += 1;
            return;
        }
        lane.credits -= 1;
        lane.sent += 1;
        lane.holder = Some(worm);
    }

    /// Releases the lane hold once the worm's tail flit has dispatched.
    pub fn release(&mut self, vc: u8) {
        if let Some(lane) = self.lanes.get_mut(vc as usize) {
            lane.holder = None;
        }
    }

    /// Refunds credits returned by the peer. A refund that would exceed
    /// the lane's cap mints credit out of thin air — recorded as a
    /// violation and clamped so the ledger stays bounded.
    pub fn refund(&mut self, vc: u8, credits: u32) {
        let Some(lane) = self.lanes.get_mut(vc as usize) else {
            self.violations += 1;
            return;
        };
        lane.returned += credits as u64;
        lane.credits += credits;
        if lane.credits > lane.cap {
            self.violations += 1;
            lane.credits = lane.cap;
        }
    }

    /// Flits currently in flight (sent, credit not yet returned).
    pub fn in_flight(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.sent.saturating_sub(l.returned))
            .sum()
    }

    /// Audits every lane ledger; call at quiescence (in-flight flits
    /// report as imbalances).
    pub fn audit(&self) -> Result<(), String> {
        if self.violations > 0 {
            return Err(format!("{} credit violations", self.violations));
        }
        for (v, lane) in self.lanes.iter().enumerate() {
            lane.audit(v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_zero_is_reserved_for_escape_traffic() {
        let mut link = VcLink::new(VcConfig::default());
        assert_eq!(link.allocate(7, true), Some(0));
        assert_eq!(link.allocate(7, false), Some(1));
    }

    #[test]
    fn held_lanes_are_skipped_for_other_worms() {
        let mut link = VcLink::new(VcConfig {
            vcs: 3,
            buf_flits: 4,
        });
        link.consume(1, 7); // worm 7 holds lane 1
        assert_eq!(link.allocate(7, false), Some(1), "holder may reuse");
        assert_eq!(link.allocate(9, false), Some(2), "stranger skips to lane 2");
        link.consume(2, 9);
        assert_eq!(link.allocate(11, false), None, "adaptive lanes exhausted");
        assert_eq!(link.allocate(11, true), Some(0), "escape still open");
    }

    #[test]
    fn credits_roundtrip_and_audit_clean() {
        let mut link = VcLink::new(VcConfig {
            vcs: 2,
            buf_flits: 2,
        });
        link.consume(1, 5);
        link.consume(1, 5);
        assert!(!link.can_send(1));
        assert!(link.audit().is_err(), "in-flight flits are an imbalance");
        link.refund(1, 2);
        link.release(1);
        assert!(link.audit().is_ok(), "{:?}", link.audit());
        assert_eq!(link.in_flight(), 0);
    }

    #[test]
    fn overflow_refund_is_a_violation() {
        let mut link = VcLink::new(VcConfig {
            vcs: 2,
            buf_flits: 2,
        });
        link.refund(0, 1);
        assert_eq!(link.violations, 1);
        assert!(link.audit().is_err());
    }

    #[test]
    fn empty_consume_is_a_violation() {
        let mut link = VcLink::new(VcConfig {
            vcs: 2,
            buf_flits: 1,
        });
        link.consume(0, 3);
        link.consume(0, 3);
        assert_eq!(link.violations, 1);
    }
}
