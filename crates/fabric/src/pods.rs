//! Pod-scale topology generators: spine-leaf, 2D mesh, and torus fabrics
//! that shard along their natural partition boundary.
//!
//! A *pod* is a rack-scale fabric of tens of switches and hundreds of
//! hosts — the scale at which the paper's fabric-centric pooling argument
//! bites. This module splits pod construction into two layers:
//!
//! 1. [`PodPlan`] — a pure, engine-free description of the switch graph:
//!    switch ids, domain assignment, links, escape routes. Because it
//!    needs no simulator state, `fcc-verify`'s `check-routing` binary can
//!    exhaustively model-check its escape-channel dependency graph for
//!    acyclicity at small K, and property tests can sweep hundreds of
//!    shapes per second.
//! 2. [`sharded_pod`] — realizes a plan on a [`ShardedEngine`]: one
//!    engine per domain, intra-domain switch cables wired directly,
//!    cross-domain cables as [`ShardGateway`] pairs (whose latency is the
//!    conservative lookahead), and every switch-to-switch link put under
//!    wormhole VC flow control ([`FabricSwitch::set_vc_link`]).
//!
//! Escape routes are deterministic by construction — up\*/down\* through
//! the destination's home spine for spine-leaf, dimension-ordered (X then
//! Y, no wraparound) for mesh and torus — so the escape network's channel
//! dependency graph is acyclic and lane 0 can always drain (see
//! [`crate::wormhole`] and DESIGN.md). Adaptive candidates (any other
//! spine; any minimal grid hop) ride lanes 1 and up.
//!
//! Domain assignment: a spine and its leaves form one domain; a mesh or
//! torus column forms one domain. Every cross-domain link becomes a
//! gateway cable, so a K-domain pod runs byte-identically on 1..=K
//! worker threads (scenario E14).

use std::collections::BTreeMap;

use fcc_proto::addr::{AddrMap, AddrRange, NodeId};
use fcc_proto::link::CreditConfig;
use fcc_sim::shard::{ShardGateway, ShardedEngine};
use fcc_sim::{ComponentId, SimTime};

use crate::adapter::{Fea, Fha};
use crate::endpoint::Endpoint;
use crate::sharded::{DomainSpec, ShardedFabric};
use crate::switch::FabricSwitch;
use crate::topology::{DeviceHandle, HostHandle, Topology, TopologySpec, FAM_BASE};
use crate::wormhole::VcConfig;

/// The switch-graph family of a pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodKind {
    /// Two-tier folded Clos: every leaf links to every spine. Endpoints
    /// attach to leaves; a spine plus its `leaves_per_spine` home leaves
    /// form one shard domain.
    SpineLeaf {
        /// Spine switches (= domain count).
        spines: usize,
        /// Leaves homed under each spine.
        leaves_per_spine: usize,
    },
    /// `cols x rows` 2D mesh; every switch is an edge switch. Each
    /// column is one domain, so east-west links are gateway cables.
    Mesh {
        /// Columns (= domain count).
        cols: usize,
        /// Rows per column.
        rows: usize,
    },
    /// 2D torus: the mesh plus wraparound links (only where they would
    /// not duplicate a mesh link, i.e. for side length > 2). Escape
    /// routing ignores the wraparound links; adaptive lanes may use them.
    Torus {
        /// Columns (= domain count).
        cols: usize,
        /// Rows per column.
        rows: usize,
    },
}

/// One switch in a [`PodPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanSwitch {
    /// Dense switch id (index into [`PodPlan::switches`]).
    pub id: usize,
    /// Shard domain this switch lives in.
    pub domain: usize,
    /// Grid coordinate: `(col, row)` for mesh/torus; `(i, tier)` for
    /// spine-leaf (tier 0 = spine, tier 1 = leaf).
    pub coord: (usize, usize),
    /// Whether hosts/devices attach here (leaves; all grid switches).
    pub is_edge: bool,
}

/// One switch-to-switch cable in a [`PodPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanLink {
    /// Lower endpoint switch id.
    pub a: usize,
    /// Higher endpoint switch id.
    pub b: usize,
    /// Whether the endpoints live in different domains (the link becomes
    /// a [`ShardGateway`] cable).
    pub cross_domain: bool,
}

/// Engine-free description of a pod's switch graph and routes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PodPlan {
    /// The generating family (kept for route computation).
    pub kind: PodKind,
    /// Switches in id order.
    pub switches: Vec<PlanSwitch>,
    /// Links, each with `a < b`, in generation order (deterministic).
    pub links: Vec<PlanLink>,
    /// Hosts attached to every edge switch.
    pub hosts_per_edge: usize,
    /// Devices attached to every edge switch.
    pub devices_per_edge: usize,
}

impl PodPlan {
    /// Generates the plan for `kind` with uniform endpoint counts per
    /// edge switch.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of `kind` is zero.
    pub fn new(kind: PodKind, hosts_per_edge: usize, devices_per_edge: usize) -> Self {
        let mut switches = Vec::new();
        let mut links = Vec::new();
        match kind {
            PodKind::SpineLeaf {
                spines,
                leaves_per_spine,
            } => {
                assert!(spines > 0 && leaves_per_spine > 0, "empty spine-leaf pod");
                for s in 0..spines {
                    switches.push(PlanSwitch {
                        id: s,
                        domain: s,
                        coord: (s, 0),
                        is_edge: false,
                    });
                }
                for j in 0..spines * leaves_per_spine {
                    switches.push(PlanSwitch {
                        id: spines + j,
                        domain: j / leaves_per_spine,
                        coord: (j, 1),
                        is_edge: true,
                    });
                }
                for s in 0..spines {
                    for j in 0..spines * leaves_per_spine {
                        links.push(PlanLink {
                            a: s,
                            b: spines + j,
                            cross_domain: s != j / leaves_per_spine,
                        });
                    }
                }
            }
            PodKind::Mesh { cols, rows } | PodKind::Torus { cols, rows } => {
                assert!(cols > 0 && rows > 0, "empty grid pod");
                for c in 0..cols {
                    for r in 0..rows {
                        switches.push(PlanSwitch {
                            id: c * rows + r,
                            domain: c,
                            coord: (c, r),
                            is_edge: true,
                        });
                    }
                }
                for c in 0..cols {
                    for r in 0..rows {
                        let id = c * rows + r;
                        if r + 1 < rows {
                            links.push(PlanLink {
                                a: id,
                                b: id + 1,
                                cross_domain: false,
                            });
                        }
                        if c + 1 < cols {
                            links.push(PlanLink {
                                a: id,
                                b: id + rows,
                                cross_domain: true,
                            });
                        }
                    }
                }
                if matches!(kind, PodKind::Torus { .. }) {
                    if rows > 2 {
                        for c in 0..cols {
                            links.push(PlanLink {
                                a: c * rows,
                                b: c * rows + rows - 1,
                                cross_domain: false,
                            });
                        }
                    }
                    if cols > 2 {
                        for r in 0..rows {
                            links.push(PlanLink {
                                a: r,
                                b: (cols - 1) * rows + r,
                                cross_domain: true,
                            });
                        }
                    }
                }
            }
        }
        PodPlan {
            kind,
            switches,
            links,
            hosts_per_edge,
            devices_per_edge,
        }
    }

    /// Number of shard domains (spines, or grid columns).
    pub fn domains(&self) -> usize {
        self.switches
            .iter()
            .map(|s| s.domain + 1)
            .max()
            .unwrap_or(0)
    }

    /// Edge switches of domain `d`, in id order.
    pub fn domain_edges(&self, d: usize) -> Vec<usize> {
        self.switches
            .iter()
            .filter(|s| s.domain == d && s.is_edge)
            .map(|s| s.id)
            .collect()
    }

    /// All edge switches, in id order.
    pub fn edge_switches(&self) -> Vec<usize> {
        self.switches
            .iter()
            .filter(|s| s.is_edge)
            .map(|s| s.id)
            .collect()
    }

    /// Neighbor switch ids of `s`, sorted ascending.
    pub fn neighbors(&self, s: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .links
            .iter()
            .filter_map(|l| {
                if l.a == s {
                    Some(l.b)
                } else if l.b == s {
                    Some(l.a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Port count of switch `s` once realized: one per neighbor plus one
    /// per attached endpoint.
    pub fn radix(&self, s: usize) -> usize {
        let endpoints = if self.switches[s].is_edge {
            self.hosts_per_edge + self.devices_per_edge
        } else {
            0
        };
        self.neighbors(s).len() + endpoints
    }

    /// Whether the switch graph is a single connected component.
    pub fn is_connected(&self) -> bool {
        let n = self.switches.len();
        if n == 0 {
            return false;
        }
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut stack = vec![0usize];
        while let Some(s) = stack.pop() {
            for nb in self.neighbors(s) {
                if !seen[nb] {
                    seen[nb] = true;
                    stack.push(nb);
                }
            }
        }
        seen.into_iter().all(|x| x)
    }

    /// The next hop of the deterministic *escape* route from `from`
    /// toward `to`: up\*/down\* via the destination's home spine for
    /// spine-leaf, dimension-ordered X-then-Y (never using wraparound
    /// links) for mesh and torus. `None` once `from == to`.
    ///
    /// The escape network induced by these routes has an acyclic channel
    /// dependency graph — spine-leaf paths are up-links then down-links
    /// (a down-link never feeds an up-link), and X-then-Y dimension
    /// ordering never feeds a Y-channel into an X-channel. `fcc-verify`'s
    /// `check-routing` proves this exhaustively at small K.
    pub fn escape_next_hop(&self, from: usize, to: usize) -> Option<usize> {
        if from == to || to >= self.switches.len() {
            return None;
        }
        match self.kind {
            PodKind::SpineLeaf {
                spines,
                leaves_per_spine,
            } => {
                if from < spines {
                    // Spine: leaves are one down-link away. A spine
                    // destination (no endpoints there, so only reachable
                    // as a waypoint) is reached through its first leaf.
                    Some(if to < spines {
                        spines + to * leaves_per_spine
                    } else {
                        to
                    })
                } else if to < spines {
                    Some(to)
                } else {
                    Some((to - spines) / leaves_per_spine)
                }
            }
            PodKind::Mesh { rows, .. } | PodKind::Torus { rows, .. } => {
                let (fc, fr) = self.switches[from].coord;
                let (tc, tr) = self.switches[to].coord;
                let (nc, nr) = if fc != tc {
                    (if tc > fc { fc + 1 } else { fc - 1 }, fr)
                } else {
                    (fc, if tr > fr { fr + 1 } else { fr - 1 })
                };
                Some(nc * rows + nr)
            }
        }
    }

    /// The full escape route from `from` to `to`, inclusive of both ends.
    /// Bounded by the switch count (the escape routes are loop-free).
    pub fn escape_path(&self, from: usize, to: usize) -> Vec<usize> {
        let mut path = vec![from];
        let mut cur = from;
        while cur != to && path.len() <= self.switches.len() {
            match self.escape_next_hop(cur, to) {
                Some(n) => {
                    path.push(n);
                    cur = n;
                }
                None => break,
            }
        }
        path
    }

    /// Next-hop candidates from `from` toward `to`, escape-primary first:
    /// the deterministic escape hop, then any adaptive alternatives (the
    /// other spines for spine-leaf; other distance-reducing grid hops,
    /// including wraparound, for mesh/torus). The realizer installs PBR
    /// entries in exactly this order, so `route(dst)[0]` *is* the escape
    /// route — the invariant the switch's lane-0 eligibility check and
    /// the `check-routing` model share.
    pub fn route_candidates(&self, from: usize, to: usize) -> Vec<usize> {
        if from == to {
            return Vec::new();
        }
        let Some(primary) = self.escape_next_hop(from, to) else {
            return Vec::new();
        };
        let mut out = vec![primary];
        match self.kind {
            PodKind::SpineLeaf { spines, .. } => {
                // Leaf-to-leaf worms may climb to any spine; every spine
                // reaches every leaf in one down hop.
                if from >= spines && to >= spines {
                    out.extend((0..spines).filter(|&sp| sp != primary));
                }
            }
            PodKind::Mesh { rows, .. } => {
                let (fc, fr) = self.switches[from].coord;
                let (tc, tr) = self.switches[to].coord;
                if fc != tc && fr != tr {
                    let nr = if tr > fr { fr + 1 } else { fr - 1 };
                    out.push(fc * rows + nr);
                }
            }
            PodKind::Torus { cols, rows } => {
                let (fc, fr) = self.switches[from].coord;
                let (tc, tr) = self.switches[to].coord;
                let wrap = |a: usize, b: usize, n: usize| {
                    let d = a.abs_diff(b);
                    d.min(n - d)
                };
                let cur = wrap(fc, tc, cols) + wrap(fr, tr, rows);
                for n in self.neighbors(from) {
                    if n == primary {
                        continue;
                    }
                    let (nc, nr) = self.switches[n].coord;
                    if wrap(nc, tc, cols) + wrap(nr, tr, rows) < cur {
                        out.push(n);
                    }
                }
            }
        }
        out
    }

    /// Materializes per-domain endpoint groupings as [`DomainSpec`]s,
    /// calling `device(edge_switch_id, slot)` for each device. Feed the
    /// result to [`sharded_pod`]; counts round-trip exactly (each domain
    /// gets `edges * hosts_per_edge` hosts and `edges * devices_per_edge`
    /// devices, in edge-switch id order).
    pub fn domain_specs<F>(&self, mut device: F) -> Vec<DomainSpec>
    where
        F: FnMut(usize, usize) -> Box<dyn Endpoint>,
    {
        (0..self.domains())
            .map(|d| {
                let edges = self.domain_edges(d);
                let mut devices = Vec::new();
                for &sw in &edges {
                    for slot in 0..self.devices_per_edge {
                        devices.push(device(sw, slot));
                    }
                }
                DomainSpec {
                    n_hosts: edges.len() * self.hosts_per_edge,
                    devices,
                }
            })
            .collect()
    }
}

/// Everything needed to realize a pod on a [`ShardedEngine`].
#[derive(Clone, Copy)]
pub struct PodSpec {
    /// Switch-graph family and dimensions.
    pub kind: PodKind,
    /// Per-switch and per-adapter link configuration. Set
    /// `topo.switch.queueing` to [`QueueDiscipline::Wormhole`] to run the
    /// switch-to-switch links under VC flow control.
    ///
    /// [`QueueDiscipline::Wormhole`]: crate::switch::QueueDiscipline::Wormhole
    pub topo: TopologySpec,
    /// Virtual-channel shape of every switch-to-switch link.
    pub vc: VcConfig,
    /// Hosts attached to each edge switch.
    pub hosts_per_edge: usize,
    /// Devices attached to each edge switch.
    pub devices_per_edge: usize,
    /// One-way latency of cross-domain cables (the conservative
    /// lookahead). Must be positive when the pod has more than one
    /// domain.
    pub cross_latency: SimTime,
}

impl PodSpec {
    /// The engine-free plan for this spec.
    pub fn plan(&self) -> PodPlan {
        PodPlan::new(self.kind, self.hosts_per_edge, self.devices_per_edge)
    }
}

/// Realizes `spec` over the shards of `sharded`: one engine per domain,
/// devices staged first (global address map), switches wired per the
/// plan's links — direct cables intra-domain, [`ShardGateway`] pairs
/// cross-domain, every switch-to-switch port under
/// [`FabricSwitch::set_vc_link`] — and PBR routes installed escape-first
/// per [`PodPlan::route_candidates`]. Host and device links keep the
/// plain link-layer credit scheme (adapters do not speak VCs).
///
/// Returns the plan alongside the fabric; `plan.domains()` must equal
/// the engine's shard count and `domains` must match the plan's
/// per-domain endpoint counts.
///
/// # Panics
///
/// Panics on any count mismatch between `spec`, `domains`, and the
/// engine's shard count, or on a zero `cross_latency` in a multi-domain
/// pod.
pub fn sharded_pod(
    sharded: &mut ShardedEngine,
    spec: &PodSpec,
    domains: Vec<DomainSpec>,
) -> (PodPlan, ShardedFabric) {
    let plan = spec.plan();
    let k = plan.domains();
    assert_eq!(k, sharded.shard_count(), "one domain per shard");
    assert_eq!(k, domains.len(), "one DomainSpec per domain");
    if k > 1 {
        assert!(
            spec.cross_latency > SimTime::ZERO,
            "cross-domain cables need positive latency (the lookahead)"
        );
    }
    // Lane ledgers must be the binding constraint on VC links: grant the
    // link layer at least `vcs * buf_flits` credits per class so the
    // shared class pool can never stall a lane that holds VC credits
    // (that stall would pierce the lane isolation the deadlock-freedom
    // argument rests on; see `FabricSwitch::set_vc_link`).
    let lane_total = 4 * u32::from(spec.vc.vcs.max(2)) * spec.vc.buf_flits;
    let vc_credit = CreditConfig {
        buffer_flits: spec.topo.credit.buffer_flits.max(lane_total),
        ..spec.topo.credit
    };
    let vc_phys = spec.topo.switch.phys;

    // Stage devices first: the address map must be complete before any
    // FHA is built. Devices land on their domain's edge switches in id
    // order, `devices_per_edge` per switch.
    let mut map = AddrMap::new();
    let mut next_node: u16 = 1;
    let mut next_addr: u64 = FAM_BASE;
    let mut alloc_node = || {
        let id = NodeId(next_node);
        next_node += 1;
        id
    };
    let mut staged: BTreeMap<usize, Vec<(ComponentId, NodeId, AddrRange)>> = BTreeMap::new();
    for (d, domain) in domains.into_iter().enumerate() {
        let edges = plan.domain_edges(d);
        assert_eq!(
            domain.n_hosts,
            edges.len() * spec.hosts_per_edge,
            "domain {d}: hosts_per_edge mismatch"
        );
        assert_eq!(
            domain.devices.len(),
            edges.len() * spec.devices_per_edge,
            "domain {d}: devices_per_edge mismatch"
        );
        let mut devs = domain.devices.into_iter();
        for &sw in &edges {
            let mut out = Vec::new();
            for _ in 0..spec.devices_per_edge {
                // Counted above: the iterator holds exactly enough.
                #[allow(clippy::expect_used)]
                let dev = devs.next().expect("device count checked");
                let node = alloc_node();
                let capacity = dev.capacity();
                let range = if capacity > 0 {
                    let r = AddrRange::new(next_addr, capacity);
                    map.add_direct(r, node);
                    next_addr += capacity;
                    r
                } else {
                    AddrRange::new(u64::MAX - 1, 1)
                };
                let fea = sharded.engine_mut(d).add_component(
                    format!("fea{}", node.0),
                    Fea::new(node, spec.topo.switch.phys, spec.topo.credit, dev),
                );
                out.push((fea, node, range));
            }
            staged.insert(sw, out);
        }
    }

    // Switches, one component per plan switch, in its domain's engine.
    let switch_ids: Vec<ComponentId> = plan
        .switches
        .iter()
        .map(|s| {
            sharded
                .engine_mut(s.domain)
                .add_component(format!("fs{}", s.id), FabricSwitch::new(spec.topo.switch))
        })
        .collect();

    // Cables. Intra-domain links are direct component wires; cross-domain
    // links become gateway pairs (the cable *is* the shard boundary).
    // Every switch-side port joins the VC flow-control scheme.
    let mut port_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut gateways: Vec<(ComponentId, ComponentId)> = Vec::new();
    for link in &plan.links {
        let (a, b) = (link.a, link.b);
        let (da, db) = (plan.switches[a].domain, plan.switches[b].domain);
        let vc_port = |sharded: &mut ShardedEngine, d: usize, sw: usize, peer: ComponentId| {
            let s = sharded
                .engine_mut(d)
                .component_mut::<FabricSwitch>(switch_ids[sw]);
            let p = s.add_port_with(vc_phys, vc_credit);
            s.connect(p, peer);
            s.set_vc_link(p, spec.vc);
            p
        };
        if link.cross_domain {
            let (gl, gr) = sharded.link(da, db, spec.cross_latency, &format!("cable{a}-{b}"));
            let pa = vc_port(sharded, da, a, gl);
            sharded
                .engine_mut(da)
                .component_mut::<ShardGateway>(gl)
                .set_local_peer(switch_ids[a]);
            let pb = vc_port(sharded, db, b, gr);
            sharded
                .engine_mut(db)
                .component_mut::<ShardGateway>(gr)
                .set_local_peer(switch_ids[b]);
            port_of.insert((a, b), pa);
            port_of.insert((b, a), pb);
            gateways.push((gl, gr));
        } else {
            debug_assert_eq!(da, db, "intra-domain link spans domains");
            let pa = vc_port(sharded, da, a, switch_ids[b]);
            let pb = vc_port(sharded, da, b, switch_ids[a]);
            port_of.insert((a, b), pa);
            port_of.insert((b, a), pb);
        }
    }

    // Endpoints (map is complete now): hosts then devices per edge
    // switch, domains in order, switches in id order. Local PBR entries
    // install at attach.
    let mut node_home: Vec<(NodeId, usize)> = Vec::new();
    let mut topo_hosts: Vec<Vec<HostHandle>> = (0..k).map(|_| Vec::new()).collect();
    let mut topo_devices: Vec<Vec<DeviceHandle>> = (0..k).map(|_| Vec::new()).collect();
    for d in 0..k {
        for sw in plan.domain_edges(d) {
            for _ in 0..spec.hosts_per_edge {
                let node = alloc_node();
                let engine = sharded.engine_mut(d);
                let fha = engine.add_component(
                    format!("fha{}", node.0),
                    Fha::new(
                        node,
                        spec.topo.switch.phys,
                        spec.topo.credit,
                        map.clone(),
                        spec.topo.fha_outstanding,
                    ),
                );
                {
                    let s = engine.component_mut::<FabricSwitch>(switch_ids[sw]);
                    let p = s.add_port();
                    s.connect(p, fha);
                    s.routing.add_pbr(node, p);
                }
                engine.component_mut::<Fha>(fha).connect(switch_ids[sw]);
                topo_hosts[d].push(HostHandle { fha, node });
                node_home.push((node, sw));
            }
            for &(fea, node, range) in staged.get(&sw).map(Vec::as_slice).unwrap_or_default() {
                let engine = sharded.engine_mut(d);
                {
                    let s = engine.component_mut::<FabricSwitch>(switch_ids[sw]);
                    let p = s.add_port();
                    s.connect(p, fea);
                    s.routing.add_pbr(node, p);
                }
                engine.component_mut::<Fea>(fea).connect(switch_ids[sw]);
                topo_devices[d].push(DeviceHandle { fea, node, range });
                node_home.push((node, sw));
            }
        }
    }

    // Transit routes: every switch learns every remote node, candidates
    // in escape-first order so `route(dst)[0]` is the escape hop.
    for s in &plan.switches {
        let d = s.domain;
        for &(node, home) in &node_home {
            if home == s.id {
                continue;
            }
            for hop in plan.route_candidates(s.id, home) {
                // Candidates are always direct neighbors, wired above.
                #[allow(clippy::expect_used)]
                let port = *port_of.get(&(s.id, hop)).expect("candidate is a neighbor");
                sharded
                    .engine_mut(d)
                    .component_mut::<FabricSwitch>(switch_ids[s.id])
                    .routing
                    .add_pbr(node, port);
            }
        }
    }

    let domains = (0..k)
        .map(|d| Topology {
            hosts: std::mem::take(&mut topo_hosts[d]),
            devices: std::mem::take(&mut topo_devices[d]),
            switches: plan
                .switches
                .iter()
                .filter(|s| s.domain == d)
                .map(|s| switch_ids[s.id])
                .collect(),
            addr_map: map.clone(),
            manager: None,
        })
        .collect();
    (plan, ShardedFabric { domains, gateways })
}

#[cfg(test)]
mod tests {
    use fcc_sim::{Component, Ctx, Msg};

    use super::*;
    use crate::adapter::{HostCompletion, HostOp, HostRequest};
    use crate::endpoint::FixedLatencyMemory;
    use crate::switch::QueueDiscipline;

    fn mem() -> Box<dyn Endpoint> {
        Box::new(FixedLatencyMemory::new(
            SimTime::from_ns(100.0),
            SimTime::from_ns(100.0),
            1 << 20,
        ))
    }

    #[test]
    fn spine_leaf_shape() {
        let plan = PodPlan::new(
            PodKind::SpineLeaf {
                spines: 2,
                leaves_per_spine: 3,
            },
            4,
            1,
        );
        assert_eq!(plan.switches.len(), 8);
        assert_eq!(plan.links.len(), 12, "complete bipartite");
        assert_eq!(plan.domains(), 2);
        assert_eq!(plan.domain_edges(0), vec![2, 3, 4]);
        assert!(plan.is_connected());
        // A spine sees every leaf; leaves see both spines + endpoints.
        assert_eq!(plan.radix(0), 6);
        assert_eq!(plan.radix(2), 2 + 4 + 1);
        // Escape: leaf 2 (domain 0) to leaf 7 (domain 1) climbs to the
        // destination's home spine 1, then down.
        assert_eq!(plan.escape_path(2, 7), vec![2, 1, 7]);
        // Adaptive candidates: primary spine first, then the other.
        assert_eq!(plan.route_candidates(2, 7), vec![1, 0]);
        assert_eq!(plan.route_candidates(1, 7), vec![7]);
    }

    #[test]
    fn mesh_routes_are_dimension_ordered() {
        let plan = PodPlan::new(PodKind::Mesh { cols: 3, rows: 2 }, 1, 1);
        assert_eq!(plan.switches.len(), 6);
        assert!(plan.is_connected());
        // (0,0) -> (2,1): X first (0,0)->(1,0)->(2,0), then Y ->(2,1).
        assert_eq!(plan.escape_path(0, 5), vec![0, 2, 4, 5]);
        // Both dimensions off: the Y-first hop is the one adaptive twin.
        assert_eq!(plan.route_candidates(0, 5), vec![2, 1]);
        // Same column: no adaptive alternative.
        assert_eq!(plan.route_candidates(0, 1), vec![1]);
    }

    #[test]
    fn torus_wrap_links_are_adaptive_only() {
        let plan = PodPlan::new(PodKind::Torus { cols: 3, rows: 3 }, 1, 0);
        let mesh = PodPlan::new(PodKind::Mesh { cols: 3, rows: 3 }, 1, 0);
        assert_eq!(plan.links.len(), mesh.links.len() + 6);
        // Escape ignores wraparound even when it is shorter.
        assert_eq!(plan.escape_path(0, 6), vec![0, 3, 6]);
        // But the wrap neighbor is offered as an adaptive candidate.
        assert!(plan.route_candidates(0, 6).contains(&6));
        assert_eq!(plan.route_candidates(0, 6)[0], 3, "escape first");
    }

    #[test]
    fn domain_specs_round_trip_counts() {
        let plan = PodPlan::new(
            PodKind::SpineLeaf {
                spines: 2,
                leaves_per_spine: 2,
            },
            3,
            1,
        );
        let specs = plan.domain_specs(|_, _| mem());
        assert_eq!(specs.len(), 2);
        for (d, s) in specs.iter().enumerate() {
            assert_eq!(s.n_hosts, plan.domain_edges(d).len() * 3);
            assert_eq!(s.devices.len(), plan.domain_edges(d).len());
        }
    }

    struct Sink {
        done: Vec<HostCompletion>,
    }

    impl Component for Sink {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            self.done
                .push(msg.downcast::<HostCompletion>().expect("hc"));
        }
    }

    fn wormhole_spec(kind: PodKind) -> PodSpec {
        let mut topo = TopologySpec::default();
        topo.switch.queueing = QueueDiscipline::Wormhole;
        topo.switch.adaptive = true;
        PodSpec {
            kind,
            topo,
            vc: VcConfig::default(),
            hosts_per_edge: 1,
            devices_per_edge: 1,
            cross_latency: SimTime::from_ns(200.0),
        }
    }

    /// A host on one spine group writes a device homed under the other
    /// spine, crossing a gateway cable over wormhole VC links.
    fn cross_pod_write(kind: PodKind, domains: usize, threads: usize) -> (u64, u64) {
        let spec = wormhole_spec(kind);
        let plan = spec.plan();
        let mut sharded = ShardedEngine::new(17, domains);
        let specs = plan.domain_specs(|_, _| mem());
        let (plan, fabric) = sharded_pod(&mut sharded, &spec, specs);
        assert!(plan.is_connected());
        let sink = sharded
            .engine_mut(0)
            .add_component("sink", Sink { done: vec![] });
        let far = fabric.domains[domains - 1].devices[0];
        let near = fabric.domains[0].hosts[0];
        sharded.engine_mut(0).post(
            near.fha,
            SimTime::ZERO,
            HostRequest {
                op: HostOp::Write {
                    addr: far.range.base,
                    bytes: 256,
                },
                tag: 3,
                reply_to: sink,
            },
        );
        sharded.run(threads);
        let done = &sharded.engine(0).component::<Sink>(sink).done;
        assert_eq!(done.len(), 1, "write completed across the pod");
        // All VC ledgers must balance at quiescence.
        for (d, topo) in fabric.domains.iter().enumerate() {
            for &sw in &topo.switches {
                let s = sharded.engine(d).component::<FabricSwitch>(sw);
                assert_eq!(s.vc_violations(), 0);
                let report = s.audit();
                assert!(report.is_clean(), "domain {d}: {report}");
            }
        }
        (done[0].latency().as_ps(), sharded.total_events())
    }

    #[test]
    fn spine_leaf_pod_carries_wormhole_traffic() {
        let kind = PodKind::SpineLeaf {
            spines: 2,
            leaves_per_spine: 2,
        };
        let serial = cross_pod_write(kind, 2, 1);
        assert_eq!(cross_pod_write(kind, 2, 2), serial, "byte-identical");
    }

    #[test]
    fn mesh_pod_carries_wormhole_traffic() {
        let kind = PodKind::Mesh { cols: 2, rows: 2 };
        let serial = cross_pod_write(kind, 2, 1);
        assert_eq!(cross_pod_write(kind, 2, 2), serial, "byte-identical");
    }

    #[test]
    fn torus_pod_carries_wormhole_traffic() {
        let kind = PodKind::Torus { cols: 3, rows: 3 };
        let serial = cross_pod_write(kind, 3, 1);
        assert_eq!(cross_pod_write(kind, 3, 3), serial, "byte-identical");
    }

    mod properties {
        use proptest::prelude::*;

        use super::*;

        // The vendored proptest has no `prop_oneof`/`prop_map`; pick the
        // family from an integer selector inside the case body instead.
        fn kind_of(sel: usize, a: usize, b: usize) -> PodKind {
            match sel % 3 {
                0 => PodKind::SpineLeaf {
                    spines: a,
                    leaves_per_spine: b,
                },
                1 => PodKind::Mesh { cols: a, rows: b },
                _ => PodKind::Torus { cols: a, rows: b },
            }
        }

        proptest! {
            /// Every generated pod is connected, every escape route
            /// terminates loop-free, and candidate lists start with the
            /// escape hop and contain only direct neighbors.
            #[test]
            fn pods_are_connected_with_loop_free_escapes(
                sel in 0usize..3, a in 1usize..5, b in 1usize..5,
                h in 1usize..4, dv in 0usize..3,
            ) {
                let plan = PodPlan::new(kind_of(sel, a, b), h, dv);
                prop_assert!(plan.is_connected());
                let edges = plan.edge_switches();
                prop_assert!(!edges.is_empty());
                for s in 0..plan.switches.len() {
                    for &e in &edges {
                        let path = plan.escape_path(s, e);
                        prop_assert_eq!(*path.last().unwrap(), e, "escape reaches dst");
                        let mut sorted = path.clone();
                        sorted.sort_unstable();
                        sorted.dedup();
                        prop_assert_eq!(sorted.len(), path.len(), "loop-free");
                        if s != e {
                            let cands = plan.route_candidates(s, e);
                            prop_assert_eq!(cands[0], path[1], "escape first");
                            let nbrs = plan.neighbors(s);
                            for c in cands {
                                prop_assert!(nbrs.contains(&c), "candidates are neighbors");
                            }
                        }
                    }
                }
            }

            /// Radix bounds: a realized switch never needs more ports
            /// than neighbors + endpoints, and the generators respect
            /// that bound symmetrically (every link appears once, a < b).
            #[test]
            fn radix_matches_link_table(
                sel in 0usize..3, a in 1usize..5, b in 1usize..5,
                h in 1usize..4, dv in 0usize..3,
            ) {
                let plan = PodPlan::new(kind_of(sel, a, b), h, dv);
                let mut degree = vec![0usize; plan.switches.len()];
                for l in &plan.links {
                    prop_assert!(l.a < l.b, "links are normalized");
                    degree[l.a] += 1;
                    degree[l.b] += 1;
                }
                for s in &plan.switches {
                    let endpoints = if s.is_edge { h + dv } else { 0 };
                    prop_assert_eq!(plan.radix(s.id), degree[s.id] + endpoints);
                }
            }

            /// Determinism + DomainSpec round-trip: regenerating the plan
            /// yields identical tables (ids sorted and dense), and the
            /// emitted DomainSpecs carry exactly the per-domain counts
            /// the realizer asserts on.
            #[test]
            fn plans_are_deterministic_and_specs_round_trip(
                sel in 0usize..3, a in 1usize..5, b in 1usize..5,
                h in 1usize..4, dv in 0usize..3,
            ) {
                let kind = kind_of(sel, a, b);
                let plan = PodPlan::new(kind, h, dv);
                prop_assert_eq!(&plan, &PodPlan::new(kind, h, dv));
                for (i, s) in plan.switches.iter().enumerate() {
                    prop_assert_eq!(s.id, i, "dense sorted ids");
                    prop_assert!(s.domain < plan.domains());
                }
                let specs = plan.domain_specs(|_, _| {
                    Box::new(FixedLatencyMemory::new(
                        SimTime::from_ns(1.0),
                        SimTime::from_ns(1.0),
                        4096,
                    ))
                });
                prop_assert_eq!(specs.len(), plan.domains());
                for (d, spec) in specs.iter().enumerate() {
                    let edges = plan.domain_edges(d).len();
                    prop_assert_eq!(spec.n_hosts, edges * h);
                    prop_assert_eq!(spec.devices.len(), edges * dv);
                }
            }
        }
    }
}
