//! The fabric manager: discovery and routing-table initialization.
//!
//! "Upon initialization, an FS discovers its connected components,
//! self-initializes the routing structure, and fills up the switching
//! table entries based on the topology. [...] The switching routing table
//! is generally filled up by a central fabric manager" (§2.1/2.2). The
//! [`FabricManager`] component probes every switch for its port peers,
//! identifies endpoint adapters, computes shortest-path routes over the
//! switch graph, and installs PBR entries — all via timed messages, so
//! discovery cost is visible in experiment F1.

use std::collections::BTreeMap;

use fcc_proto::addr::NodeId;
use fcc_sim::{Component, ComponentId, Ctx, Msg, SimTime};

use crate::adapter::{IdentifyReq, IdentifyRsp};
use crate::switch::{DiscoverReq, DiscoverRsp, InstallPbrRoute};

/// Message starting discovery.
#[derive(Debug, Clone, Copy)]
pub struct StartDiscovery;

/// Notification that the fabric is routable.
#[derive(Debug, Clone)]
pub struct FabricReady {
    /// All endpoint nodes discovered, with their owning component.
    pub endpoints: Vec<(NodeId, ComponentId, bool)>,
    /// Number of PBR entries installed across all switches.
    pub routes_installed: usize,
    /// Time discovery + installation took.
    pub elapsed: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Idle,
    Discovering,
    Identifying,
    Done,
}

/// The central fabric manager component.
pub struct FabricManager {
    switches: Vec<ComponentId>,
    subscriber: Option<ComponentId>,
    phase: Phase,
    started_at: SimTime,
    /// switch → peers (by port index).
    discovered: BTreeMap<ComponentId, Vec<ComponentId>>,
    /// endpoint component → (node, is_host).
    endpoints: BTreeMap<ComponentId, (NodeId, bool)>,
    pending_identify: usize,
    routes_installed: usize,
}

impl FabricManager {
    /// Creates a manager for the given switches; `subscriber` (if any)
    /// receives [`FabricReady`] when routing is installed.
    pub fn new(switches: Vec<ComponentId>, subscriber: Option<ComponentId>) -> Self {
        FabricManager {
            switches,
            subscriber,
            phase: Phase::Idle,
            started_at: SimTime::ZERO,
            discovered: BTreeMap::new(),
            endpoints: BTreeMap::new(),
            pending_identify: 0,
            routes_installed: 0,
        }
    }

    /// Whether initialization has finished.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Discovered endpoints (valid once done).
    pub fn endpoints(&self) -> &BTreeMap<ComponentId, (NodeId, bool)> {
        &self.endpoints
    }

    fn begin_identify(&mut self, ctx: &mut Ctx<'_>) {
        self.phase = Phase::Identifying;
        let switch_set: Vec<ComponentId> = self.switches.clone();
        let mut to_probe = Vec::new();
        for peers in self.discovered.values() {
            for &peer in peers {
                if !switch_set.contains(&peer) && !self.endpoints.contains_key(&peer) {
                    to_probe.push(peer);
                }
            }
        }
        to_probe.sort();
        to_probe.dedup();
        self.pending_identify = to_probe.len();
        if to_probe.is_empty() {
            self.install_routes(ctx);
            return;
        }
        for peer in to_probe {
            ctx.send(
                peer,
                SimTime::from_ns(100.0),
                IdentifyReq {
                    reply_to: ctx.self_id(),
                },
            );
        }
    }

    /// BFS over the switch graph from each switch, installing the first-hop
    /// port for every endpoint.
    fn install_routes(&mut self, ctx: &mut Ctx<'_>) {
        // Adjacency: switch → (port, neighbor switch).
        let mut adj: BTreeMap<ComponentId, Vec<(usize, ComponentId)>> = BTreeMap::new();
        // Attachment: switch → (port, endpoint node).
        let mut attached: BTreeMap<ComponentId, Vec<(usize, NodeId)>> = BTreeMap::new();
        for (&sw, peers) in &self.discovered {
            for (port, &peer) in peers.iter().enumerate() {
                if self.discovered.contains_key(&peer) {
                    adj.entry(sw).or_default().push((port, peer));
                } else if let Some(&(node, _)) = self.endpoints.get(&peer) {
                    attached.entry(sw).or_default().push((port, node));
                }
            }
        }
        for &start in &self.switches {
            // BFS giving, for every reachable switch, the first-hop port.
            let mut first_hop: BTreeMap<ComponentId, usize> = BTreeMap::new();
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(start);
            let mut visited: Vec<ComponentId> = vec![start];
            while let Some(sw) = queue.pop_front() {
                if let Some(neigh) = adj.get(&sw) {
                    for &(port, next) in neigh {
                        if !visited.contains(&next) {
                            visited.push(next);
                            let hop = if sw == start { port } else { first_hop[&sw] };
                            first_hop.insert(next, hop);
                            queue.push_back(next);
                        }
                    }
                }
            }
            // Install routes to every endpoint.
            for (&sw, list) in &attached {
                for &(port, node) in list {
                    let route_port = if sw == start {
                        Some(port)
                    } else {
                        first_hop.get(&sw).copied()
                    };
                    if let Some(p) = route_port {
                        ctx.send(
                            start,
                            SimTime::from_ns(100.0),
                            InstallPbrRoute { dst: node, port: p },
                        );
                        self.routes_installed += 1;
                    }
                }
            }
        }
        self.phase = Phase::Done;
        if let Some(sub) = self.subscriber {
            let endpoints: Vec<(NodeId, ComponentId, bool)> = {
                let mut v: Vec<_> = self
                    .endpoints
                    .iter()
                    .map(|(&c, &(n, h))| (n, c, h))
                    .collect();
                v.sort_by_key(|&(n, _, _)| n);
                v
            };
            let ready = FabricReady {
                endpoints,
                routes_installed: self.routes_installed,
                elapsed: ctx.now() - self.started_at,
            };
            ctx.send(sub, SimTime::from_ns(200.0), ready);
        }
    }
}

impl Component for FabricManager {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<StartDiscovery>() {
            Ok(StartDiscovery) => {
                assert_eq!(self.phase, Phase::Idle, "discovery already started");
                self.phase = Phase::Discovering;
                self.started_at = ctx.now();
                for &sw in &self.switches {
                    ctx.send(
                        sw,
                        SimTime::from_ns(100.0),
                        DiscoverReq {
                            reply_to: ctx.self_id(),
                        },
                    );
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<DiscoverRsp>() {
            Ok(rsp) => {
                self.discovered.insert(rsp.switch, rsp.peers);
                if self.discovered.len() == self.switches.len() {
                    self.begin_identify(ctx);
                }
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<IdentifyRsp>() {
            Ok(rsp) => {
                self.endpoints
                    .insert(rsp.component, (rsp.node, rsp.is_host));
                self.pending_identify -= 1;
                if self.pending_identify == 0 {
                    self.install_routes(ctx);
                }
            }
            Err(m) => panic!("manager: unexpected message {}", m.type_name()),
        }
    }
}
