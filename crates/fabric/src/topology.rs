//! Declarative assembly of composable infrastructures.
//!
//! Builders create the engine components of Figure 1 — host servers with
//! FHAs, fabric switches, FAM/FAA chassis behind FEAs — wire their ports,
//! build the host address map, and install routes (directly, or via the
//! fabric manager for the discovery experiment F1).

use fcc_proto::addr::{AddrMap, AddrRange, NodeId};
use fcc_proto::link::CreditConfig;
use fcc_sim::{ComponentId, Engine, SimTime};
use fcc_telemetry::{MetricsRegistry, TraceSink};

use crate::adapter::{Fea, Fha};
use crate::endpoint::{Endpoint, FixedLatencyMemory};
use crate::manager::FabricManager;
use crate::switch::{FabricSwitch, SwitchConfig};

/// Base host physical address at which FAM capacity is mapped.
pub const FAM_BASE: u64 = 0x10_0000_0000;

/// Shared configuration for topology builders.
#[derive(Debug, Clone, Copy)]
pub struct TopologySpec {
    /// Switch configuration (also supplies the port phys config).
    pub switch: SwitchConfig,
    /// Link-layer credits for adapter ports.
    pub credit: CreditConfig,
    /// FHA outstanding-request window.
    pub fha_outstanding: usize,
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec {
            switch: SwitchConfig::fabrex_like(),
            credit: CreditConfig::default(),
            fha_outstanding: 16,
        }
    }
}

/// A host server on the fabric.
#[derive(Debug, Clone, Copy)]
pub struct HostHandle {
    /// The host's FHA component.
    pub fha: ComponentId,
    /// The host's fabric node id.
    pub node: NodeId,
}

/// A fabric-attached device (FAM module or FAA engine).
#[derive(Debug, Clone, Copy)]
pub struct DeviceHandle {
    /// The device's FEA component.
    pub fea: ComponentId,
    /// The device's fabric node id.
    pub node: NodeId,
    /// The host-physical range mapped to this device (len 0 for non-memory).
    pub range: AddrRange,
}

/// A built composable infrastructure.
pub struct Topology {
    /// Host servers.
    pub hosts: Vec<HostHandle>,
    /// Fabric-attached devices.
    pub devices: Vec<DeviceHandle>,
    /// Fabric switches.
    pub switches: Vec<ComponentId>,
    /// The host physical address map shared by all FHAs.
    pub addr_map: AddrMap,
    /// The fabric manager, when the topology uses managed discovery.
    pub manager: Option<ComponentId>,
}

impl Topology {
    /// The first host's FHA (convenience for single-host setups).
    ///
    /// # Panics
    ///
    /// Panics if the topology has no hosts.
    pub fn host(&self) -> HostHandle {
        self.hosts[0]
    }

    /// The first device (convenience).
    ///
    /// # Panics
    ///
    /// Panics if the topology has no devices.
    pub fn device(&self) -> DeviceHandle {
        self.devices[0]
    }

    /// Wires a [`TraceSink`] through every adapter, port, switch, and
    /// device of this topology. Each component gets its own named track
    /// in the current process group; with a disabled sink this is a no-op
    /// and the simulation runs untraced at full speed.
    pub fn enable_tracing(&self, engine: &mut Engine, sink: &TraceSink) {
        if !sink.is_enabled() {
            return;
        }
        for h in &self.hosts {
            let name = format!("fha{}", h.node.0);
            let adapter_track = sink.track(&name);
            let port_track = sink.track(&format!("{name}.port"));
            let fha = engine.component_mut::<Fha>(h.fha);
            fha.set_trace(adapter_track);
            fha.port_mut().set_trace(port_track);
        }
        for d in &self.devices {
            let name = format!("fea{}", d.node.0);
            let adapter_track = sink.track(&name);
            let port_track = sink.track(&format!("{name}.port"));
            let dev_track = sink.track(&format!("{name}.dev"));
            let fea = engine.component_mut::<Fea>(d.fea);
            fea.set_trace(adapter_track);
            fea.port_mut().set_trace(port_track);
            fea.device_mut().set_trace(dev_track);
        }
        for (i, &sw) in self.switches.iter().enumerate() {
            let switch_track = sink.track(&format!("fs{i}"));
            let s = engine.component_mut::<FabricSwitch>(sw);
            s.set_trace(switch_track);
            for p in 0..s.port_count() {
                let t = sink.track(&format!("fs{i}.p{p}"));
                engine
                    .component_mut::<FabricSwitch>(sw)
                    .port_mut(p)
                    .set_trace(t);
            }
        }
    }

    /// Snapshots every fabric component's counters and histograms into a
    /// [`MetricsRegistry`] under hierarchical `<prefix><component>.<stat>`
    /// names (e.g. `e3b.bulk.fs0.forwarded`).
    pub fn collect_metrics(&self, engine: &Engine, reg: &mut MetricsRegistry, prefix: &str) {
        for h in &self.hosts {
            let name = format!("{prefix}fha{}", h.node.0);
            let fha = engine.component::<Fha>(h.fha);
            reg.record_counter(&format!("{name}.completions"), &fha.completions);
            reg.record_histogram(&format!("{name}.latency_ps"), &fha.latency);
            reg.record_counter(&format!("{name}.snoops"), &fha.snoops);
            reg.record_counter(&format!("{name}.tx_flits"), &fha.port().tx_flits);
            reg.record_counter(&format!("{name}.rx_flits"), &fha.port().rx_flits);
        }
        for d in &self.devices {
            let name = format!("{prefix}fea{}", d.node.0);
            let fea = engine.component::<Fea>(d.fea);
            reg.record_counter(&format!("{name}.serviced"), &fea.serviced);
            reg.record_counter(&format!("{name}.tx_flits"), &fea.port().tx_flits);
            reg.record_counter(&format!("{name}.rx_flits"), &fea.port().rx_flits);
        }
        for (i, &sw) in self.switches.iter().enumerate() {
            let name = format!("{prefix}fs{i}");
            let s = engine.component::<FabricSwitch>(sw);
            reg.record_counter(&format!("{name}.forwarded"), &s.forwarded);
            reg.record_counter(&format!("{name}.unroutable"), &s.unroutable);
            reg.record_counter(&format!("{name}.queue_delay_ps"), &s.queue_delay_ps);
        }
    }
}

struct Builder<'e> {
    engine: &'e mut Engine,
    spec: TopologySpec,
    next_node: u16,
    next_addr: u64,
    map: AddrMap,
    hosts: Vec<HostHandle>,
    devices: Vec<DeviceHandle>,
}

impl<'e> Builder<'e> {
    fn new(engine: &'e mut Engine, spec: TopologySpec) -> Self {
        Builder {
            engine,
            spec,
            next_node: 1,
            next_addr: FAM_BASE,
            map: AddrMap::new(),
            hosts: Vec::new(),
            devices: Vec::new(),
        }
    }

    fn alloc_node(&mut self) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        id
    }

    /// Creates the device components and reserves their address ranges,
    /// without wiring (the map must be complete before FHAs are built).
    fn stage_devices(&mut self, devices: Vec<Box<dyn Endpoint>>) -> Vec<(ComponentId, NodeId)> {
        let mut out = Vec::new();
        for (i, dev) in devices.into_iter().enumerate() {
            let node = self.alloc_node();
            let capacity = dev.capacity();
            let range = if capacity > 0 {
                let r = AddrRange::new(self.next_addr, capacity);
                self.map.add_direct(r, node);
                self.next_addr += capacity;
                r
            } else {
                AddrRange::new(u64::MAX - 1, 1)
            };
            let fea = self.engine.add_component(
                format!("fea{}", node.0),
                Fea::new(node, self.spec.switch.phys, self.spec.credit, dev),
            );
            self.devices.push(DeviceHandle { fea, node, range });
            out.push((fea, node));
            let _ = i;
        }
        out
    }

    fn make_host(&mut self) -> HostHandle {
        let node = self.alloc_node();
        let fha = self.engine.add_component(
            format!("fha{}", node.0),
            Fha::new(
                node,
                self.spec.switch.phys,
                self.spec.credit,
                self.map.clone(),
                self.spec.fha_outstanding,
            ),
        );
        let handle = HostHandle { fha, node };
        self.hosts.push(handle);
        handle
    }

    fn attach_to_switch(&mut self, sw: ComponentId, peer: ComponentId, peer_node: Option<NodeId>) {
        let port = {
            let s = self.engine.component_mut::<FabricSwitch>(sw);
            let p = s.add_port();
            s.connect(p, peer);
            if let Some(node) = peer_node {
                s.routing.add_pbr(node, p);
            }
            p
        };
        let _ = port;
        // Connect the peer back.
        if self.hosts.iter().any(|h| h.fha == peer) {
            self.engine.component_mut::<Fha>(peer).connect(sw);
        } else {
            self.engine.component_mut::<Fea>(peer).connect(sw);
        }
    }

    fn link_switches(&mut self, a: ComponentId, b: ComponentId) -> (usize, usize) {
        let pa = {
            let s = self.engine.component_mut::<FabricSwitch>(a);
            let p = s.add_port();
            s.connect(p, b);
            p
        };
        let pb = {
            let s = self.engine.component_mut::<FabricSwitch>(b);
            let p = s.add_port();
            s.connect(p, a);
            p
        };
        (pa, pb)
    }
}

/// Builds a host directly attached to one device (no switch).
pub fn direct(engine: &mut Engine, spec: TopologySpec, device: Box<dyn Endpoint>) -> Topology {
    let mut b = Builder::new(engine, spec);
    let staged = b.stage_devices(vec![device]);
    let host = b.make_host();
    let (fea, _node) = staged[0];
    b.engine.component_mut::<Fha>(host.fha).connect(fea);
    b.engine.component_mut::<Fea>(fea).connect(host.fha);
    Topology {
        hosts: b.hosts,
        devices: b.devices,
        switches: Vec::new(),
        addr_map: b.map,
        manager: None,
    }
}

/// Builds `n_hosts` hosts and the given devices around one switch, with
/// routes pre-installed.
pub fn single_switch(
    engine: &mut Engine,
    spec: TopologySpec,
    n_hosts: usize,
    devices: Vec<Box<dyn Endpoint>>,
) -> Topology {
    let mut b = Builder::new(engine, spec);
    let staged = b.stage_devices(devices);
    let sw = b
        .engine
        .add_component("fs0", FabricSwitch::new(spec.switch));
    for _ in 0..n_hosts {
        let host = b.make_host();
        b.attach_to_switch(sw, host.fha, Some(host.node));
    }
    for (fea, node) in staged {
        b.attach_to_switch(sw, fea, Some(node));
    }
    Topology {
        hosts: b.hosts,
        devices: b.devices,
        switches: vec![sw],
        addr_map: b.map,
        manager: None,
    }
}

/// One stage of a [`chain`] topology.
pub struct StageSpec {
    /// Hosts attached to this stage's switch.
    pub n_hosts: usize,
    /// Devices attached to this stage's switch.
    pub devices: Vec<Box<dyn Endpoint>>,
}

/// Builds a linear chain of switches (stage 0 — stage 1 — …), with hosts
/// and devices attached per stage and chain routes installed. Used by the
/// congestion back-propagation experiment (E3e).
pub fn chain(engine: &mut Engine, spec: TopologySpec, stages: Vec<StageSpec>) -> Topology {
    assert!(!stages.is_empty(), "need at least one stage");
    let mut b = Builder::new(engine, spec);
    // Stage staging order: devices first (address map), remembering stages.
    let mut staged_per_stage: Vec<Vec<(ComponentId, NodeId)>> = Vec::new();
    let mut hosts_per_stage: Vec<usize> = Vec::new();
    for stage in stages {
        staged_per_stage.push(b.stage_devices(stage.devices));
        hosts_per_stage.push(stage.n_hosts);
    }
    let switches: Vec<ComponentId> = (0..staged_per_stage.len())
        .map(|i| {
            b.engine
                .add_component(format!("fs{i}"), FabricSwitch::new(spec.switch))
        })
        .collect();
    // Inter-switch links.
    let mut right_port: Vec<Option<usize>> = vec![None; switches.len()];
    let mut left_port: Vec<Option<usize>> = vec![None; switches.len()];
    for i in 0..switches.len().saturating_sub(1) {
        let (pa, pb) = b.link_switches(switches[i], switches[i + 1]);
        right_port[i] = Some(pa);
        left_port[i + 1] = Some(pb);
    }
    // Attachments, collecting (stage, node) for route fill.
    let mut node_stage: Vec<(NodeId, usize)> = Vec::new();
    for (i, &sw) in switches.iter().enumerate() {
        for _ in 0..hosts_per_stage[i] {
            let host = b.make_host();
            b.attach_to_switch(sw, host.fha, Some(host.node));
            node_stage.push((host.node, i));
        }
        for &(fea, node) in &staged_per_stage[i] {
            b.attach_to_switch(sw, fea, Some(node));
            node_stage.push((node, i));
        }
    }
    // Chain routes: from each switch toward nodes at other stages.
    for (i, &sw) in switches.iter().enumerate() {
        for &(node, stage) in &node_stage {
            if stage == i {
                continue; // local PBR already installed by attach.
            }
            // A node at a farther stage implies the chain link toward it
            // was created in the wiring loop above.
            #[allow(clippy::expect_used)]
            let port = if stage > i {
                right_port[i].expect("right link exists")
            } else {
                left_port[i].expect("left link exists")
            };
            b.engine
                .component_mut::<FabricSwitch>(sw)
                .routing
                .add_pbr(node, port);
        }
    }
    Topology {
        hosts: b.hosts,
        devices: b.devices,
        switches,
        addr_map: b.map,
        manager: None,
    }
}

/// Builds the Figure 1 infrastructure: two host servers, two cross-linked
/// switches, two FAM chassis (three rDIMM modules each) and one FAA
/// chassis (two engines), with a fabric manager ready to run discovery.
///
/// Routes are *not* pre-installed; post
/// [`StartDiscovery`](crate::manager::StartDiscovery) to the returned
/// manager and run the engine (experiment F1).
pub fn figure1(engine: &mut Engine, spec: TopologySpec) -> Topology {
    let dimm = || -> Box<dyn Endpoint> {
        Box::new(FixedLatencyMemory::new(
            SimTime::from_ns(100.0),
            SimTime::from_ns(100.0),
            1 << 30,
        ))
    };
    let accel = || -> Box<dyn Endpoint> {
        Box::new(FixedLatencyMemory::new(
            SimTime::from_ns(50.0),
            SimTime::from_ns(50.0),
            256 << 20,
        ))
    };
    let mut b = Builder::new(engine, spec);
    let fam1 = b.stage_devices(vec![dimm(), dimm(), dimm()]);
    let fam2 = b.stage_devices(vec![dimm(), dimm(), dimm()]);
    let faa = b.stage_devices(vec![accel(), accel()]);
    let fs1 = b
        .engine
        .add_component("fs1", FabricSwitch::new(spec.switch));
    let fs2 = b
        .engine
        .add_component("fs2", FabricSwitch::new(spec.switch));
    b.link_switches(fs1, fs2);
    let h1 = b.make_host();
    let h2 = b.make_host();
    // No route pre-install: the manager fills tables (None for peer_node).
    b.attach_to_switch(fs1, h1.fha, None);
    b.attach_to_switch(fs2, h2.fha, None);
    for &(fea, _) in &fam1 {
        b.attach_to_switch(fs1, fea, None);
    }
    for &(fea, _) in &fam2 {
        b.attach_to_switch(fs2, fea, None);
    }
    for &(fea, _) in &faa {
        b.attach_to_switch(fs2, fea, None);
    }
    let manager = b
        .engine
        .add_component("fabric-manager", FabricManager::new(vec![fs1, fs2], None));
    Topology {
        hosts: b.hosts,
        devices: b.devices,
        switches: vec![fs1, fs2],
        addr_map: b.map,
        manager: Some(manager),
    }
}

#[cfg(test)]
mod tests {
    use fcc_sim::Engine;

    use super::*;

    #[test]
    fn single_switch_wires_and_routes() {
        let mut engine = Engine::new(0);
        let dev: Box<dyn Endpoint> = Box::new(FixedLatencyMemory::new(
            SimTime::from_ns(100.0),
            SimTime::from_ns(100.0),
            1 << 20,
        ));
        let topo = single_switch(&mut engine, TopologySpec::default(), 2, vec![dev]);
        assert_eq!(topo.hosts.len(), 2);
        assert_eq!(topo.devices.len(), 1);
        let sw = engine.component::<FabricSwitch>(topo.switches[0]);
        assert_eq!(sw.port_count(), 3);
        assert_eq!(sw.routing.pbr_entries(), 3);
        // Address map covers the device capacity at FAM_BASE.
        let d = topo.addr_map.decode(FAM_BASE).expect("mapped");
        assert_eq!(d.node, topo.devices[0].node);
        assert_eq!(topo.addr_map.total_bytes(), 1 << 20);
    }

    #[test]
    fn chain_installs_transit_routes() {
        let mut engine = Engine::new(0);
        let mk = || -> Box<dyn Endpoint> {
            Box::new(FixedLatencyMemory::new(
                SimTime::from_ns(100.0),
                SimTime::from_ns(100.0),
                1 << 20,
            ))
        };
        let topo = chain(
            &mut engine,
            TopologySpec::default(),
            vec![
                StageSpec {
                    n_hosts: 2,
                    devices: vec![],
                },
                StageSpec {
                    n_hosts: 0,
                    devices: vec![],
                },
                StageSpec {
                    n_hosts: 0,
                    devices: vec![mk()],
                },
            ],
        );
        assert_eq!(topo.switches.len(), 3);
        // Middle switch must know routes to the hosts (left) and dev (right).
        let mid = engine.component::<FabricSwitch>(topo.switches[1]);
        assert_eq!(mid.routing.pbr_entries(), 3);
        let dev_node = topo.devices[0].node;
        assert!(mid.routing.route(dev_node).is_some());
        assert!(mid.routing.route(topo.hosts[0].node).is_some());
    }

    use crate::adapter::{HostCompletion, HostOp, HostRequest};
    use fcc_sim::{Component, Ctx, Msg};

    struct Sink {
        done: Vec<HostCompletion>,
    }

    impl Component for Sink {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            self.done
                .push(msg.downcast::<HostCompletion>().expect("hc"));
        }
    }

    #[test]
    fn traffic_flows_host_to_device_through_switch() {
        let mut engine = Engine::new(5);
        let dev: Box<dyn Endpoint> = Box::new(FixedLatencyMemory::new(
            SimTime::from_ns(100.0),
            SimTime::from_ns(100.0),
            1 << 24,
        ));
        let topo = single_switch(&mut engine, TopologySpec::default(), 2, vec![dev]);
        let sink = engine.add_component("sink", Sink { done: vec![] });
        for (i, h) in topo.hosts.iter().enumerate() {
            for j in 0..10u64 {
                engine.post(
                    h.fha,
                    SimTime::ZERO,
                    HostRequest {
                        op: if j % 2 == 0 {
                            HostOp::Read {
                                addr: FAM_BASE + j * 64,
                                bytes: 64,
                            }
                        } else {
                            HostOp::Write {
                                addr: FAM_BASE + j * 64,
                                bytes: 64,
                            }
                        },
                        tag: (i as u64) * 100 + j,
                        reply_to: sink,
                    },
                );
            }
        }
        engine.run_until_idle();
        let done = &engine.component::<Sink>(sink).done;
        assert_eq!(done.len(), 20, "all requests completed through the switch");
        // Every completion passed the switch twice (~90ns each way) plus
        // the 100ns device: latency must exceed 280ns.
        for c in done {
            assert!(c.latency() > SimTime::from_ns(280.0), "{}", c.latency());
        }
        let sw = engine.component::<FabricSwitch>(topo.switches[0]);
        assert!(sw.forwarded.get() >= 20 * 2, "requests + responses");
        assert_eq!(sw.unroutable.get(), 0);
        assert_eq!(sw.queued(), 0, "switch drained");
    }

    #[test]
    fn figure1_discovery_installs_routes_and_carries_traffic() {
        let mut engine = Engine::new(5);
        let topo = figure1(&mut engine, TopologySpec::default());
        let manager = topo.manager.expect("figure1 has a manager");
        engine.post(manager, SimTime::ZERO, crate::manager::StartDiscovery);
        engine.run_until_idle();
        let fs1 = engine.component::<FabricSwitch>(topo.switches[0]);
        // fs1 must know every endpoint: 2 hosts + 8 devices.
        assert_eq!(fs1.routing.pbr_entries(), 10);
        // Cross-fabric read: host 1 (on fs1) reads a FAM module behind fs2.
        let sink = engine.add_component("sink", Sink { done: vec![] });
        let far_dev = topo.devices[3]; // first rDIMM of FAM chassis 2.
        let h1 = topo.hosts[0];
        engine.post(
            h1.fha,
            engine.now(),
            HostRequest {
                op: HostOp::Read {
                    addr: far_dev.range.base,
                    bytes: 64,
                },
                tag: 1,
                reply_to: sink,
            },
        );
        engine.run_until_idle();
        let done = &engine.component::<Sink>(sink).done;
        assert_eq!(done.len(), 1);
        // Two switch hops each way (~4 × 90ns) + device 100ns.
        assert!(done[0].latency() > SimTime::from_ns(460.0));
    }

    #[test]
    fn figure1_shape() {
        let mut engine = Engine::new(0);
        let topo = figure1(&mut engine, TopologySpec::default());
        assert_eq!(topo.hosts.len(), 2);
        assert_eq!(topo.devices.len(), 8, "6 rDIMMs + 2 FAA engines");
        assert_eq!(topo.switches.len(), 2);
        assert!(topo.manager.is_some());
        // fs1: inter-switch + host + 3 FAM = 5 ports.
        let fs1 = engine.component::<FabricSwitch>(topo.switches[0]);
        assert_eq!(fs1.port_count(), 5);
        // fs2: inter-switch + host + 3 FAM + 2 FAA = 7 ports.
        let fs2 = engine.component::<FabricSwitch>(topo.switches[1]);
        assert_eq!(fs2.port_count(), 7);
        // Routes not yet installed.
        assert_eq!(fs1.routing.pbr_entries(), 0);
    }
}
