//! Credit-conservation auditing across the fabric.
//!
//! §3 D#3 of the paper studies credit-flow pathologies (allocation,
//! scheduling, coordination). Before the experiments can blame the
//! *protocol* for stalls, the simulator itself must provably neither mint
//! nor leak credits. Three ledgers feed this audit:
//!
//! * [`fcc_proto::link::CreditCounter`] — every credit ever granted is
//!   either consumed or still available (`granted == consumed + available`);
//! * [`fcc_proto::link::LinkLayer`] — per-class accepted/released/returned
//!   counters balance against live buffer occupancy and pending returns;
//! * [`crate::credit::RampUpState`] — allocations stay within
//!   `[floor, ceiling]` and their sum within the pool (plus the one-flit
//!   minimum guarantee per input).
//!
//! [`FabricSwitch::audit`](crate::switch::FabricSwitch::audit) checks one
//! switch; [`audit_topology`] sweeps every switch in a built topology.
//! Run these at quiescence (after `run_until_idle`): mid-flight, credits
//! legitimately live on the wire and the pair-wise equations would
//! misreport them as leaked.

use fcc_sim::Engine;

use crate::switch::FabricSwitch;
use crate::topology::Topology;

/// One violated conservation equation, located within the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// Where the violation was observed (e.g. `switch 3, port 1 (rx)`).
    pub location: String,
    /// The violated equation, with both sides evaluated.
    pub detail: String,
}

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.location, self.detail)
    }
}

/// The outcome of a credit-conservation sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Every violated equation found, in discovery order.
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// Whether every conservation equation held.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Records a finding.
    pub fn push(&mut self, location: impl Into<String>, detail: impl Into<String>) {
        self.findings.push(AuditFinding {
            location: location.into(),
            detail: detail.into(),
        });
    }

    /// Absorbs another report's findings, prefixing their locations.
    pub fn absorb(&mut self, prefix: &str, other: AuditReport) {
        for f in other.findings {
            self.findings.push(AuditFinding {
                location: format!("{prefix}, {}", f.location),
                detail: f.detail,
            });
        }
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "credit ledger clean");
        }
        writeln!(
            f,
            "credit ledger violated ({} finding(s)):",
            self.findings.len()
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Audits every switch in a built topology.
///
/// Call at quiescence; see the module docs for why mid-flight sweeps
/// produce false positives.
pub fn audit_topology(engine: &Engine, topo: &Topology) -> AuditReport {
    let mut report = AuditReport::default();
    for (i, &id) in topo.switches.iter().enumerate() {
        let sw = engine.component::<FabricSwitch>(id);
        report.absorb(&format!("switch {i} ({})", engine.name(id)), sw.audit());
    }
    report
}
