#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! The composable infrastructure: adapters, switches, routing, and the
//! central fabric arbiter.
//!
//! This crate turns the pure protocol state machines of `fcc-proto` into
//! event-driven hardware models on a shared [`fcc_sim::Engine`]:
//!
//! * [`port`] — a Flex Bus link endpoint bound to a simulated wire
//!   (serialization occupancy, propagation, error injection, credit pump).
//! * [`switch`] — the fabric switch (FS): UP/DP ports, FIFO or
//!   virtual-output queueing, round-robin / credit-aware / arbitrated
//!   scheduling, per-port forwarding latency, adaptive routing.
//! * [`credit`] — egress credit allocation policies: static-fair, the
//!   exponential ramp-up scheme the paper critiques (§3 D#3), and
//!   arbiter-controlled reservations.
//! * [`adapter`] — the Fabric Host Adapter (FHA) and Fabric Endpoint
//!   Adapter (FEA).
//! * [`endpoint`] — the device behind an FEA ([`endpoint::Endpoint`]
//!   trait); real DRAM devices live in `fcc-memnode`.
//! * [`ledger`] — credit-conservation auditing over the link-layer and
//!   allocator ledgers (run at quiescence; see `scripts/check.sh`).
//! * [`routing`] — PBR (intra-domain) and HBR (inter-domain) tables.
//! * [`manager`] — the fabric manager: discovery and routing-table fill.
//! * [`topology`] — declarative assembly of hosts, switches and chassis
//!   into an engine (Figure 1 of the paper).
//! * [`arbiter`] — the FCC central arbiter on dedicated control lanes
//!   (design principle #4).
//! * [`commfabric`] — the communication-fabric baseline: an RDMA-style
//!   NIC with submission/completion queues, doorbells and DMA engines.
//! * [`wormhole`] — per-(port, VC) credit ledgers for wormhole switching
//!   with an adaptive/escape virtual-channel split.
//! * [`pods`] — pod-scale topology generators (spine-leaf, 2D mesh,
//!   torus) that emit shardable domain plans for rack-size fabrics.

pub mod adapter;
pub mod arbiter;
pub mod commfabric;
pub mod credit;
pub mod endpoint;
pub mod ledger;
pub mod manager;
pub mod pods;
pub mod port;
pub mod routing;
pub mod sharded;
pub mod switch;
pub mod topology;
pub mod wormhole;

pub use adapter::{Fea, Fha, HostCompletion, HostOp, HostRequest, SnoopMsg, SnoopReply};
pub use arbiter::{ArbiterOp, ArbiterRequest, ArbiterResponse, ArbiterResult, FabricArbiter};
pub use commfabric::{RdmaCompletion, RdmaConfig, RdmaNic, RdmaOp};
pub use credit::AllocPolicy;
pub use endpoint::{Endpoint, EndpointResponse, FixedLatencyMemory};
pub use ledger::{audit_topology, AuditFinding, AuditReport};
pub use manager::FabricManager;
pub use pods::{PodKind, PodPlan, PodSpec};
pub use port::{FlitMsg, LinkPort, PortEvent};
pub use routing::{DomainId, RoutingTable};
pub use switch::{FabricSwitch, FlowId, QueueDiscipline, SwitchConfig};
pub use topology::{Topology, TopologySpec};
pub use wormhole::{VcConfig, VcLink};
