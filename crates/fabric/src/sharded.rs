//! Topology-driven shard assignment: a chain of switch domains, one
//! shard per domain.
//!
//! [`sharded_chain`] carves a multi-switch fabric along its natural
//! partition boundary — the switch domain — into the per-shard engines of
//! a [`ShardedEngine`]. Each domain is a [`single_switch`-style] island
//! (hosts and devices around one switch); adjacent domains are joined by
//! long-haul cables modeled as [`ShardGateway`] pairs. Node ids and the
//! host-physical address map are global, so a host anywhere can address a
//! device anywhere: the local switch routes remote nodes toward the
//! gateway port on the shortest chain direction, exactly as
//! [`crate::topology::chain`] installs transit routes.
//!
//! The gateway relay latency *is* the conservative lookahead the sharded
//! executor runs with (see [`fcc_sim::shard`]): it is the serialization +
//! propagation budget of the inter-domain cable, which physically
//! lower-bounds how soon one domain can observe another's traffic.
//!
//! [`single_switch`-style]: crate::topology::single_switch

use fcc_proto::addr::{AddrMap, AddrRange, NodeId};
use fcc_sim::shard::{ShardGateway, ShardedEngine};
use fcc_sim::{ComponentId, SimTime};

use crate::adapter::{Fea, Fha};
use crate::endpoint::Endpoint;
use crate::switch::FabricSwitch;
use crate::topology::{DeviceHandle, HostHandle, Topology, TopologySpec, FAM_BASE};

/// Hosts and devices of one switch domain in a [`sharded_chain`].
pub struct DomainSpec {
    /// Host servers attached to this domain's switch.
    pub n_hosts: usize,
    /// Devices attached to this domain's switch.
    pub devices: Vec<Box<dyn Endpoint>>,
}

/// A fabric carved into per-domain shards.
pub struct ShardedFabric {
    /// One [`Topology`] per domain, in shard order. Each holds only its
    /// own hosts, devices, and switch, but the shared global address map.
    pub domains: Vec<Topology>,
    /// Gateway pairs `(in domain d, in domain d+1)` for each cable.
    pub gateways: Vec<(ComponentId, ComponentId)>,
}

impl ShardedFabric {
    /// Every host across all domains, in global node order.
    pub fn all_hosts(&self) -> impl Iterator<Item = (usize, &HostHandle)> + '_ {
        self.domains
            .iter()
            .enumerate()
            .flat_map(|(d, t)| t.hosts.iter().map(move |h| (d, h)))
    }

    /// Every device across all domains, in global node order.
    pub fn all_devices(&self) -> impl Iterator<Item = (usize, &DeviceHandle)> + '_ {
        self.domains
            .iter()
            .enumerate()
            .flat_map(|(d, t)| t.devices.iter().map(move |dev| (d, dev)))
    }
}

/// Builds a chain of single-switch domains over the shards of `sharded`,
/// joined by gateway cables of one-way latency `cross_latency`, with all
/// transit routes installed. The executor's lookahead becomes
/// `cross_latency`.
///
/// # Panics
///
/// Panics if `domains.len()` differs from the shard count, or the chain
/// has more than one domain and `cross_latency` is zero.
pub fn sharded_chain(
    sharded: &mut ShardedEngine,
    spec: TopologySpec,
    domains: Vec<DomainSpec>,
    cross_latency: SimTime,
) -> ShardedFabric {
    assert_eq!(domains.len(), sharded.shard_count(), "one domain per shard");
    let k = domains.len();
    let mut map = AddrMap::new();
    let mut next_node: u16 = 1;
    let mut next_addr: u64 = FAM_BASE;
    let mut alloc_node = || {
        let id = NodeId(next_node);
        next_node += 1;
        id
    };
    // Stage every device first: the address map must be complete before
    // any FHA is built (same discipline as the serial builders).
    let mut staged: Vec<Vec<(ComponentId, NodeId, AddrRange)>> = Vec::new();
    let mut hosts_per_domain: Vec<usize> = Vec::new();
    for (d, domain) in domains.into_iter().enumerate() {
        let mut out = Vec::new();
        for dev in domain.devices {
            let node = alloc_node();
            let capacity = dev.capacity();
            let range = if capacity > 0 {
                let r = AddrRange::new(next_addr, capacity);
                map.add_direct(r, node);
                next_addr += capacity;
                r
            } else {
                AddrRange::new(u64::MAX - 1, 1)
            };
            let fea = sharded.engine_mut(d).add_component(
                format!("fea{}", node.0),
                Fea::new(node, spec.switch.phys, spec.credit, dev),
            );
            out.push((fea, node, range));
        }
        staged.push(out);
        hosts_per_domain.push(domain.n_hosts);
    }
    // One switch per domain.
    let switches: Vec<ComponentId> = (0..k)
        .map(|d| {
            sharded
                .engine_mut(d)
                .add_component(format!("fs{d}"), FabricSwitch::new(spec.switch))
        })
        .collect();
    // Inter-domain cables: a gateway pair per chain hop, each attached to
    // its side's switch like any endpoint.
    let mut gateways = Vec::new();
    let mut right_port: Vec<Option<usize>> = vec![None; k];
    let mut left_port: Vec<Option<usize>> = vec![None; k];
    for d in 0..k.saturating_sub(1) {
        let (gl, gr) = sharded.link(d, d + 1, cross_latency, &format!("cable{d}"));
        let engine = sharded.engine_mut(d);
        let pd = {
            let s = engine.component_mut::<FabricSwitch>(switches[d]);
            let p = s.add_port();
            s.connect(p, gl);
            p
        };
        engine
            .component_mut::<ShardGateway>(gl)
            .set_local_peer(switches[d]);
        right_port[d] = Some(pd);
        let engine = sharded.engine_mut(d + 1);
        let pe = {
            let s = engine.component_mut::<FabricSwitch>(switches[d + 1]);
            let p = s.add_port();
            s.connect(p, gr);
            p
        };
        engine
            .component_mut::<ShardGateway>(gr)
            .set_local_peer(switches[d + 1]);
        left_port[d + 1] = Some(pe);
        gateways.push((gl, gr));
    }
    // Hosts (map is complete now), plus local attachments and routes.
    let mut node_domain: Vec<(NodeId, usize)> = Vec::new();
    let mut topo_hosts: Vec<Vec<HostHandle>> = (0..k).map(|_| Vec::new()).collect();
    for d in 0..k {
        for _ in 0..hosts_per_domain[d] {
            let node = alloc_node();
            let engine = sharded.engine_mut(d);
            let fha = engine.add_component(
                format!("fha{}", node.0),
                Fha::new(
                    node,
                    spec.switch.phys,
                    spec.credit,
                    map.clone(),
                    spec.fha_outstanding,
                ),
            );
            let port = {
                let s = engine.component_mut::<FabricSwitch>(switches[d]);
                let p = s.add_port();
                s.connect(p, fha);
                s.routing.add_pbr(node, p);
                p
            };
            let _ = port;
            engine.component_mut::<Fha>(fha).connect(switches[d]);
            topo_hosts[d].push(HostHandle { fha, node });
            node_domain.push((node, d));
        }
        for &(fea, node, _) in &staged[d] {
            let engine = sharded.engine_mut(d);
            {
                let s = engine.component_mut::<FabricSwitch>(switches[d]);
                let p = s.add_port();
                s.connect(p, fea);
                s.routing.add_pbr(node, p);
            }
            engine.component_mut::<Fea>(fea).connect(switches[d]);
            node_domain.push((node, d));
        }
    }
    // Transit routes: remote nodes exit through the chainward gateway.
    for d in 0..k {
        for &(node, home) in &node_domain {
            if home == d {
                continue;
            }
            // The chain hop toward `home` exists because home != d.
            #[allow(clippy::expect_used)]
            let port = if home > d {
                right_port[d].expect("right cable exists")
            } else {
                left_port[d].expect("left cable exists")
            };
            sharded
                .engine_mut(d)
                .component_mut::<FabricSwitch>(switches[d])
                .routing
                .add_pbr(node, port);
        }
    }
    let domains = (0..k)
        .map(|d| Topology {
            hosts: std::mem::take(&mut topo_hosts[d]),
            devices: staged[d]
                .iter()
                .map(|&(fea, node, range)| DeviceHandle { fea, node, range })
                .collect(),
            switches: vec![switches[d]],
            addr_map: map.clone(),
            manager: None,
        })
        .collect();
    ShardedFabric { domains, gateways }
}

#[cfg(test)]
mod tests {
    use fcc_sim::{Component, Ctx, Msg, SimTime};

    use super::*;
    use crate::adapter::{HostCompletion, HostOp, HostRequest};
    use crate::endpoint::FixedLatencyMemory;

    struct Sink {
        done: Vec<HostCompletion>,
    }

    impl Component for Sink {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            self.done
                .push(msg.downcast::<HostCompletion>().expect("hc"));
        }
    }

    fn mem() -> Box<dyn Endpoint> {
        Box::new(FixedLatencyMemory::new(
            SimTime::from_ns(100.0),
            SimTime::from_ns(100.0),
            1 << 20,
        ))
    }

    fn build(shards: usize) -> (ShardedEngine, ShardedFabric) {
        let mut sharded = ShardedEngine::new(11, shards);
        let domains = (0..shards)
            .map(|_| DomainSpec {
                n_hosts: 1,
                devices: vec![mem()],
            })
            .collect();
        let fabric = sharded_chain(
            &mut sharded,
            TopologySpec::default(),
            domains,
            SimTime::from_ns(200.0),
        );
        (sharded, fabric)
    }

    #[test]
    fn chain_of_domains_installs_transit_routes() {
        let (sharded, fabric) = build(3);
        assert_eq!(fabric.domains.len(), 3);
        assert_eq!(fabric.gateways.len(), 2);
        assert_eq!(sharded.lookahead(), Some(SimTime::from_ns(200.0)));
        // The middle switch must know every node: 2 local (host+dev via
        // local ports) + 4 remote (2 per side via gateway ports).
        let mid = fabric.domains[1].switches[0];
        let sw = sharded.engine(1).component::<FabricSwitch>(mid);
        assert_eq!(sw.routing.pbr_entries(), 6);
        // Ports: host + device + two cables.
        assert_eq!(sw.port_count(), 4);
    }

    /// A host in domain 0 reads a device in domain 2, crossing two
    /// gateway cables each way.
    fn cross_domain_read(threads: usize) -> (u64, u64) {
        let (mut sharded, fabric) = build(3);
        let sink = sharded
            .engine_mut(0)
            .add_component("sink", Sink { done: vec![] });
        let far = fabric.domains[2].devices[0];
        let near_host = fabric.domains[0].hosts[0];
        sharded.engine_mut(0).post(
            near_host.fha,
            SimTime::ZERO,
            HostRequest {
                op: HostOp::Read {
                    addr: far.range.base,
                    bytes: 64,
                },
                tag: 9,
                reply_to: sink,
            },
        );
        sharded.run(threads);
        let done = &sharded.engine(0).component::<Sink>(sink).done;
        assert_eq!(done.len(), 1, "read completed across two cables");
        // Two cables (200ns each) each way + device (100ns) + three
        // switch hops each way: well past 900ns.
        assert!(done[0].latency() > SimTime::from_ns(900.0));
        (done[0].latency().as_ps(), sharded.total_events())
    }

    #[test]
    fn cross_domain_traffic_flows() {
        let serial = cross_domain_read(1);
        assert_eq!(cross_domain_read(2), serial);
        assert_eq!(cross_domain_read(3), serial);
    }
}
