//! The FCC central fabric arbiter (design principle #4).
//!
//! "FCC proposes an in-band centralized fabric arbiter for bandwidth
//! allocation, congestion control, and flow scheduling [...] FCC would
//! incorporate a programmable interface with the control lane to query,
//! reserve, and reclaim credits" (§4 DP#4). The arbiter is a component
//! reachable over *dedicated control lanes*: control messages travel on
//! their own low-latency path (the paper argues a 64 B flit RTT of
//! ≈200 ns makes this cheap), never queueing behind data traffic.
//!
//! Reservations are admission-controlled against per-egress capacity and
//! enforced at switches via [`InstallRate`] token buckets.

use std::collections::HashMap;

use fcc_sim::{Component, ComponentId, Counter, Ctx, Msg, SimTime};

use crate::switch::{FlowId, InstallRate, RemoveRate};

/// A hop a flow crosses: a switch and the egress port used there.
pub type FlowHop = (ComponentId, usize);

/// Client request to the arbiter (sent on the control lane).
#[derive(Debug, Clone, Copy)]
pub struct ArbiterRequest {
    /// The operation.
    pub op: ArbiterOp,
    /// Caller tag echoed back.
    pub tag: u64,
    /// Component to answer.
    pub reply_to: ComponentId,
}

/// Arbiter operations: query, reserve, reclaim (§4 DP#4).
#[derive(Debug, Clone, Copy)]
pub enum ArbiterOp {
    /// Reports reserved and available bandwidth along the flow's path.
    Query {
        /// The flow of interest.
        flow: FlowId,
    },
    /// Reserves `gbps` for the flow (admission controlled).
    Reserve {
        /// The flow.
        flow: FlowId,
        /// Requested sustained rate.
        gbps: f64,
        /// Burst allowance in bytes.
        burst_bytes: u64,
    },
    /// Releases the flow's reservation.
    Reclaim {
        /// The flow.
        flow: FlowId,
    },
}

/// Arbiter answer.
#[derive(Debug, Clone, Copy)]
pub struct ArbiterResponse {
    /// Echo of the request tag.
    pub tag: u64,
    /// The outcome.
    pub result: ArbiterResult,
}

/// Outcome of an [`ArbiterOp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArbiterResult {
    /// Query answer.
    Info {
        /// Bandwidth currently reserved for the flow (0 if none).
        reserved_gbps: f64,
        /// Headroom on the most constrained hop of the flow's path.
        available_gbps: f64,
    },
    /// Reservation granted at the stated rate.
    Granted {
        /// The granted rate.
        gbps: f64,
    },
    /// Reservation denied; the bottleneck's headroom is reported.
    Denied {
        /// Available bandwidth at the bottleneck hop.
        available_gbps: f64,
    },
    /// Reservation released.
    Reclaimed,
    /// The flow's path is not registered with the arbiter.
    UnknownFlow,
}

/// The central arbiter component.
pub struct FabricArbiter {
    /// One-way latency of the dedicated control lane.
    control_latency: SimTime,
    /// Flow → hops crossed (registered at deployment).
    paths: HashMap<FlowId, Vec<FlowHop>>,
    /// Hop → capacity in Gbit/s.
    capacity: HashMap<FlowHop, f64>,
    /// Hop → reserved Gbit/s.
    reserved: HashMap<FlowHop, f64>,
    /// Flow → granted rate.
    grants: HashMap<FlowId, f64>,
    /// Requests served.
    pub requests: Counter,
    /// Reservations denied.
    pub denials: Counter,
}

impl FabricArbiter {
    /// Creates an arbiter whose control lane has the given one-way latency.
    ///
    /// The paper's dedicated-lane argument: "the end-to-end RTT of a 64B
    /// flit at the data link layer in an unloaded scenario can be up to
    /// 200ns" — so a 100 ns one-way lane is the default.
    pub fn new(control_latency: SimTime) -> Self {
        FabricArbiter {
            control_latency,
            paths: HashMap::new(),
            capacity: HashMap::new(),
            reserved: HashMap::new(),
            grants: HashMap::new(),
            requests: Counter::new(),
            denials: Counter::new(),
        }
    }

    /// Registers the path a flow takes (deployment-time topology knowledge).
    pub fn register_path(&mut self, flow: FlowId, hops: Vec<FlowHop>) {
        self.paths.insert(flow, hops);
    }

    /// Declares the capacity of a hop.
    pub fn set_capacity(&mut self, hop: FlowHop, gbps: f64) {
        self.capacity.insert(hop, gbps);
    }

    /// Headroom on the most constrained hop of `flow`'s path.
    fn headroom(&self, flow: FlowId) -> Option<f64> {
        let hops = self.paths.get(&flow)?;
        hops.iter()
            .map(|hop| {
                let cap = self.capacity.get(hop).copied().unwrap_or(f64::INFINITY);
                let used = self.reserved.get(hop).copied().unwrap_or(0.0);
                cap - used
            })
            .fold(None, |acc: Option<f64>, h| {
                Some(acc.map_or(h, |a| a.min(h)))
            })
    }

    fn apply(&mut self, ctx: &mut Ctx<'_>, op: ArbiterOp) -> ArbiterResult {
        match op {
            ArbiterOp::Query { flow } => match self.headroom(flow) {
                Some(avail) => ArbiterResult::Info {
                    reserved_gbps: self.grants.get(&flow).copied().unwrap_or(0.0),
                    available_gbps: avail,
                },
                None => ArbiterResult::UnknownFlow,
            },
            ArbiterOp::Reserve {
                flow,
                gbps,
                burst_bytes,
            } => {
                let Some(avail) = self.headroom(flow) else {
                    return ArbiterResult::UnknownFlow;
                };
                if gbps > avail {
                    self.denials.inc();
                    return ArbiterResult::Denied {
                        available_gbps: avail,
                    };
                }
                let hops = self.paths[&flow].clone();
                for hop in &hops {
                    *self.reserved.entry(*hop).or_insert(0.0) += gbps;
                    ctx.send(
                        hop.0,
                        self.control_latency,
                        InstallRate {
                            flow,
                            gbps,
                            burst_bytes,
                        },
                    );
                }
                self.grants.insert(flow, gbps);
                ArbiterResult::Granted { gbps }
            }
            ArbiterOp::Reclaim { flow } => {
                let Some(gbps) = self.grants.remove(&flow) else {
                    return ArbiterResult::UnknownFlow;
                };
                let hops = self.paths[&flow].clone();
                for hop in &hops {
                    if let Some(r) = self.reserved.get_mut(hop) {
                        *r = (*r - gbps).max(0.0);
                    }
                    ctx.send(hop.0, self.control_latency, RemoveRate { flow });
                }
                ArbiterResult::Reclaimed
            }
        }
    }
}

impl Component for FabricArbiter {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let req = msg
            .downcast::<ArbiterRequest>()
            .unwrap_or_else(|m| panic!("arbiter: unexpected message {}", m.type_name()));
        self.requests.inc();
        let result = self.apply(ctx, req.op);
        ctx.send(
            req.reply_to,
            self.control_latency,
            ArbiterResponse {
                tag: req.tag,
                result,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use fcc_proto::addr::NodeId;
    use fcc_sim::Engine;

    use super::*;

    /// Records arbiter responses; also a stand-in for a switch so that
    /// InstallRate/RemoveRate messages have somewhere to land.
    #[derive(Default)]
    struct Probe {
        responses: Vec<ArbiterResponse>,
        installs: Vec<InstallRate>,
        removals: Vec<RemoveRate>,
    }

    impl Component for Probe {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            let msg = match msg.downcast::<ArbiterResponse>() {
                Ok(r) => {
                    self.responses.push(r);
                    return;
                }
                Err(m) => m,
            };
            let msg = match msg.downcast::<InstallRate>() {
                Ok(r) => {
                    self.installs.push(r);
                    return;
                }
                Err(m) => m,
            };
            match msg.downcast::<RemoveRate>() {
                Ok(r) => self.removals.push(r),
                Err(m) => panic!("probe: unexpected {}", m.type_name()),
            }
        }
    }

    fn flow(a: u16, b: u16) -> FlowId {
        FlowId {
            src: NodeId(a),
            dst: NodeId(b),
        }
    }

    fn setup() -> (Engine, ComponentId, ComponentId, ComponentId) {
        let mut engine = Engine::new(0);
        let probe = engine.add_component("probe", Probe::default());
        let fake_switch = engine.add_component("switch", Probe::default());
        let mut arb = FabricArbiter::new(SimTime::from_ns(100.0));
        arb.register_path(flow(1, 9), vec![(fake_switch, 3)]);
        arb.register_path(flow(2, 9), vec![(fake_switch, 3)]);
        arb.set_capacity((fake_switch, 3), 100.0);
        let arb = engine.add_component("arbiter", arb);
        (engine, arb, probe, fake_switch)
    }

    #[test]
    fn reserve_grants_within_capacity_then_denies() {
        let (mut engine, arb, probe, fake_switch) = setup();
        for (tag, gbps) in [(1u64, 60.0), (2, 60.0)] {
            engine.post(
                arb,
                SimTime::ZERO,
                ArbiterRequest {
                    op: ArbiterOp::Reserve {
                        flow: if tag == 1 { flow(1, 9) } else { flow(2, 9) },
                        gbps,
                        burst_bytes: 4096,
                    },
                    tag,
                    reply_to: probe,
                },
            );
        }
        engine.run_until_idle();
        let p = engine.component::<Probe>(probe);
        assert_eq!(p.responses.len(), 2);
        assert_eq!(p.responses[0].result, ArbiterResult::Granted { gbps: 60.0 });
        assert_eq!(
            p.responses[1].result,
            ArbiterResult::Denied {
                available_gbps: 40.0
            }
        );
        let sw = engine.component::<Probe>(fake_switch);
        assert_eq!(sw.installs.len(), 1, "only the granted flow installed");
    }

    #[test]
    fn reclaim_returns_headroom() {
        let (mut engine, arb, probe, fake_switch) = setup();
        engine.post(
            arb,
            SimTime::ZERO,
            ArbiterRequest {
                op: ArbiterOp::Reserve {
                    flow: flow(1, 9),
                    gbps: 80.0,
                    burst_bytes: 4096,
                },
                tag: 1,
                reply_to: probe,
            },
        );
        engine.post(
            arb,
            SimTime::from_us(1.0),
            ArbiterRequest {
                op: ArbiterOp::Reclaim { flow: flow(1, 9) },
                tag: 2,
                reply_to: probe,
            },
        );
        engine.post(
            arb,
            SimTime::from_us(2.0),
            ArbiterRequest {
                op: ArbiterOp::Query { flow: flow(2, 9) },
                tag: 3,
                reply_to: probe,
            },
        );
        engine.run_until_idle();
        let p = engine.component::<Probe>(probe);
        assert_eq!(p.responses[1].result, ArbiterResult::Reclaimed);
        assert_eq!(
            p.responses[2].result,
            ArbiterResult::Info {
                reserved_gbps: 0.0,
                available_gbps: 100.0
            }
        );
        let sw = engine.component::<Probe>(fake_switch);
        assert_eq!(sw.removals.len(), 1);
    }

    #[test]
    fn control_lane_rtt_is_two_control_latencies() {
        let (mut engine, arb, probe, _) = setup();
        engine.post(
            arb,
            SimTime::ZERO,
            ArbiterRequest {
                op: ArbiterOp::Query { flow: flow(1, 9) },
                tag: 1,
                reply_to: probe,
            },
        );
        engine.run_until_idle();
        // Request posted at t=0 arrives instantly (harness post), response
        // takes one control latency: the measured client RTT in E7 adds the
        // outbound lane too.
        assert_eq!(engine.now(), SimTime::from_ns(100.0));
    }

    #[test]
    fn unknown_flow_is_reported() {
        let (mut engine, arb, probe, _) = setup();
        engine.post(
            arb,
            SimTime::ZERO,
            ArbiterRequest {
                op: ArbiterOp::Query { flow: flow(7, 7) },
                tag: 1,
                reply_to: probe,
            },
        );
        engine.run_until_idle();
        let p = engine.component::<Probe>(probe);
        assert_eq!(p.responses[0].result, ArbiterResult::UnknownFlow);
    }
}
