//! Egress credit allocation policies for the fabric switch.
//!
//! §3 D#3 of the paper identifies three unexploited problems in
//! credit-based flow control over routable PCIe. This module implements the
//! mechanism under critique and its alternatives, so the experiments can
//! reproduce the pathologies and show the FCC remedy:
//!
//! * **Credit allocation** — "the de facto scheme is an exponential
//!   ramp-up approach based on port bandwidth utilization. A consistently
//!   heavily-used port would take more credits, leaving little room for
//!   other contending ports." [`AllocPolicy::RampUp`] implements that
//!   scheme; [`AllocPolicy::Fair`] is the static-equal baseline, and
//!   [`AllocPolicy::Arbitrated`] defers to reservations installed by the
//!   central arbiter (design principle #4).
//! * The **scheduling** and **coordination** pathologies are exercised by
//!   the switch queue discipline and multi-switch topologies respectively
//!   (see `switch.rs` and experiment E3d/E3e).

use serde::{Deserialize, Serialize};

use fcc_sim::SimTime;

/// How an output port's scarce downstream credits are divided among
/// competing input ports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AllocPolicy {
    /// Round-robin, equal shares. No history.
    Fair,
    /// Exponential ramp-up on utilization (Kung et al. \[56\], the de facto
    /// scheme): an input that fully uses its allocation doubles it next
    /// window; an underusing input halves. Grants come from a shared
    /// credit pool, richest first — so a hot port's grown allocation
    /// leaves "little room for other contending ports" (§3 D#3).
    RampUp {
        /// Allocation adjustment window.
        window: SimTime,
        /// Initial and minimum desired per-input allocation (flits/window).
        floor: u32,
        /// Maximum per-input allocation (flits per window).
        ceiling: u32,
        /// Total flits grantable per window across all inputs.
        pool: u32,
    },
    /// Reservations installed by the central fabric arbiter; unreserved
    /// traffic shares the remainder round-robin.
    Arbitrated,
}

impl AllocPolicy {
    /// A ramp-up policy with the defaults used in the experiments: the
    /// pool matches roughly one window of device service capacity.
    pub fn default_ramp_up() -> Self {
        AllocPolicy::RampUp {
            window: SimTime::from_us(1.0),
            floor: 2,
            ceiling: 4096,
            pool: 32,
        }
    }
}

/// Per-output ramp-up allocator state.
#[derive(Debug, Clone)]
pub struct RampUpState {
    floor: u32,
    ceiling: u32,
    pool: u32,
    /// Desired allocation per input (exponential ramp target).
    desired: Vec<u32>,
    /// Current granted allocation per input port (flits per window).
    alloc: Vec<u32>,
    /// Flits forwarded per input port in the current window.
    used: Vec<u32>,
}

impl RampUpState {
    /// Creates state for `inputs` input ports sharing `pool` flits/window.
    pub fn new(inputs: usize, floor: u32, ceiling: u32, pool: u32) -> Self {
        let floor = floor.max(1);
        let mut s = RampUpState {
            floor,
            ceiling: ceiling.max(floor),
            pool: pool.max(1),
            desired: vec![floor; inputs],
            alloc: vec![0; inputs],
            used: vec![0; inputs],
        };
        s.grant();
        s
    }

    /// Distributes the pool: richest desired allocation first (the de
    /// facto scheme's bias), everyone else takes what remains (min 1).
    fn grant(&mut self) {
        let mut order: Vec<usize> = (0..self.desired.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.desired[i]));
        let mut remaining = self.pool;
        for i in order {
            let granted = self.desired[i].min(remaining);
            let granted = granted.max(1);
            self.alloc[i] = granted;
            remaining = remaining.saturating_sub(granted);
        }
    }

    /// Whether input `i` may forward another flit this window.
    pub fn may_send(&self, i: usize) -> bool {
        self.used[i] < self.alloc[i]
    }

    /// Records a forwarded flit from input `i`.
    pub fn on_send(&mut self, i: usize) {
        self.used[i] += 1;
    }

    /// Window rollover: an input that used at least its *desired*
    /// allocation doubles it; everyone else halves. Growth therefore
    /// requires demonstrated utilization — which requires credits — which
    /// a camped-on pool never hands back: the paper's pathology.
    pub fn rollover(&mut self) {
        for (desired, used) in self.desired.iter_mut().zip(self.used.iter_mut()) {
            if *used >= *desired && *used > 0 {
                *desired = (desired.saturating_mul(2)).min(self.ceiling);
            } else {
                *desired = (*desired / 2).max(self.floor);
            }
            *used = 0;
        }
        self.grant();
    }

    /// Current allocation vector (for fairness probes).
    pub fn allocations(&self) -> &[u32] {
        &self.alloc
    }
}

#[cfg(test)]
mod tests {
    use fcc_sim::jain_fairness;

    use super::*;

    #[test]
    fn hot_input_grows_idle_input_stays_at_floor() {
        let mut s = RampUpState::new(2, 2, 64, 64);
        for _round in 0..8 {
            // Input 0 always saturates its allocation; input 1 is idle.
            while s.may_send(0) {
                s.on_send(0);
            }
            s.rollover();
        }
        assert!(s.allocations()[0] >= 60, "hot port took the pool");
        assert!(s.allocations()[1] <= 2, "idle port pinned at floor");
    }

    #[test]
    fn hot_port_leaves_little_room_for_late_contenders() {
        let mut s = RampUpState::new(4, 2, 1024, 32);
        // Input 0 hogs alone for 10 windows; its desired allocation grows
        // past the pool size.
        for _ in 0..10 {
            while s.may_send(0) {
                s.on_send(0);
            }
            s.rollover();
        }
        // Late contenders now demand service, but the pool is spoken for.
        for _ in 0..3 {
            for i in 0..4 {
                while s.may_send(i) {
                    s.on_send(i);
                }
            }
            s.rollover();
        }
        let allocs: Vec<f64> = s.allocations().iter().map(|&a| a as f64).collect();
        let fairness = jain_fairness(&allocs);
        assert!(
            fairness < 0.5,
            "ramp-up should be grossly unfair, Jain={fairness}, allocs {allocs:?}"
        );
        assert!(allocs[0] > allocs[1] * 4.0);
    }

    #[test]
    fn recovery_takes_log_windows() {
        let mut s = RampUpState::new(1, 2, 256, 1024);
        // Ramp to ceiling.
        for _ in 0..10 {
            while s.may_send(0) {
                s.on_send(0);
            }
            s.rollover();
        }
        assert_eq!(s.allocations()[0], 256);
        // Go idle: allocation decays geometrically, not instantly.
        s.rollover();
        assert_eq!(s.allocations()[0], 128);
        for _ in 0..10 {
            s.rollover();
        }
        assert_eq!(s.allocations()[0], 2);
    }

    #[test]
    fn may_send_respects_allocation() {
        let mut s = RampUpState::new(1, 3, 8, 16);
        assert!(s.may_send(0));
        s.on_send(0);
        s.on_send(0);
        s.on_send(0);
        assert!(!s.may_send(0));
    }

    #[test]
    fn grants_never_exceed_pool_by_more_than_min_guarantees() {
        let s = RampUpState::new(8, 4, 64, 16);
        let total: u32 = s.allocations().iter().sum();
        // Everyone gets at least 1; pool bounds the rest.
        assert!(total <= 16 + 8);
    }
}
