//! Egress credit allocation policies for the fabric switch.
//!
//! §3 D#3 of the paper identifies three unexploited problems in
//! credit-based flow control over routable PCIe. This module implements the
//! mechanism under critique and its alternatives, so the experiments can
//! reproduce the pathologies and show the FCC remedy:
//!
//! * **Credit allocation** — "the de facto scheme is an exponential
//!   ramp-up approach based on port bandwidth utilization. A consistently
//!   heavily-used port would take more credits, leaving little room for
//!   other contending ports." [`AllocPolicy::RampUp`] implements that
//!   scheme; [`AllocPolicy::Fair`] is the static-equal baseline, and
//!   [`AllocPolicy::Arbitrated`] defers to reservations installed by the
//!   central arbiter (design principle #4).
//! * The **scheduling** and **coordination** pathologies are exercised by
//!   the switch queue discipline and multi-switch topologies respectively
//!   (see `switch.rs` and experiment E3d/E3e).

use serde::{Deserialize, Serialize};

use fcc_sim::SimTime;

/// How an output port's scarce downstream credits are divided among
/// competing input ports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AllocPolicy {
    /// Round-robin, equal shares. No history.
    Fair,
    /// Exponential ramp-up on utilization (Kung et al. \[56\], the de facto
    /// scheme): an input that fully uses its allocation doubles it next
    /// window; an underusing input halves. Grants come from a shared
    /// credit pool, richest first — so a hot port's grown allocation
    /// leaves "little room for other contending ports" (§3 D#3).
    RampUp {
        /// Allocation adjustment window.
        window: SimTime,
        /// Initial and minimum desired per-input allocation (flits/window).
        floor: u32,
        /// Maximum per-input allocation (flits per window).
        ceiling: u32,
        /// Total flits grantable per window across all inputs.
        pool: u32,
    },
    /// Reservations installed by the central fabric arbiter; unreserved
    /// traffic shares the remainder round-robin.
    Arbitrated,
}

impl AllocPolicy {
    /// A ramp-up policy with the defaults used in the experiments: the
    /// pool matches roughly one window of device service capacity.
    pub fn default_ramp_up() -> Self {
        AllocPolicy::RampUp {
            window: SimTime::from_us(1.0),
            floor: 2,
            ceiling: 4096,
            pool: 32,
        }
    }
}

/// Per-output ramp-up allocator state.
#[derive(Debug, Clone)]
pub struct RampUpState {
    floor: u32,
    ceiling: u32,
    pool: u32,
    /// Desired allocation per input (exponential ramp target).
    desired: Vec<u32>,
    /// Current granted allocation per input port (flits per window).
    alloc: Vec<u32>,
    /// Flits forwarded per input port in the current window.
    used: Vec<u32>,
}

impl RampUpState {
    /// Creates state for `inputs` input ports sharing `pool` flits/window.
    pub fn new(inputs: usize, floor: u32, ceiling: u32, pool: u32) -> Self {
        let floor = floor.max(1);
        let mut s = RampUpState {
            floor,
            ceiling: ceiling.max(floor),
            pool: pool.max(1),
            desired: vec![floor; inputs],
            alloc: vec![0; inputs],
            used: vec![0; inputs],
        };
        s.grant();
        s
    }

    /// Distributes the pool: richest desired allocation first (the de
    /// facto scheme's bias), everyone else takes what remains (min 1).
    fn grant(&mut self) {
        let mut order: Vec<usize> = (0..self.desired.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.desired[i]));
        let mut remaining = self.pool;
        for i in order {
            let granted = self.desired[i].min(remaining);
            let granted = granted.max(1);
            self.alloc[i] = granted;
            remaining = remaining.saturating_sub(granted);
        }
    }

    /// Whether input `i` may forward another flit this window.
    pub fn may_send(&self, i: usize) -> bool {
        self.used[i] < self.alloc[i]
    }

    /// Records a forwarded flit from input `i`.
    pub fn on_send(&mut self, i: usize) {
        debug_assert!(
            self.used[i] < self.alloc[i],
            "input {i} sent past its allocation ({} >= {})",
            self.used[i],
            self.alloc[i]
        );
        self.used[i] += 1;
    }

    /// Window rollover: an input that used at least its *desired*
    /// allocation doubles it; everyone else halves. Growth therefore
    /// requires demonstrated utilization — which requires credits — which
    /// a camped-on pool never hands back: the paper's pathology.
    pub fn rollover(&mut self) {
        for (desired, used) in self.desired.iter_mut().zip(self.used.iter_mut()) {
            if *used >= *desired && *used > 0 {
                *desired = (desired.saturating_mul(2)).min(self.ceiling);
            } else {
                *desired = (*desired / 2).max(self.floor);
            }
            *used = 0;
        }
        self.grant();
    }

    /// Current allocation vector (for fairness probes).
    pub fn allocations(&self) -> &[u32] {
        &self.alloc
    }

    /// Releases input `i`'s ramp history on detach: its desired
    /// allocation drops to the floor and the pool is re-granted, so a
    /// departed port's grown share returns to the contenders instead of
    /// decaying over log(ceiling) windows.
    pub fn release_input(&mut self, i: usize) {
        if i >= self.desired.len() {
            return;
        }
        self.desired[i] = self.floor;
        self.used[i] = 0;
        self.grant();
    }

    /// Checks the allocator's own conservation invariants, returning a
    /// description of the first violated one:
    ///
    /// * `floor <= desired <= ceiling` for every input (the ramp target
    ///   never escapes its configured band);
    /// * `alloc <= max(desired, 1)` (grants never exceed the ramp target,
    ///   beyond the min-1 guarantee);
    /// * `used <= alloc` (no input sends past its allocation);
    /// * `sum(alloc) <= pool + inputs` (the pool bounds total grants,
    ///   modulo the one-flit minimum guarantee per input).
    pub fn audit(&self) -> Result<(), String> {
        for (i, &desired) in self.desired.iter().enumerate() {
            if desired < self.floor || desired > self.ceiling {
                return Err(format!(
                    "input {i}: desired {desired} outside [{}, {}]",
                    self.floor, self.ceiling
                ));
            }
            if self.alloc[i] > desired.max(1) {
                return Err(format!(
                    "input {i}: alloc {} exceeds desired {desired}",
                    self.alloc[i]
                ));
            }
            if self.used[i] > self.alloc[i] {
                return Err(format!(
                    "input {i}: used {} exceeds alloc {}",
                    self.used[i], self.alloc[i]
                ));
            }
        }
        let total: u64 = self.alloc.iter().map(|&a| u64::from(a)).sum();
        let bound = u64::from(self.pool) + self.alloc.len() as u64;
        if total > bound {
            return Err(format!(
                "total allocation {total} exceeds pool {} + {} min guarantees",
                self.pool,
                self.alloc.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use fcc_sim::jain_fairness;

    use super::*;

    #[test]
    fn hot_input_grows_idle_input_stays_at_floor() {
        let mut s = RampUpState::new(2, 2, 64, 64);
        for _round in 0..8 {
            // Input 0 always saturates its allocation; input 1 is idle.
            while s.may_send(0) {
                s.on_send(0);
            }
            s.rollover();
        }
        assert!(s.allocations()[0] >= 60, "hot port took the pool");
        assert!(s.allocations()[1] <= 2, "idle port pinned at floor");
    }

    #[test]
    fn hot_port_leaves_little_room_for_late_contenders() {
        let mut s = RampUpState::new(4, 2, 1024, 32);
        // Input 0 hogs alone for 10 windows; its desired allocation grows
        // past the pool size.
        for _ in 0..10 {
            while s.may_send(0) {
                s.on_send(0);
            }
            s.rollover();
        }
        // Late contenders now demand service, but the pool is spoken for.
        for _ in 0..3 {
            for i in 0..4 {
                while s.may_send(i) {
                    s.on_send(i);
                }
            }
            s.rollover();
        }
        let allocs: Vec<f64> = s.allocations().iter().map(|&a| a as f64).collect();
        let fairness = jain_fairness(&allocs);
        assert!(
            fairness < 0.5,
            "ramp-up should be grossly unfair, Jain={fairness}, allocs {allocs:?}"
        );
        assert!(allocs[0] > allocs[1] * 4.0);
    }

    #[test]
    fn recovery_takes_log_windows() {
        let mut s = RampUpState::new(1, 2, 256, 1024);
        // Ramp to ceiling.
        for _ in 0..10 {
            while s.may_send(0) {
                s.on_send(0);
            }
            s.rollover();
        }
        assert_eq!(s.allocations()[0], 256);
        // Go idle: allocation decays geometrically, not instantly.
        s.rollover();
        assert_eq!(s.allocations()[0], 128);
        for _ in 0..10 {
            s.rollover();
        }
        assert_eq!(s.allocations()[0], 2);
    }

    #[test]
    fn release_returns_hot_share_to_the_pool() {
        let mut s = RampUpState::new(2, 2, 64, 64);
        for _ in 0..8 {
            while s.may_send(0) {
                s.on_send(0);
            }
            s.rollover();
        }
        assert!(s.allocations()[0] >= 60);
        // Input 0 detaches; its share returns immediately, and the audit
        // invariants survive the re-grant.
        s.release_input(0);
        assert!(s.audit().is_ok(), "{:?}", s.audit());
        assert!(s.allocations()[0] <= 2, "released input back at floor");
    }

    #[test]
    fn may_send_respects_allocation() {
        let mut s = RampUpState::new(1, 3, 8, 16);
        assert!(s.may_send(0));
        s.on_send(0);
        s.on_send(0);
        s.on_send(0);
        assert!(!s.may_send(0));
    }

    #[test]
    fn grants_never_exceed_pool_by_more_than_min_guarantees() {
        let s = RampUpState::new(8, 4, 64, 16);
        let total: u32 = s.allocations().iter().sum();
        // Everyone gets at least 1; pool bounds the rest.
        assert!(total <= 16 + 8);
    }

    #[test]
    fn audit_catches_oversend() {
        let mut s = RampUpState::new(2, 2, 8, 8);
        assert!(s.audit().is_ok());
        // Bypass may_send: force used past alloc and check the auditor
        // notices. (debug_assert in on_send fires first in debug builds,
        // so poke the field directly.)
        s.used[0] = s.alloc[0] + 1;
        assert!(s.audit().expect_err("oversend").contains("used"));
    }

    mod properties {
        use proptest::prelude::*;

        use super::*;

        proptest! {
            /// The allocator's conservation invariants survive arbitrary
            /// demand patterns: desired stays in `[floor, ceiling]`, used
            /// stays within alloc, and total grants stay within the pool
            /// plus the per-input minimum guarantee.
            #[test]
            fn invariants_hold_under_arbitrary_demand(
                inputs in 1usize..6,
                pool in 1u32..128,
                floor in 1u32..8,
                ceiling in 8u32..256,
                demand in prop::collection::vec(
                    prop::collection::vec(0u32..64, 6), 1..12),
            ) {
                let mut s = RampUpState::new(inputs, floor, ceiling, pool);
                prop_assert!(s.audit().is_ok(), "{:?}", s.audit());
                for window in &demand {
                    for (i, &want) in window.iter().enumerate().take(inputs) {
                        let mut sent = 0;
                        while sent < want && s.may_send(i) {
                            s.on_send(i);
                            sent += 1;
                        }
                    }
                    prop_assert!(s.audit().is_ok(), "{:?}", s.audit());
                    s.rollover();
                    prop_assert!(s.audit().is_ok(), "{:?}", s.audit());
                    let total: u64 =
                        s.allocations().iter().map(|&a| u64::from(a)).sum();
                    prop_assert!(total <= u64::from(pool) + inputs as u64);
                }
            }

            /// Under constant saturating demand from a single input the
            /// halve/double ramp converges to a band around
            /// `min(ceiling, pool)`: the allocation never exceeds it and
            /// never falls below half of it once warmed up.
            #[test]
            fn saturating_demand_converges_to_the_pool_band(
                pool in 1u32..128,
                floor in 1u32..8,
                ceiling in 8u32..256,
            ) {
                let mut s = RampUpState::new(1, floor, ceiling, pool);
                let target = ceiling.min(pool);
                for _ in 0..32 {
                    while s.may_send(0) {
                        s.on_send(0);
                    }
                    s.rollover();
                }
                // Warmed up: every subsequent window stays in the band.
                for _ in 0..8 {
                    let alloc = s.allocations()[0];
                    prop_assert!(alloc <= target,
                        "alloc {alloc} above target {target}");
                    prop_assert!(alloc * 2 >= target,
                        "alloc {alloc} below half of target {target}");
                    while s.may_send(0) {
                        s.on_send(0);
                    }
                    s.rollover();
                }
            }

            /// An input that goes idle decays geometrically back to the
            /// floor — the ramp never camps on an allocation forever.
            #[test]
            fn idle_input_decays_to_the_floor(
                pool in 8u32..128,
                floor in 1u32..8,
            ) {
                let mut s = RampUpState::new(1, floor, 1024, pool);
                for _ in 0..10 {
                    while s.may_send(0) {
                        s.on_send(0);
                    }
                    s.rollover();
                }
                // ceiling=1024 needs at most log2(1024)=10 halvings.
                for _ in 0..11 {
                    s.rollover();
                }
                prop_assert_eq!(s.allocations()[0], floor.min(pool).max(1));
            }
        }
    }
}
