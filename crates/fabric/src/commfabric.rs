//! The communication-fabric baseline: an RDMA-style NIC.
//!
//! The paper contrasts the memory fabric against communication fabrics that
//! interact "with the CPU asynchronously in a submission-completion
//! fashion" (§3 D#1): the processor builds a descriptor, rings a doorbell,
//! a device-side DMA engine moves the data, and an interrupt/completion
//! entry reports it. [`RdmaNic`] models that pipeline analytically over the
//! same wire parameters as the memory fabric, so experiments isolate the
//! paradigm difference rather than raw link speed.

use fcc_sim::{Component, ComponentId, Counter, Ctx, Histogram, Msg, SimTime};

/// Timing parameters of the RDMA-style path.
#[derive(Debug, Clone, Copy)]
pub struct RdmaConfig {
    /// Software submission: descriptor build + doorbell MMIO.
    pub submit_overhead: SimTime,
    /// NIC work-queue fetch and processing, per op and per direction.
    pub nic_processing: SimTime,
    /// Wire bandwidth in Gbit/s (compare with the memory fabric's link).
    pub wire_gbps: f64,
    /// One-way propagation delay.
    pub propagation: SimTime,
    /// Remote-side memory access to source/sink the payload.
    pub remote_memory: SimTime,
    /// Completion-queue write plus host poll/interrupt cost.
    pub completion_overhead: SimTime,
}

impl RdmaConfig {
    /// A kernel-bypass RDMA profile on a 512 Gbit/s wire (matching the
    /// Omega-like memory-fabric link for apples-to-apples comparisons).
    pub fn kernel_bypass() -> Self {
        RdmaConfig {
            submit_overhead: SimTime::from_ns(250.0),
            nic_processing: SimTime::from_ns(150.0),
            wire_gbps: 512.0,
            propagation: SimTime::from_ns(25.0),
            remote_memory: SimTime::from_ns(100.0),
            completion_overhead: SimTime::from_ns(150.0),
        }
    }

    /// A kernel TCP-like profile: microseconds of stack on both sides.
    pub fn kernel_tcp() -> Self {
        RdmaConfig {
            submit_overhead: SimTime::from_us(2.0),
            nic_processing: SimTime::from_ns(500.0),
            wire_gbps: 100.0,
            propagation: SimTime::from_us(1.0),
            remote_memory: SimTime::from_ns(100.0),
            completion_overhead: SimTime::from_us(2.0),
        }
    }
}

/// A one-sided RDMA operation submitted to the NIC.
#[derive(Debug, Clone, Copy)]
pub struct RdmaOp {
    /// `true` for RDMA write, `false` for RDMA read.
    pub write: bool,
    /// Payload size.
    pub bytes: u32,
    /// Caller tag echoed in the completion.
    pub tag: u64,
    /// Component to notify.
    pub reply_to: ComponentId,
}

/// Completion of an [`RdmaOp`].
#[derive(Debug, Clone, Copy)]
pub struct RdmaCompletion {
    /// The op's tag.
    pub tag: u64,
    /// Submission time.
    pub issued_at: SimTime,
    /// Completion-visible time.
    pub completed_at: SimTime,
}

impl RdmaCompletion {
    /// End-to-end latency.
    pub fn latency(&self) -> SimTime {
        self.completed_at - self.issued_at
    }
}

const HEADER_BYTES: u64 = 64;

/// An RDMA-style NIC pair (both ends modeled in one component; the wire
/// watermarks capture serialization contention in each direction).
pub struct RdmaNic {
    cfg: RdmaConfig,
    tx_free_at: SimTime,
    rx_free_at: SimTime,
    /// Ops completed.
    pub completions: Counter,
    /// Latency distribution (ps).
    pub latency: Histogram,
    /// Total payload bytes moved.
    pub bytes_moved: Counter,
}

impl RdmaNic {
    /// Creates a NIC with the given profile.
    pub fn new(cfg: RdmaConfig) -> Self {
        RdmaNic {
            cfg,
            tx_free_at: SimTime::ZERO,
            rx_free_at: SimTime::ZERO,
            completions: Counter::new(),
            latency: Histogram::new(),
            bytes_moved: Counter::new(),
        }
    }

    fn wire_time(&self, bytes: u64) -> SimTime {
        fcc_sim::serialization_time(bytes, self.cfg.wire_gbps)
    }

    /// Computes the completion time of an op submitted at `now`.
    fn schedule_op(&mut self, now: SimTime, op: &RdmaOp) -> SimTime {
        let cfg = self.cfg;
        let submitted = now + cfg.submit_overhead + cfg.nic_processing;
        // Outbound: header, plus payload if a write.
        let out_bytes = HEADER_BYTES + if op.write { op.bytes as u64 } else { 0 };
        let tx_start = self.tx_free_at.max(submitted);
        let tx_end = tx_start + self.wire_time(out_bytes);
        self.tx_free_at = tx_end;
        let at_remote = tx_end + cfg.propagation + cfg.nic_processing + cfg.remote_memory;
        // Inbound: ack, plus payload if a read.
        let back_bytes = HEADER_BYTES + if op.write { 0 } else { op.bytes as u64 };
        let rx_start = self.rx_free_at.max(at_remote);
        let rx_end = rx_start + self.wire_time(back_bytes);
        self.rx_free_at = rx_end;
        rx_end + cfg.propagation + cfg.completion_overhead
    }
}

impl Component for RdmaNic {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let op = msg
            .downcast::<RdmaOp>()
            .unwrap_or_else(|m| panic!("rdma nic: unexpected message {}", m.type_name()));
        let now = ctx.now();
        let done = self.schedule_op(now, &op);
        self.bytes_moved.add(op.bytes as u64);
        self.completions.inc();
        self.latency.record_time(done - now);
        ctx.send(
            op.reply_to,
            done - now,
            RdmaCompletion {
                tag: op.tag,
                issued_at: now,
                completed_at: done,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use fcc_sim::Engine;

    use super::*;

    struct Sink {
        done: Vec<RdmaCompletion>,
    }

    impl Component for Sink {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            self.done
                .push(msg.downcast::<RdmaCompletion>().expect("cqe"));
        }
    }

    /// Each op is `(write, bytes, tag)`.
    fn run_ops(ops: Vec<(bool, u32, u64)>, cfg: RdmaConfig) -> Vec<RdmaCompletion> {
        let mut engine = Engine::new(0);
        let sink = engine.add_component("sink", Sink { done: vec![] });
        let nic = engine.add_component("nic", RdmaNic::new(cfg));
        for (write, bytes, tag) in ops {
            engine.post(
                nic,
                SimTime::ZERO,
                RdmaOp {
                    write,
                    bytes,
                    tag,
                    reply_to: sink,
                },
            );
        }
        engine.run_until_idle();
        engine.component::<Sink>(sink).done.clone()
    }

    fn op(write: bool, bytes: u32, tag: u64) -> (bool, u32, u64) {
        (write, bytes, tag)
    }

    #[test]
    fn small_read_latency_exceeds_memory_fabric() {
        let done = run_ops(vec![op(false, 64, 1)], RdmaConfig::kernel_bypass());
        // ~250+150+1+25+150+100+2+25+150 ≈ 850ns: far above the ~150ns the
        // directly-attached memory fabric achieves for the same wire.
        let lat = done[0].latency();
        assert!(lat > SimTime::from_ns(700.0), "{lat}");
        assert!(lat < SimTime::from_ns(1200.0), "{lat}");
    }

    #[test]
    fn async_ops_pipeline_on_the_wire() {
        let n = 64;
        let ops: Vec<_> = (0..n).map(|i| op(false, 4096, i)).collect();
        let done = run_ops(ops, RdmaConfig::kernel_bypass());
        assert_eq!(done.len(), n as usize);
        let last = done.iter().map(|c| c.completed_at).max().expect("some");
        // Wire-bound: 64 * 4KiB at 512Gbps ≈ 4.1us; overheads are per-op
        // constants that overlap. The total must be near wire time, not
        // n * per-op-latency.
        let per_op = done[0].latency();
        assert!(last < per_op * 8, "pipelining failed: last={last}");
    }

    #[test]
    fn write_ships_payload_outbound() {
        let r = run_ops(vec![op(false, 65536, 1)], RdmaConfig::kernel_bypass());
        let w = run_ops(vec![op(true, 65536, 1)], RdmaConfig::kernel_bypass());
        // Same payload either direction: symmetric wire → similar latency.
        let diff = (r[0].latency().as_ns() - w[0].latency().as_ns()).abs();
        assert!(diff < 50.0, "read/write asymmetric by {diff}ns");
    }

    #[test]
    fn kernel_tcp_is_much_slower() {
        let fast = run_ops(vec![op(false, 64, 1)], RdmaConfig::kernel_bypass());
        let slow = run_ops(vec![op(false, 64, 1)], RdmaConfig::kernel_tcp());
        assert!(slow[0].latency() > fast[0].latency() * 5);
    }
}
