//! A stride prefetcher.
//!
//! The paper notes that "CPU-assisted prefetching would transparently
//! accelerate memory fabric performance" (§3 D#1) and that FCC should
//! enhance synchronous accesses "with SW/HW-assisted caching and
//! prefetching optimizations" (§4 DP#1). This detector tracks a small
//! table of recent access streams, confirms a stride after two repeats,
//! and then emits the next `degree` line addresses.

/// One tracked stream.
#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    last_addr: u64,
    stride: i64,
    confidence: u8,
    last_used: u64,
}

/// A multi-stream stride prefetcher.
#[derive(Debug)]
pub struct StridePrefetcher {
    table: Vec<Option<StreamEntry>>,
    degree: usize,
    line_bytes: u64,
    clock: u64,
    /// Prefetches issued.
    pub issued: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher with `streams` table entries emitting `degree`
    /// prefetches per confirmed access.
    ///
    /// # Panics
    ///
    /// Panics if `streams` or `line_bytes` is zero.
    pub fn new(streams: usize, degree: usize, line_bytes: u64) -> Self {
        assert!(streams > 0 && line_bytes > 0, "degenerate prefetcher");
        StridePrefetcher {
            table: vec![None; streams],
            degree,
            line_bytes,
            clock: 0,
            issued: 0,
        }
    }

    /// Observes a demand access and returns addresses to prefetch.
    pub fn observe(&mut self, addr: u64) -> Vec<u64> {
        self.clock += 1;
        let line = self.line_bytes as i64;
        // Find the stream this access continues: entry whose projected next
        // address (or whose neighborhood) matches.
        let mut best: Option<usize> = None;
        for (i, slot) in self.table.iter().enumerate() {
            if let Some(e) = slot {
                let delta = addr as i64 - e.last_addr as i64;
                if delta != 0 && delta.abs() <= 8 * line {
                    best = Some(i);
                    break;
                }
            }
        }
        match best {
            Some(i) => {
                // `best` only ever indexes slots seen occupied in the scan above.
                #[allow(clippy::expect_used)]
                let e = self.table[i].as_mut().expect("present");
                let delta = addr as i64 - e.last_addr as i64;
                if delta == e.stride {
                    e.confidence = e.confidence.saturating_add(1);
                } else {
                    e.stride = delta;
                    e.confidence = 1;
                }
                e.last_addr = addr;
                e.last_used = self.clock;
                if e.confidence >= 2 {
                    let stride = e.stride;
                    let out: Vec<u64> = (1..=self.degree as i64)
                        .filter_map(|k| addr.checked_add_signed(stride * k))
                        .collect();
                    self.issued += out.len() as u64;
                    return out;
                }
                Vec::new()
            }
            None => {
                // Allocate: reuse the least-recently-used slot.
                // The table is sized at construction and never shrinks.
                #[allow(clippy::expect_used)]
                let slot = self
                    .table
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.map(|e| e.last_used).unwrap_or(0))
                    .map(|(i, _)| i)
                    .expect("non-empty table");
                self.table[slot] = Some(StreamEntry {
                    last_addr: addr,
                    stride: 0,
                    confidence: 0,
                    last_used: self.clock,
                });
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_confirms_after_two_strides() {
        let mut p = StridePrefetcher::new(4, 2, 64);
        assert!(p.observe(0).is_empty(), "first touch");
        assert!(p.observe(64).is_empty(), "stride candidate");
        let out = p.observe(128);
        assert_eq!(out, vec![192, 256], "confirmed, degree 2");
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = StridePrefetcher::new(4, 1, 64);
        p.observe(1024);
        p.observe(960);
        let out = p.observe(896);
        assert_eq!(out, vec![832]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(4, 2, 64);
        p.observe(0);
        p.observe(64);
        p.observe(128); // confirmed
        assert!(p.observe(256).is_empty(), "stride changed to 128");
        let out = p.observe(384);
        assert_eq!(out, vec![512, 640], "new stride confirmed");
    }

    #[test]
    fn random_accesses_never_confirm() {
        let mut p = StridePrefetcher::new(4, 2, 64);
        let mut issued = 0;
        // Far-apart addresses never fall in any stream's neighborhood.
        for i in 0..50u64 {
            issued += p.observe(i * 1_000_003).len();
        }
        assert_eq!(issued, 0);
    }

    #[test]
    fn interleaved_streams_tracked_separately() {
        let mut p = StridePrefetcher::new(4, 1, 64);
        // Stream A at 0x0000..., stream B at 0x100000... interleaved.
        let a: Vec<u64> = (0..4).map(|i| i * 64).collect();
        let b: Vec<u64> = (0..4).map(|i| 0x10_0000 + i * 64).collect();
        let mut prefetches = 0;
        for i in 0..4 {
            prefetches += p.observe(a[i]).len();
            prefetches += p.observe(b[i]).len();
        }
        assert!(prefetches >= 4, "both streams confirmed, got {prefetches}");
    }
}
