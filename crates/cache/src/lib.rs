#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Host memory hierarchy: caches, prefetching, and the pipeline model.
//!
//! §3 Difference #1 of the paper: "the memory fabric is inherently
//! integrated into the memory hierarchy and execution pipeline of the host
//! processor [...] (1) the host-side caching structure and CPU-assisted
//! prefetching would transparently accelerate memory fabric performance;
//! (2) the throughput of a memory fabric that a core can drive depends on
//! its channel bandwidth capacity and the depth of the CPU pipeline."
//!
//! * [`sa_cache`] — a set-associative, write-back cache with LRU
//!   replacement (pure structure).
//! * [`prefetch`] — a stride prefetcher.
//! * [`hierarchy`] — L1/L2 walk with per-level latency and occupancy,
//!   calibrated against Table 2 of the paper.
//! * [`core`] — the `CpuCore` engine component: drives dependent
//!   (latency-bound) or independent (window-bound) access streams through
//!   the hierarchy, going to the fabric via an FHA on remote misses.

pub mod coherent;
pub mod core;
pub mod hierarchy;
pub mod prefetch;
pub mod protocol;
pub mod sa_cache;

pub use crate::core::{AccessPattern, CoreReport, CpuCore, RunDone, StartRun};
pub use coherent::{CoherentAccess, CoherentDone, CoherentL1};
pub use hierarchy::{HierarchyConfig, LevelConfig, LocalMemConfig, MemoryHierarchy, ServiceLevel};
pub use prefetch::StridePrefetcher;
pub use sa_cache::{AccessOutcome, SetAssocCache};
