//! A host-side coherent cache over a fabric-attached CC-NUMA node.
//!
//! [`CoherentL1`] keeps MESI-style line states for a region of
//! CC-NUMA-backed memory, issuing CXL.cache requests (`RdShared`, `RdOwn`,
//! evictions) through the host's FHA and answering the directory's snoops
//! (`SnpData`, `SnpInv`) — the host half of the protocol whose device half
//! is [`fcc_memnode::ccnuma::DirectoryNode`].

use std::collections::BTreeMap;

use fcc_fabric::adapter::{HostCompletion, HostOp, HostRequest, SnoopMsg, SnoopReply};
use fcc_proto::channel::TransactionKind;
use fcc_sim::{Component, ComponentId, Counter, Ctx, Msg, PendingWork, SimTime};

use crate::protocol::{self, HostLineState as LineState};

const LINE: u64 = 64;

/// An access submitted to the coherent cache.
#[derive(Debug, Clone, Copy)]
pub struct CoherentAccess {
    /// Target address (within the CC-NUMA region).
    pub addr: u64,
    /// Whether this is a store.
    pub write: bool,
    /// Caller tag echoed in [`CoherentDone`].
    pub tag: u64,
    /// Completion receiver.
    pub reply_to: ComponentId,
}

/// Completion of a [`CoherentAccess`].
#[derive(Debug, Clone, Copy)]
pub struct CoherentDone {
    /// The access's tag.
    pub tag: u64,
    /// Observed latency (local hit time or the full coherence round trip).
    pub latency: SimTime,
    /// Whether the access hit locally.
    pub hit: bool,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    addr: u64,
    write: bool,
    tag: u64,
    reply_to: ComponentId,
    issued_at: SimTime,
}

/// The coherent cache component.
pub struct CoherentL1 {
    fha: ComponentId,
    capacity_lines: usize,
    hit_latency: SimTime,
    lines: BTreeMap<u64, LineState>,
    /// LRU order (front = coldest).
    lru: Vec<u64>,
    outstanding: BTreeMap<u64, Pending>,
    next_tag: u64,
    /// Local hits.
    pub hits: Counter,
    /// Misses (fetches over the fabric).
    pub misses: Counter,
    /// Invalidation snoops honored.
    pub invalidations: Counter,
    /// Downgrade snoops honored.
    pub downgrades: Counter,
    /// Dirty writebacks (evictions of Modified lines).
    pub writebacks: Counter,
}

impl CoherentL1 {
    /// Creates a coherent cache of `capacity_lines` lines with the given
    /// local hit latency, issuing through `fha`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero.
    pub fn new(fha: ComponentId, capacity_lines: usize, hit_latency: SimTime) -> Self {
        assert!(capacity_lines > 0, "empty cache");
        CoherentL1 {
            fha,
            capacity_lines,
            hit_latency,
            lines: BTreeMap::new(),
            lru: Vec::new(),
            outstanding: BTreeMap::new(),
            next_tag: 0,
            hits: Counter::new(),
            misses: Counter::new(),
            invalidations: Counter::new(),
            downgrades: Counter::new(),
            writebacks: Counter::new(),
        }
    }

    /// Whether `addr`'s line is held (any state).
    pub fn holds(&self, addr: u64) -> bool {
        self.lines.contains_key(&(addr & !(LINE - 1)))
    }

    fn touch(&mut self, line: u64) {
        self.lru.retain(|&l| l != line);
        self.lru.push(line);
    }

    fn evict_if_full(&mut self, ctx: &mut Ctx<'_>) {
        while self.lines.len() >= self.capacity_lines {
            let victim = self.lru.remove(0);
            // The LRU list mirrors `lines` exactly.
            #[allow(clippy::expect_used)]
            let state = self.lines.remove(&victim).expect("lru tracks lines");
            if state == LineState::Modified {
                self.writebacks.inc();
            }
            let (op, bytes) = protocol::evict_op(state);
            let tag = self.next_tag;
            self.next_tag += 1;
            // Evictions complete with Go; we drop the completion (tracked
            // only so the FHA can match it).
            self.outstanding.insert(
                tag,
                Pending {
                    addr: victim,
                    write: false,
                    tag: u64::MAX,
                    reply_to: ctx.self_id(),
                    issued_at: ctx.now(),
                },
            );
            ctx.send(
                self.fha,
                SimTime::ZERO,
                HostRequest {
                    op: HostOp::Cache {
                        op,
                        addr: victim,
                        bytes,
                    },
                    tag,
                    reply_to: ctx.self_id(),
                },
            );
        }
    }

    fn on_access(&mut self, ctx: &mut Ctx<'_>, access: CoherentAccess) {
        let line = access.addr & !(LINE - 1);
        let state = self.lines.get(&line).copied();
        if protocol::access_hits(state, access.write) {
            self.hits.inc();
            if access.write {
                self.lines.insert(line, LineState::Modified);
            }
            self.touch(line);
            ctx.send(
                access.reply_to,
                self.hit_latency,
                CoherentDone {
                    tag: access.tag,
                    latency: self.hit_latency,
                    hit: true,
                },
            );
            return;
        }
        self.misses.inc();
        // Miss or upgrade: fetch over the fabric.
        self.evict_if_full(ctx);
        let op = protocol::miss_request(access.write);
        let tag = self.next_tag;
        self.next_tag += 1;
        self.outstanding.insert(
            tag,
            Pending {
                addr: access.addr,
                write: access.write,
                tag: access.tag,
                reply_to: access.reply_to,
                issued_at: ctx.now(),
            },
        );
        ctx.send(
            self.fha,
            SimTime::ZERO,
            HostRequest {
                op: HostOp::Cache {
                    op,
                    addr: access.addr,
                    bytes: 64,
                },
                tag,
                reply_to: ctx.self_id(),
            },
        );
    }

    fn on_completion(&mut self, ctx: &mut Ctx<'_>, hc: HostCompletion) {
        // The FHA only ever echoes tags this cache issued, so an unknown tag
        // is a wiring bug worth stopping on.
        #[allow(clippy::expect_used)]
        let pending = self
            .outstanding
            .remove(&hc.tag)
            .expect("completion for unknown request");
        if pending.tag == u64::MAX {
            // Eviction acknowledged; nothing to deliver.
            return;
        }
        let line = pending.addr & !(LINE - 1);
        self.lines.insert(line, protocol::fill_state(pending.write));
        self.touch(line);
        let latency = ctx.now() - pending.issued_at;
        ctx.send(
            pending.reply_to,
            SimTime::ZERO,
            CoherentDone {
                tag: pending.tag,
                latency,
                hit: false,
            },
        );
    }

    fn on_snoop(&mut self, ctx: &mut Ctx<'_>, snoop: SnoopMsg) {
        let txn = snoop.txn;
        let TransactionKind::Cache(op) = txn.kind else {
            return;
        };
        let line = txn.addr & !(LINE - 1);
        let state = self.lines.get(&line).copied();
        let Some((next, rsp, bytes)) = protocol::snoop_transition(state, op) else {
            return;
        };
        match (state, next) {
            (Some(_), None) => {
                self.lines.remove(&line);
                self.lru.retain(|&l| l != line);
                self.invalidations.inc();
            }
            (Some(LineState::Modified), Some(LineState::Shared)) => {
                self.lines.insert(line, LineState::Shared);
                self.downgrades.inc();
            }
            _ => {}
        }
        let reply = txn.response(TransactionKind::Cache(rsp), bytes);
        ctx.send(self.fha, self.hit_latency, SnoopReply { txn: reply });
    }
}

impl Component for CoherentL1 {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<CoherentAccess>() {
            Ok(a) => {
                self.on_access(ctx, a);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<HostCompletion>() {
            Ok(hc) => {
                self.on_completion(ctx, hc);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<SnoopMsg>() {
            Ok(s) => self.on_snoop(ctx, s),
            Err(m) => panic!("coherent l1: unexpected message {}", m.type_name()),
        }
    }

    fn outstanding(&self, out: &mut Vec<PendingWork>) {
        let mut tags: Vec<u64> = self.outstanding.keys().copied().collect();
        tags.sort_unstable();
        out.extend(tags.iter().map(|tag| {
            let p = &self.outstanding[tag];
            let kind = if p.tag == u64::MAX {
                "eviction"
            } else {
                "miss"
            };
            PendingWork {
                what: format!("{kind} for {:#x} awaiting completion", p.addr),
                waiting_on: Some(self.fha),
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use fcc_fabric::adapter::Fha;
    use fcc_fabric::switch::{FabricSwitch, SwitchConfig};
    use fcc_memnode::ccnuma::DirectoryNode;
    use fcc_memnode::directory::LineState as DirState;
    use fcc_memnode::dram::DramTiming;
    use fcc_proto::addr::{AddrMap, AddrRange, NodeId};
    use fcc_proto::link::CreditConfig;
    use fcc_proto::phys::PhysConfig;
    use fcc_sim::Engine;

    use super::*;

    struct Sink {
        done: Vec<CoherentDone>,
    }

    impl Component for Sink {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            self.done
                .push(msg.downcast::<CoherentDone>().expect("done"));
        }
    }

    struct Setup {
        engine: Engine,
        caches: Vec<ComponentId>,
        sink: ComponentId,
        dir: ComponentId,
    }

    /// Two hosts with coherent caches sharing one CC-NUMA node.
    fn setup() -> Setup {
        let mut engine = Engine::new(77);
        let phys = PhysConfig::omega_like();
        let credit = CreditConfig::default();
        let dir_nid = NodeId(10);
        let mut map = AddrMap::new();
        map.add_direct(AddrRange::new(0, 1 << 24), dir_nid);
        let sw = engine.add_component("fs", FabricSwitch::new(SwitchConfig::fabrex_like()));
        let mut caches = Vec::new();
        for h in 0..2u16 {
            let nid = NodeId(1 + h);
            let fha = engine.add_component(
                format!("fha{h}"),
                Fha::new(nid, phys, credit, map.clone(), 8),
            );
            let cache = engine.add_component(
                format!("l1-{h}"),
                CoherentL1::new(fha, 64, SimTime::from_ns(5.0)),
            );
            engine.component_mut::<Fha>(fha).set_snoop_handler(cache);
            {
                let s = engine.component_mut::<FabricSwitch>(sw);
                let p = s.add_port();
                s.connect(p, fha);
                s.routing.add_pbr(nid, p);
            }
            engine.component_mut::<Fha>(fha).connect(sw);
            caches.push(cache);
        }
        let dir = engine.add_component(
            "ccnuma",
            DirectoryNode::new(dir_nid, phys, credit, DramTiming::default(), 1 << 24),
        );
        {
            let s = engine.component_mut::<FabricSwitch>(sw);
            let p = s.add_port();
            s.connect(p, dir);
            s.routing.add_pbr(dir_nid, p);
        }
        engine.component_mut::<DirectoryNode>(dir).connect(sw);
        let sink = engine.add_component("sink", Sink { done: vec![] });
        Setup {
            engine,
            caches,
            sink,
            dir,
        }
    }

    fn access(s: &mut Setup, cache: usize, addr: u64, write: bool, tag: u64) {
        let at = s.engine.now();
        let sink = s.sink;
        s.engine.post(
            s.caches[cache],
            at,
            CoherentAccess {
                addr,
                write,
                tag,
                reply_to: sink,
            },
        );
        s.engine.run_until_idle();
    }

    #[test]
    fn read_miss_then_hit() {
        let mut s = setup();
        access(&mut s, 0, 0x1000, false, 1);
        access(&mut s, 0, 0x1000, false, 2);
        let done = &s.engine.component::<Sink>(s.sink).done;
        assert!(!done[0].hit);
        assert!(done[1].hit);
        assert!(done[0].latency > done[1].latency * 10);
        let c = s.engine.component::<CoherentL1>(s.caches[0]);
        assert_eq!(c.hits.get(), 1);
        assert_eq!(c.misses.get(), 1);
    }

    #[test]
    fn write_sharing_ping_pong_invalidates() {
        let mut s = setup();
        // Host 0 writes, then host 1 writes the same line: host 0 must be
        // snooped and lose its copy.
        access(&mut s, 0, 0x2000, true, 1);
        access(&mut s, 1, 0x2000, true, 2);
        {
            let c0 = s.engine.component::<CoherentL1>(s.caches[0]);
            assert!(!c0.holds(0x2000), "invalidated by the directory");
            assert_eq!(c0.invalidations.get(), 1);
        }
        let dn = s.engine.component::<DirectoryNode>(s.dir);
        assert_eq!(dn.dir.state(0x2000), DirState::Modified(NodeId(2)));
        // Host 0 writes again: the line ping-pongs back.
        access(&mut s, 0, 0x2000, true, 3);
        let c1 = s.engine.component::<CoherentL1>(s.caches[1]);
        assert!(!c1.holds(0x2000));
        let dn = s.engine.component::<DirectoryNode>(s.dir);
        assert_eq!(dn.dir.state(0x2000), DirState::Modified(NodeId(1)));
    }

    #[test]
    fn read_sharing_downgrades_the_writer() {
        let mut s = setup();
        access(&mut s, 0, 0x3000, true, 1);
        access(&mut s, 1, 0x3000, false, 2);
        let c0 = s.engine.component::<CoherentL1>(s.caches[0]);
        assert!(c0.holds(0x3000), "downgraded, not invalidated");
        assert_eq!(c0.downgrades.get(), 1);
        // Both can now read-hit locally.
        access(&mut s, 0, 0x3000, false, 3);
        access(&mut s, 1, 0x3000, false, 4);
        let done = &s.engine.component::<Sink>(s.sink).done;
        assert!(done[2].hit && done[3].hit);
    }

    #[test]
    fn capacity_eviction_writes_back_dirty_lines() {
        let mut s = setup();
        // Fill a 64-line cache with dirty lines, then overflow it.
        for i in 0..65u64 {
            access(&mut s, 0, 0x8000 + i * 64, true, i);
        }
        let c0 = s.engine.component::<CoherentL1>(s.caches[0]);
        assert!(c0.writebacks.get() >= 1);
        assert!(!c0.holds(0x8000), "LRU victim evicted");
        // The directory no longer tracks the evicted line as cached.
        let dn = s.engine.component::<DirectoryNode>(s.dir);
        assert_eq!(dn.dir.state(0x8000), DirState::Uncached);
    }
}
