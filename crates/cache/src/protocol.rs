//! The pure host-side MESI line protocol.
//!
//! These are the per-line state transitions that [`CoherentL1`](crate::coherent::CoherentL1)
//! (crate::coherent::CoherentL1) executes in response to local accesses
//! and directory snoops, factored out of the event-driven component so
//! they can also be driven exhaustively by the `fcc-verify` model
//! checker. Keeping one copy of the transition rules means the checker
//! exercises exactly the logic the simulator runs.
//!
//! A line a host does not hold is Invalid; held lines are [`Shared`]
//! (read-only) or [`Modified`] (writable, possibly dirty) — the MESI
//! subset the CXL.cache device side needs (`Exclusive` is folded into
//! `Modified`: the directory grants ownership eagerly).
//!
//! [`Shared`]: HostLineState::Shared
//! [`Modified`]: HostLineState::Modified

use fcc_proto::channel::CacheOpcode;

/// Local state of one held line (a missing line is Invalid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostLineState {
    /// Read-only copy.
    Shared,
    /// Writable copy, possibly dirty.
    Modified,
}

/// Whether an access can complete locally against `state`.
///
/// Loads hit in `Shared` or `Modified`; stores hit only in `Modified`
/// (a store to a `Shared` line is an upgrade miss — ownership must be
/// requested from the directory first).
pub fn access_hits(state: Option<HostLineState>, write: bool) -> bool {
    matches!(
        (state, write),
        (Some(HostLineState::Modified), _) | (Some(HostLineState::Shared), false)
    )
}

/// The fabric request opcode for an access that missed.
pub fn miss_request(write: bool) -> CacheOpcode {
    if write {
        CacheOpcode::RdOwn
    } else {
        CacheOpcode::RdShared
    }
}

/// The line state installed when the miss response (for a load or a
/// store) arrives.
pub fn fill_state(write: bool) -> HostLineState {
    if write {
        HostLineState::Modified
    } else {
        HostLineState::Shared
    }
}

/// The eviction opcode and writeback payload size for dropping a line.
///
/// `Modified` lines carry their dirty data back (`DirtyEvict`);
/// `Shared` lines are dropped silently toward memory (`CleanEvict`,
/// no payload).
pub fn evict_op(state: HostLineState) -> (CacheOpcode, u32) {
    match state {
        HostLineState::Modified => (CacheOpcode::DirtyEvict, 64),
        HostLineState::Shared => (CacheOpcode::CleanEvict, 0),
    }
}

/// Applies a directory snoop to a line.
///
/// Returns `(next_state, response_opcode, data_bytes)`, or `None` if
/// `op` is not a snoop opcode. `data_bytes > 0` (a `RspIFwdM`
/// response) means the host forwards its dirty copy.
pub fn snoop_transition(
    state: Option<HostLineState>,
    op: CacheOpcode,
) -> Option<(Option<HostLineState>, CacheOpcode, u32)> {
    use HostLineState::{Modified, Shared};
    Some(match op {
        // Invalidate: drop the copy, forwarding dirty data if modified.
        CacheOpcode::SnpInv => match state {
            Some(Modified) => (None, CacheOpcode::RspIFwdM, 64),
            _ => (None, CacheOpcode::RspIHitI, 0),
        },
        // Downgrade: keep a read-only copy, forwarding dirty data.
        CacheOpcode::SnpData => match state {
            Some(Modified) => (Some(Shared), CacheOpcode::RspIFwdM, 64),
            Some(Shared) => (Some(Shared), CacheOpcode::RspSHitSe, 0),
            None => (None, CacheOpcode::RspIHitI, 0),
        },
        // Current value only: no state change.
        CacheOpcode::SnpCur => match state {
            Some(Modified) => (Some(Modified), CacheOpcode::RspIFwdM, 64),
            Some(Shared) => (Some(Shared), CacheOpcode::RspSHitSe, 0),
            None => (None, CacheOpcode::RspIHitI, 0),
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_follow_mesi() {
        assert!(access_hits(Some(HostLineState::Shared), false));
        assert!(!access_hits(Some(HostLineState::Shared), true));
        assert!(access_hits(Some(HostLineState::Modified), true));
        assert!(!access_hits(None, false));
    }

    #[test]
    fn snoop_inv_always_invalidates() {
        for s in [
            None,
            Some(HostLineState::Shared),
            Some(HostLineState::Modified),
        ] {
            let (next, _, _) = snoop_transition(s, CacheOpcode::SnpInv).unwrap();
            assert_eq!(next, None);
        }
    }

    #[test]
    fn snoop_data_downgrades_and_forwards() {
        let (next, rsp, bytes) =
            snoop_transition(Some(HostLineState::Modified), CacheOpcode::SnpData).unwrap();
        assert_eq!(next, Some(HostLineState::Shared));
        assert_eq!(rsp, CacheOpcode::RspIFwdM);
        assert_eq!(bytes, 64);
    }

    #[test]
    fn non_snoop_opcode_is_rejected() {
        assert!(snoop_transition(None, CacheOpcode::RdOwn).is_none());
    }
}
