//! The L1/L2 hierarchy walk with Table 2 calibration.
//!
//! Each level has a **hit latency** (dependent-access cost) and an
//! **occupancy** (minimum spacing between completions — the port/bank
//! bandwidth limit). The distinction is what makes Table 2's two columns
//! reproducible: latency is measured with dependent pointer chases,
//! throughput with independent streams, and `MOPS ≈ min(window/latency,
//! 1/occupancy)`.

use serde::{Deserialize, Serialize};

use fcc_sim::SimTime;

use crate::sa_cache::{AccessOutcome, SetAssocCache};

/// Where an access was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceLevel {
    /// L1 hit.
    L1,
    /// L2 hit.
    L2,
    /// Host-local DRAM.
    LocalMem,
    /// Fabric-attached memory (served by the fabric simulation).
    Remote,
}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LevelConfig {
    /// Capacity in bytes.
    pub size: u64,
    /// Associativity.
    pub ways: usize,
    /// Hit latency.
    pub hit_latency: SimTime,
    /// Minimum spacing between completions (1/throughput).
    pub occupancy: SimTime,
}

/// Timing of host-local DRAM.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LocalMemConfig {
    /// Read latency.
    pub read_latency: SimTime,
    /// Write latency.
    pub write_latency: SimTime,
    /// Read occupancy (1/read-throughput).
    pub read_occupancy: SimTime,
    /// Write occupancy (1/write-throughput).
    pub write_occupancy: SimTime,
}

/// Full hierarchy configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: LevelConfig,
    /// L2 cache.
    pub l2: LevelConfig,
    /// Local memory timing.
    pub local: LocalMemConfig,
    /// Addresses at or above this boundary are fabric-attached.
    pub fam_base: u64,
}

impl HierarchyConfig {
    /// The Omega-testbed calibration: Table 2's L1/L2/local rows.
    ///
    /// Latencies are the paper's measurements; occupancies are derived
    /// from the paper's MOPS columns (`occupancy = 1 / throughput`):
    /// L1 357.4 MOPS → 2.80 ns, L2 143.4 MOPS → 6.97 ns, local read
    /// 29.4 MOPS → 34.0 ns, local write 16.9 MOPS → 59.2 ns.
    pub fn omega_like() -> Self {
        HierarchyConfig {
            l1: LevelConfig {
                size: 64 * 1024,
                ways: 8,
                hit_latency: SimTime::from_ns(5.4),
                occupancy: SimTime::from_ns(2.80),
            },
            l2: LevelConfig {
                size: 1024 * 1024,
                ways: 16,
                hit_latency: SimTime::from_ns(13.6),
                occupancy: SimTime::from_ns(6.97),
            },
            local: LocalMemConfig {
                read_latency: SimTime::from_ns(111.7),
                write_latency: SimTime::from_ns(119.3),
                read_occupancy: SimTime::from_ns(34.0),
                write_occupancy: SimTime::from_ns(59.2),
            },
            fam_base: 0x10_0000_0000,
        }
    }
}

/// What the hierarchy decided about one access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPlan {
    /// Where the access is served.
    pub level: ServiceLevel,
    /// Completion latency for locally-served accesses (`Remote` reports
    /// only the L1+L2 lookup cost spent before going to the fabric).
    pub latency: SimTime,
    /// Earliest completion honoring level occupancy.
    pub ready_at: SimTime,
    /// Dirty lines pushed out that must be written downstream.
    pub writebacks: Vec<u64>,
}

/// The two-level hierarchy structure plus occupancy trackers.
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    /// L1 data cache (public for probes).
    pub l1: SetAssocCache,
    /// L2 cache (public for probes).
    pub l2: SetAssocCache,
    l1_free_at: SimTime,
    l2_free_at: SimTime,
    mem_free_at: SimTime,
    /// Accesses served per level: `[l1, l2, local, remote]`.
    pub served: [u64; 4],
}

impl MemoryHierarchy {
    /// Builds the hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        MemoryHierarchy {
            cfg,
            l1: SetAssocCache::new(cfg.l1.size, cfg.l1.ways, 64),
            l2: SetAssocCache::new(cfg.l2.size, cfg.l2.ways, 64),
            l1_free_at: SimTime::ZERO,
            l2_free_at: SimTime::ZERO,
            mem_free_at: SimTime::ZERO,
            served: [0; 4],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Whether an address is fabric-attached.
    pub fn is_remote(&self, addr: u64) -> bool {
        addr >= self.cfg.fam_base
    }

    /// Runs one access through the hierarchy at time `now`.
    ///
    /// Remote misses return `ServiceLevel::Remote` with the lookup cost
    /// spent so far; the caller sends the miss to the fabric and the
    /// response fill is modeled by [`MemoryHierarchy::fill`].
    pub fn access(&mut self, addr: u64, is_write: bool, now: SimTime) -> AccessPlan {
        let mut writebacks = Vec::new();
        // L1 lookup.
        match self.l1.access(addr, is_write) {
            AccessOutcome::Hit => {
                self.served[0] += 1;
                let start = self.l1_free_at.max(now);
                self.l1_free_at = start + self.cfg.l1.occupancy;
                return AccessPlan {
                    level: ServiceLevel::L1,
                    latency: self.cfg.l1.hit_latency,
                    ready_at: start + self.cfg.l1.hit_latency,
                    writebacks,
                };
            }
            AccessOutcome::Miss { writeback } => {
                if let Some(wb) = writeback {
                    // L1 victim goes to L2 (allocate there).
                    if let AccessOutcome::Miss {
                        writeback: Some(wb2),
                    } = self.l2.access(wb, true)
                    {
                        writebacks.push(wb2);
                    }
                }
            }
        }
        // L2 lookup.
        match self.l2.access(addr, is_write) {
            AccessOutcome::Hit => {
                self.served[1] += 1;
                let start = self.l2_free_at.max(now);
                self.l2_free_at = start + self.cfg.l2.occupancy;
                return AccessPlan {
                    level: ServiceLevel::L2,
                    latency: self.cfg.l2.hit_latency,
                    ready_at: start + self.cfg.l2.hit_latency,
                    writebacks,
                };
            }
            AccessOutcome::Miss { writeback } => {
                if let Some(wb) = writeback {
                    writebacks.push(wb);
                }
            }
        }
        if self.is_remote(addr) {
            self.served[3] += 1;
            // Lookup cost before the fabric request leaves the core.
            let lookup = self.cfg.l1.hit_latency + self.cfg.l2.hit_latency;
            return AccessPlan {
                level: ServiceLevel::Remote,
                latency: lookup,
                ready_at: now + lookup,
                writebacks,
            };
        }
        self.served[2] += 1;
        let (lat, occ) = if is_write {
            (self.cfg.local.write_latency, self.cfg.local.write_occupancy)
        } else {
            (self.cfg.local.read_latency, self.cfg.local.read_occupancy)
        };
        let start = self.mem_free_at.max(now);
        self.mem_free_at = start + occ;
        AccessPlan {
            level: ServiceLevel::LocalMem,
            latency: lat,
            ready_at: start + lat,
            writebacks,
        }
    }

    /// Installs a remote fill (the response arrived from the fabric);
    /// no-op beyond the allocation already done in [`MemoryHierarchy::access`].
    pub fn fill(&mut self, _addr: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::omega_like())
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut m = h();
        let first = m.access(0x100, false, SimTime::ZERO);
        assert_eq!(first.level, ServiceLevel::LocalMem);
        let second = m.access(0x100, false, first.ready_at);
        assert_eq!(second.level, ServiceLevel::L1);
        assert_eq!(second.latency, SimTime::from_ns(5.4));
    }

    #[test]
    fn l2_serves_l1_victims() {
        let mut m = h();
        // Fill far beyond L1 (64 KiB) but within L2 (1 MiB), then re-walk:
        // everything should be L2 hits (or better).
        let span = 256 * 1024u64;
        let mut now = SimTime::ZERO;
        for addr in (0..span).step_by(64) {
            now = m.access(addr, false, now).ready_at;
        }
        let mut l2_hits = 0;
        for addr in (0..span).step_by(64) {
            let plan = m.access(addr, false, now);
            now = plan.ready_at;
            if plan.level == ServiceLevel::L2 {
                l2_hits += 1;
            }
            assert_ne!(plan.level, ServiceLevel::LocalMem, "resident in L2");
        }
        assert!(l2_hits > 3000, "most of the sweep hits L2: {l2_hits}");
    }

    #[test]
    fn remote_addresses_go_to_the_fabric() {
        let mut m = h();
        let plan = m.access(0x10_0000_0000, false, SimTime::ZERO);
        assert_eq!(plan.level, ServiceLevel::Remote);
        // Second access hits in L1: the fill was allocated.
        let plan2 = m.access(0x10_0000_0000, false, plan.ready_at);
        assert_eq!(plan2.level, ServiceLevel::L1);
    }

    #[test]
    fn occupancy_limits_throughput() {
        let mut m = h();
        // Warm one line, then hammer it at t=0: completions space out by
        // the L1 occupancy.
        m.access(0x100, false, SimTime::ZERO);
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            let plan = m.access(0x100, false, SimTime::ZERO);
            assert!(plan.ready_at > last);
            last = plan.ready_at;
        }
        // 1 warm (local) + 10 hits at 2.8ns spacing ≥ 28ns window.
        let occ_window = SimTime::from_ns(2.8) * 9;
        assert!(last >= occ_window);
    }

    #[test]
    fn dependent_chain_latency_matches_table2_rows() {
        let mut m = h();
        // Warm a line then measure a dependent L1 chain.
        m.access(0, false, SimTime::ZERO);
        let mut now = SimTime::from_us(1.0);
        let start = now;
        for _ in 0..100 {
            let plan = m.access(0, false, now);
            assert_eq!(plan.level, ServiceLevel::L1);
            now = now.max(plan.ready_at);
        }
        let per = (now - start) / 100;
        assert!((per.as_ns() - 5.4).abs() < 0.2, "L1 {per}");
    }

    #[test]
    fn writebacks_surface_dirty_victims() {
        let cfg = HierarchyConfig {
            l1: LevelConfig {
                size: 2 * 64,
                ways: 1,
                hit_latency: SimTime::from_ns(5.0),
                occupancy: SimTime::from_ns(2.0),
            },
            l2: LevelConfig {
                size: 4 * 64,
                ways: 1,
                hit_latency: SimTime::from_ns(13.0),
                occupancy: SimTime::from_ns(7.0),
            },
            ..HierarchyConfig::omega_like()
        };
        let mut m = MemoryHierarchy::new(cfg);
        let mut now = SimTime::ZERO;
        let mut wb_total = 0;
        // Write a conflict set larger than L1+L2 so dirty lines spill out.
        for round in 0..4 {
            for i in 0..8u64 {
                let plan = m.access(i * 2 * 64, true, now);
                now = plan.ready_at;
                wb_total += plan.writebacks.len();
                let _ = round;
            }
        }
        assert!(wb_total > 0, "dirty victims must surface");
    }
}
