//! The CPU core model: drives access streams through the hierarchy.
//!
//! §3 D#1: memory-fabric loads are synchronous — "during the data
//! transfer, the current CPU pipeline is stalled and resumed after
//! receiving the response" — and per-core fabric throughput is bounded by
//! "the number of outstanding load/store instructions that it can submit
//! in its pipeline". [`CpuCore`] models exactly that: a *dependent* stream
//! issues one access at a time (latency measurement), an *independent*
//! stream keeps up to `window` accesses in flight (throughput
//! measurement); remote misses leave through an FHA and stall their slot
//! until the fabric answers.

use std::collections::HashMap;

use fcc_fabric::adapter::{HostCompletion, HostOp, HostRequest};
use fcc_sim::{Component, ComponentId, Ctx, Histogram, Msg, SimTime, SummaryNs};

use crate::hierarchy::{MemoryHierarchy, ServiceLevel};
use crate::prefetch::StridePrefetcher;

/// The access stream a run executes.
#[derive(Debug, Clone, Copy)]
pub enum AccessPattern {
    /// Pointer-chase semantics: the next access issues only after the
    /// previous completed. Measures latency.
    Dependent {
        /// First address.
        base: u64,
        /// Region size; addresses wrap within it.
        region: u64,
        /// Address increment per access.
        stride: u64,
        /// Measured accesses.
        count: u64,
        /// Whether accesses are writes.
        write: bool,
        /// Un-measured warm-up passes over the region.
        warmup_passes: u32,
    },
    /// Up to `window` accesses in flight. Measures throughput.
    Independent {
        /// First address.
        base: u64,
        /// Region size; addresses wrap within it.
        region: u64,
        /// Address increment per access.
        stride: u64,
        /// Measured accesses.
        count: u64,
        /// Whether accesses are writes.
        write: bool,
        /// Un-measured warm-up passes over the region.
        warmup_passes: u32,
    },
}

impl AccessPattern {
    fn params(&self) -> (u64, u64, u64, u64, bool, u32) {
        match *self {
            AccessPattern::Dependent {
                base,
                region,
                stride,
                count,
                write,
                warmup_passes,
            }
            | AccessPattern::Independent {
                base,
                region,
                stride,
                count,
                write,
                warmup_passes,
            } => (base, region, stride, count, write, warmup_passes),
        }
    }

    fn is_dependent(&self) -> bool {
        matches!(self, AccessPattern::Dependent { .. })
    }
}

/// Starts a measurement run on a [`CpuCore`].
#[derive(Debug, Clone, Copy)]
pub struct StartRun {
    /// The stream to execute.
    pub pattern: AccessPattern,
    /// Component notified with [`RunDone`].
    pub reply_to: ComponentId,
}

/// Results of a completed run.
#[derive(Debug, Clone)]
pub struct CoreReport {
    /// Measured operations.
    pub ops: u64,
    /// Wall-clock (simulated) duration of the measured phase.
    pub elapsed: SimTime,
    /// Per-access latency distribution (ns).
    pub latency: SummaryNs,
    /// Accesses served per level during measurement: `[l1, l2, local, remote]`.
    pub served: [u64; 4],
    /// Prefetches issued during the run.
    pub prefetches: u64,
}

impl CoreReport {
    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        if self.elapsed == SimTime::ZERO {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_us()
        }
    }
}

/// Completion notice for a finished run.
#[derive(Debug, Clone)]
pub struct RunDone {
    /// The report.
    pub report: CoreReport,
}

/// Self-message: a locally-served access completed.
#[derive(Debug, Clone, Copy)]
struct LocalDone {
    tag: u64,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    issued_at: SimTime,
    measured: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Warmup,
    Measure,
}

struct RunState {
    pattern: AccessPattern,
    reply_to: ComponentId,
    phase: Phase,
    warmup_left: u64,
    next_index: u64,
    issued: u64,
    completed: u64,
    in_flight: HashMap<u64, InFlight>,
    next_tag: u64,
    started_at: SimTime,
    latency: Histogram,
    served_at_start: [u64; 4],
    last_completion: SimTime,
}

/// A CPU core bound to a memory hierarchy and (optionally) an FHA.
pub struct CpuCore {
    /// The hierarchy (public for probes and seeding).
    pub hierarchy: MemoryHierarchy,
    fha: Option<ComponentId>,
    window: usize,
    prefetcher: Option<StridePrefetcher>,
    run: Option<RunState>,
    trace: fcc_telemetry::Track,
}

impl CpuCore {
    /// Creates a core with the given hierarchy and load/store window depth.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(hierarchy: MemoryHierarchy, window: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        CpuCore {
            hierarchy,
            fha: None,
            window,
            prefetcher: None,
            run: None,
            trace: fcc_telemetry::Track::default(),
        }
    }

    /// Binds the core to a host adapter for remote misses.
    pub fn set_fha(&mut self, fha: ComponentId) {
        self.fha = Some(fha);
    }

    /// Attaches a telemetry track; the core then emits a span covering
    /// each remote miss from FHA issue to completion delivery.
    pub fn set_trace(&mut self, track: fcc_telemetry::Track) {
        self.trace = track;
    }

    /// Enables a stride prefetcher.
    pub fn set_prefetcher(&mut self, p: StridePrefetcher) {
        self.prefetcher = Some(p);
    }

    fn window_for(&self, pattern: &AccessPattern) -> usize {
        if pattern.is_dependent() {
            1
        } else {
            self.window
        }
    }

    fn next_addr(run: &mut RunState) -> Option<(u64, bool)> {
        let (base, region, stride, count, write, _) = run.pattern.params();
        let per_pass = (region / stride).max(1);
        match run.phase {
            Phase::Warmup => {
                if run.warmup_left == 0 {
                    return None;
                }
                run.warmup_left -= 1;
                let i = run.next_index;
                run.next_index += 1;
                Some((base + (i * stride) % region, write))
            }
            Phase::Measure => {
                if run.issued >= count {
                    return None;
                }
                let i = run.next_index;
                run.next_index += 1;
                run.issued += 1;
                let _ = per_pass;
                Some((base + (i * stride) % region, write))
            }
        }
    }

    fn issue_until_full(&mut self, ctx: &mut Ctx<'_>) {
        let Some(run) = self.run.as_ref() else {
            return;
        };
        let window = self.window_for(&run.pattern);
        loop {
            // Checked `Some` at entry and never cleared inside the loop.
            #[allow(clippy::expect_used)]
            let run = self.run.as_mut().expect("active run");
            if run.in_flight.len() >= window {
                break;
            }
            let Some((addr, write)) = Self::next_addr(run) else {
                break;
            };
            let measured = run.phase == Phase::Measure;
            let tag = run.next_tag;
            run.next_tag += 1;
            run.in_flight.insert(
                tag,
                InFlight {
                    issued_at: ctx.now(),
                    measured,
                },
            );
            self.issue_access(ctx, tag, addr, write);
        }
    }

    fn issue_access(&mut self, ctx: &mut Ctx<'_>, tag: u64, addr: u64, write: bool) {
        // Prefetcher observes demand accesses and fills ahead.
        let prefetch_addrs: Vec<u64> = match self.prefetcher.as_mut() {
            Some(p) => p.observe(addr),
            None => Vec::new(),
        };
        for pa in prefetch_addrs {
            if let Some(run) = self.run.as_mut() {
                // Prefetch fills are free in this model for local tiers
                // (they ride spare bandwidth) and are issued as plain
                // fabric reads for remote lines, not counted as ops.
                let plan = self.hierarchy.access(pa, false, ctx.now());
                if plan.level == ServiceLevel::Remote {
                    if let Some(fha) = self.fha {
                        let pf_tag = run.next_tag;
                        run.next_tag += 1;
                        ctx.send(
                            fha,
                            SimTime::ZERO,
                            HostRequest {
                                op: HostOp::Read {
                                    addr: pa,
                                    bytes: 64,
                                },
                                tag: pf_tag,
                                reply_to: ctx.self_id(),
                            },
                        );
                    }
                }
            }
        }
        let plan = self.hierarchy.access(addr, write, ctx.now());
        match plan.level {
            ServiceLevel::Remote => {
                // A hierarchy that returns Remote is only built when an FHA is wired.
                #[allow(clippy::expect_used)]
                let fha = self.fha.expect("remote access without an FHA");
                let op = if write {
                    HostOp::Write { addr, bytes: 64 }
                } else {
                    HostOp::Read { addr, bytes: 64 }
                };
                ctx.send(
                    fha,
                    plan.latency,
                    HostRequest {
                        op,
                        tag,
                        reply_to: ctx.self_id(),
                    },
                );
            }
            _ => {
                ctx.send_self(plan.ready_at - ctx.now(), LocalDone { tag });
            }
        }
    }

    fn complete(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let Some(run) = self.run.as_mut() else {
            return;
        };
        let Some(inflight) = run.in_flight.remove(&tag) else {
            // A prefetch completion: ignore.
            return;
        };
        if inflight.measured {
            run.completed += 1;
            run.latency.record_time(ctx.now() - inflight.issued_at);
            run.last_completion = ctx.now();
        }
        // Phase transition: warm-up drained?
        let (_, _, _, count, _, _) = run.pattern.params();
        if run.phase == Phase::Warmup && run.warmup_left == 0 && run.in_flight.is_empty() {
            run.phase = Phase::Measure;
            run.started_at = ctx.now();
            run.served_at_start = self.hierarchy.served;
        }
        let done = run.phase == Phase::Measure && run.completed >= count;
        if done {
            // `done` was computed from `run` a few lines above.
            #[allow(clippy::expect_used)]
            let run = self.run.take().expect("active");
            let served = [
                self.hierarchy.served[0] - run.served_at_start[0],
                self.hierarchy.served[1] - run.served_at_start[1],
                self.hierarchy.served[2] - run.served_at_start[2],
                self.hierarchy.served[3] - run.served_at_start[3],
            ];
            let report = CoreReport {
                ops: run.completed,
                elapsed: run.last_completion - run.started_at,
                latency: run.latency.summary_ns(),
                served,
                prefetches: self.prefetcher.as_ref().map(|p| p.issued).unwrap_or(0),
            };
            ctx.send(run.reply_to, SimTime::ZERO, RunDone { report });
            return;
        }
        self.issue_until_full(ctx);
    }
}

impl Component for CpuCore {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<StartRun>() {
            Ok(start) => {
                assert!(self.run.is_none(), "core already running");
                let (_, region, stride, _, _, warmup_passes) = start.pattern.params();
                let per_pass = (region / stride.max(1)).max(1);
                self.run = Some(RunState {
                    pattern: start.pattern,
                    reply_to: start.reply_to,
                    phase: if warmup_passes > 0 {
                        Phase::Warmup
                    } else {
                        Phase::Measure
                    },
                    warmup_left: warmup_passes as u64 * per_pass,
                    next_index: 0,
                    issued: 0,
                    completed: 0,
                    in_flight: HashMap::new(),
                    next_tag: 1,
                    started_at: ctx.now(),
                    latency: Histogram::new(),
                    served_at_start: self.hierarchy.served,
                    last_completion: ctx.now(),
                });
                self.issue_until_full(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<LocalDone>() {
            Ok(done) => {
                self.complete(ctx, done.tag);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<HostCompletion>() {
            Ok(hc) => {
                self.trace.span_nonzero(
                    "cache",
                    "cache.remote_miss",
                    hc.issued_at,
                    hc.completed_at,
                    fcc_telemetry::TraceCtx::NONE,
                );
                self.hierarchy.fill(0);
                self.complete(ctx, hc.tag);
            }
            Err(m) => panic!("cpu core: unexpected message {}", m.type_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use fcc_sim::Engine;

    use crate::hierarchy::HierarchyConfig;

    use super::*;

    struct Sink {
        report: Option<CoreReport>,
    }

    impl Component for Sink {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            let done = msg.downcast::<RunDone>().expect("run done");
            self.report = Some(done.report);
        }
    }

    fn run_local(pattern: AccessPattern, window: usize) -> CoreReport {
        let mut engine = Engine::new(2);
        let sink = engine.add_component("sink", Sink { report: None });
        let core = engine.add_component(
            "core",
            CpuCore::new(MemoryHierarchy::new(HierarchyConfig::omega_like()), window),
        );
        engine.post(
            core,
            SimTime::ZERO,
            StartRun {
                pattern,
                reply_to: sink,
            },
        );
        engine.run_until_idle();
        engine
            .component::<Sink>(sink)
            .report
            .clone()
            .expect("run finished")
    }

    #[test]
    fn l1_dependent_latency_is_5_4ns() {
        let report = run_local(
            AccessPattern::Dependent {
                base: 0,
                region: 16 * 1024,
                stride: 64,
                count: 2000,
                write: false,
                warmup_passes: 1,
            },
            16,
        );
        assert!(
            (report.latency.mean - 5.4).abs() < 0.3,
            "{:?}",
            report.latency
        );
        assert_eq!(report.served[0], 2000, "all L1 after warmup");
    }

    #[test]
    fn l1_independent_throughput_is_357_mops() {
        let report = run_local(
            AccessPattern::Independent {
                base: 0,
                region: 16 * 1024,
                stride: 64,
                count: 20_000,
                write: false,
                warmup_passes: 1,
            },
            16,
        );
        let mops = report.mops();
        assert!((mops - 357.0).abs() < 25.0, "L1 throughput {mops}");
    }

    #[test]
    fn l2_dependent_latency_is_13_6ns() {
        let report = run_local(
            AccessPattern::Dependent {
                // 512 KiB region: beyond L1, within L2.
                base: 0,
                region: 512 * 1024,
                stride: 64,
                count: 4000,
                write: false,
                warmup_passes: 2,
            },
            16,
        );
        // A 64 KiB slice of the sweep still hits L1.
        let l2_share = report.served[1] as f64 / report.ops as f64;
        assert!(l2_share > 0.8, "mostly L2: {l2_share}");
        assert!(
            report.latency.mean > 12.0 && report.latency.mean < 14.5,
            "L2 latency {}",
            report.latency.mean
        );
    }

    #[test]
    fn local_memory_latency_and_throughput_match_table2() {
        // 16 MiB region with a 4 KiB stride defeats both caches.
        let dep = run_local(
            AccessPattern::Dependent {
                base: 0,
                region: 16 * 1024 * 1024,
                stride: 4096,
                count: 3000,
                write: false,
                warmup_passes: 0,
            },
            16,
        );
        assert!(
            (dep.latency.mean - 111.7).abs() < 5.0,
            "local read latency {}",
            dep.latency.mean
        );
        let ind = run_local(
            AccessPattern::Independent {
                base: 0,
                region: 16 * 1024 * 1024,
                stride: 4096,
                count: 20_000,
                write: false,
                warmup_passes: 0,
            },
            16,
        );
        let mops = ind.mops();
        assert!((mops - 29.4).abs() < 3.0, "local read MOPS {mops}");
    }

    #[test]
    fn local_write_throughput_is_lower() {
        let ind = run_local(
            AccessPattern::Independent {
                base: 0,
                region: 16 * 1024 * 1024,
                stride: 4096,
                count: 20_000,
                write: true,
                warmup_passes: 0,
            },
            16,
        );
        let mops = ind.mops();
        assert!((mops - 16.9).abs() < 2.0, "local write MOPS {mops}");
    }

    #[test]
    fn prefetcher_reduces_miss_latency_on_streams() {
        let mut engine = Engine::new(2);
        let sink = engine.add_component("sink", Sink { report: None });
        let mut core_model = CpuCore::new(MemoryHierarchy::new(HierarchyConfig::omega_like()), 16);
        core_model.set_prefetcher(StridePrefetcher::new(8, 4, 64));
        let core = engine.add_component("core", core_model);
        engine.post(
            core,
            SimTime::ZERO,
            StartRun {
                pattern: AccessPattern::Dependent {
                    base: 0,
                    region: 16 * 1024 * 1024,
                    stride: 64,
                    count: 5000,
                    write: false,
                    warmup_passes: 0,
                },
                reply_to: sink,
            },
        );
        engine.run_until_idle();
        let with_pf = engine.component::<Sink>(sink).report.clone().expect("done");
        // Without prefetch, a 64B-stride sweep over 16 MiB misses every
        // line (~111.7ns each). With prefetch, most demand accesses hit L1.
        assert!(with_pf.prefetches > 0);
        assert!(
            with_pf.latency.mean < 40.0,
            "prefetched stream latency {}",
            with_pf.latency.mean
        );
    }
}
