//! A set-associative, write-back, write-allocate cache with LRU
//! replacement.

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was filled; a victim may have been written back.
    Miss {
        /// Dirty victim line address that must be written back, if any.
        writeback: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic use stamp for LRU.
    used: u64,
}

/// The cache structure.
///
/// # Examples
///
/// ```
/// use fcc_cache::sa_cache::{AccessOutcome, SetAssocCache};
///
/// let mut l1 = SetAssocCache::new(32 * 1024, 8, 64);
/// assert!(matches!(l1.access(0x1000, false), AccessOutcome::Miss { .. }));
/// assert_eq!(l1.access(0x1000, true), AccessOutcome::Hit);
/// assert!(l1.invalidate(0x1000), "was dirty");
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    line_bytes: u64,
    storage: Vec<Way>,
    clock: u64,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl SetAssocCache {
    /// Creates a cache of `size_bytes` with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/lines, size not a
    /// multiple of `ways * line_bytes`, or a non-power-of-two set count).
    pub fn new(size_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(ways > 0 && line_bytes > 0, "degenerate geometry");
        assert!(
            size_bytes.is_multiple_of(ways as u64 * line_bytes),
            "size must be a multiple of ways * line"
        );
        let sets = (size_bytes / (ways as u64 * line_bytes)) as usize;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        SetAssocCache {
            sets,
            ways,
            line_bytes,
            storage: vec![
                Way {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    used: 0,
                };
                sets * ways
            ],
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }

    /// Cache line size.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Hit rate so far (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        (set, tag)
    }

    /// Accesses `addr`; on a miss the line is allocated.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let (set, tag) = self.locate(addr);
        let base = set * self.ways;
        let ways = &mut self.storage[base..base + self.ways];
        // Hit?
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.used = self.clock;
            way.dirty |= is_write;
            self.hits += 1;
            return AccessOutcome::Hit;
        }
        self.misses += 1;
        // Victim: invalid first, else LRU.
        // Associativity is validated non-zero at construction.
        #[allow(clippy::expect_used)]
        let victim_idx = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| (w.valid, w.used))
            .map(|(i, _)| i)
            .expect("ways > 0");
        let victim = ways[victim_idx];
        let victim_addr = (victim.tag * self.sets as u64 + set as u64) * self.line_bytes;
        let writeback = if victim.valid && victim.dirty {
            self.writebacks += 1;
            Some(victim_addr)
        } else {
            None
        };
        let ways = &mut self.storage[base..base + self.ways];
        ways[victim_idx] = Way {
            tag,
            valid: true,
            dirty: is_write,
            used: self.clock,
        };
        AccessOutcome::Miss { writeback }
    }

    /// Whether `addr`'s line is currently cached (no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        let base = set * self.ways;
        self.storage[base..base + self.ways]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates `addr`'s line; returns whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        let base = set * self.ways;
        for w in &mut self.storage[base..base + self.ways] {
            if w.valid && w.tag == tag {
                w.valid = false;
                return w.dirty;
            }
        }
        false
    }

    /// Drops all contents (no writebacks — test/reset use).
    pub fn clear(&mut self) {
        for w in &mut self.storage {
            w.valid = false;
            w.dirty = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    #[test]
    fn geometry() {
        let c = SetAssocCache::new(32 * 1024, 8, 64);
        assert_eq!(c.capacity(), 32 * 1024);
        assert_eq!(c.sets, 64);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(4096, 4, 64);
        assert!(matches!(c.access(0x100, false), AccessOutcome::Miss { .. }));
        assert_eq!(c.access(0x100, false), AccessOutcome::Hit);
        assert_eq!(c.access(0x13f, false), AccessOutcome::Hit, "same line");
        assert!(matches!(c.access(0x140, false), AccessOutcome::Miss { .. }));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way, tiny: one set per conflict class.
        let mut c = SetAssocCache::new(2 * 64, 2, 64);
        c.access(0, false);
        c.access(64, false);
        c.access(0, false); // 0 more recent than 64.
        c.access(128, false); // evicts 64.
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = SetAssocCache::new(2 * 64, 2, 64);
        c.access(0, true);
        c.access(64, false);
        // Evict line 0 (dirty): writeback address 0.
        c.access(64, false); // touch 64 so 0 is LRU.
        let out = c.access(128, false);
        assert_eq!(out, AccessOutcome::Miss { writeback: Some(0) });
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = SetAssocCache::new(2 * 64, 2, 64);
        c.access(0, false);
        c.access(64, false);
        let out = c.access(128, false);
        assert_eq!(out, AccessOutcome::Miss { writeback: None });
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = SetAssocCache::new(2 * 64, 2, 64);
        c.access(0, false);
        c.access(0, true); // dirty via hit.
        c.access(64, false);
        c.access(64, false);
        let out = c.access(128, false);
        assert_eq!(out, AccessOutcome::Miss { writeback: Some(0) });
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = SetAssocCache::new(4096, 4, 64);
        c.access(0x100, true);
        assert!(c.invalidate(0x100));
        assert!(!c.probe(0x100));
        assert!(!c.invalidate(0x100), "already gone");
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = SetAssocCache::new(32 * 1024, 8, 64);
        for addr in (0..32 * 1024).step_by(64) {
            c.access(addr, false);
        }
        let misses_before = c.misses;
        for addr in (0..32 * 1024).step_by(64) {
            c.access(addr, false);
        }
        assert_eq!(c.misses, misses_before, "fully resident");
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = SetAssocCache::new(4096, 4, 64);
        // Sequential sweep of 4x capacity: LRU on a looping sweep never hits.
        for _ in 0..3 {
            for addr in (0..16 * 1024).step_by(64) {
                c.access(addr, false);
            }
        }
        assert_eq!(c.hits, 0);
    }

    proptest! {
        #[test]
        fn probe_agrees_with_access(ops in prop::collection::vec((0u64..1 << 16, any::<bool>()), 1..500)) {
            let mut c = SetAssocCache::new(8192, 4, 64);
            for (addr, w) in ops {
                let probed = c.probe(addr);
                let outcome = c.access(addr, w);
                prop_assert_eq!(probed, outcome == AccessOutcome::Hit);
                prop_assert!(c.probe(addr), "line resident after access");
            }
        }

        #[test]
        fn stats_add_up(ops in prop::collection::vec(0u64..1 << 14, 1..300)) {
            let mut c = SetAssocCache::new(4096, 2, 64);
            for addr in &ops {
                c.access(*addr, false);
            }
            prop_assert_eq!(c.hits + c.misses, ops.len() as u64);
        }
    }
}
