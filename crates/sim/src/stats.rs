//! Measurement primitives: counters, time-weighted gauges, and a
//! log-linear (HDR-style) histogram with bounded relative error.
//!
//! The histogram stores counts in buckets whose width grows with magnitude:
//! each power-of-two range is split into `1 << sub_bits` linear sub-buckets,
//! giving a worst-case relative quantile error of `2^-sub_bits`. This keeps
//! memory constant regardless of sample count, which matters because the
//! fabric experiments record hundreds of millions of latency samples.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A time-weighted gauge: tracks the integral of a level over simulated
/// time so the mean occupancy of queues and buffers can be reported.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gauge {
    level: f64,
    last_update: SimTime,
    weighted_sum: f64,
    peak: f64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            level: 0.0,
            last_update: SimTime::ZERO,
            weighted_sum: 0.0,
            peak: 0.0,
        }
    }
}

impl Gauge {
    /// Creates a gauge at level zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level at time `now`, accumulating the previous level's
    /// contribution.
    pub fn set(&mut self, now: SimTime, level: f64) {
        let dt = (now - self.last_update).as_ns();
        self.weighted_sum += self.level * dt;
        self.level = level;
        self.last_update = now;
        if level > self.peak {
            self.peak = level;
        }
    }

    /// Adjusts the level by `delta` at time `now`.
    pub fn adjust(&mut self, now: SimTime, delta: f64) {
        let level = self.level + delta;
        self.set(now, level);
    }

    /// Returns the instantaneous level.
    #[inline]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Returns the peak level observed.
    #[inline]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Returns the time-weighted mean level over `[0, now]`.
    ///
    /// Returns zero when no time has elapsed.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total_ns = now.as_ns();
        if total_ns <= 0.0 {
            return 0.0;
        }
        let tail = self.level * (now - self.last_update).as_ns();
        (self.weighted_sum + tail) / total_ns
    }
}

/// Number of linear sub-buckets per power of two (2^6 = 64 → ≤1.6% error).
const SUB_BITS: u32 = 6;
const SUBS: usize = 1 << SUB_BITS;

/// A log-linear histogram of `u64` values (typically picoseconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            // 64 powers of two × SUBS sub-buckets covers the full u64 range.
            buckets: vec![0; 64 * SUBS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUBS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((value >> shift) - SUBS as u64) as usize;
        ((msb - SUB_BITS + 1) as usize) * SUBS + sub
    }

    fn bucket_lower_bound(index: usize) -> u64 {
        let tier = index / SUBS;
        let sub = (index % SUBS) as u64;
        if tier == 0 {
            sub
        } else {
            (SUBS as u64 + sub) << (tier - 1)
        }
    }

    /// Records a value.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Records a [`SimTime`] duration (as picoseconds).
    pub fn record_time(&mut self, t: SimTime) {
        self.record(t.as_ps());
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value.
    ///
    /// Returns 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Returns the value at quantile `q` in `[0, 1]` (bucket lower bound).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).floor() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > target {
                return Self::bucket_lower_bound(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Produces a compact summary of the distribution.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max,
        }
    }

    /// Convenience: summary interpreted as nanoseconds (samples are ps).
    pub fn summary_ns(&self) -> SummaryNs {
        let s = self.summary();
        SummaryNs {
            count: s.count,
            mean: s.mean / 1e3,
            min: s.min as f64 / 1e3,
            p50: s.p50 as f64 / 1e3,
            p90: s.p90 as f64 / 1e3,
            p99: s.p99 as f64 / 1e3,
            p999: s.p999 as f64 / 1e3,
            max: s.max as f64 / 1e3,
        }
    }
}

/// A point-in-time digest of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: u64,
    /// Median (bucket-resolution).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Maximum sample.
    pub max: u64,
}

/// A [`Summary`] with all values converted from picoseconds to nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryNs {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean (ns).
    pub mean: f64,
    /// Minimum (ns).
    pub min: f64,
    /// Median (ns).
    pub p50: f64,
    /// 90th percentile (ns).
    pub p90: f64,
    /// 99th percentile (ns).
    pub p99: f64,
    /// 99.9th percentile (ns).
    pub p999: f64,
    /// Maximum (ns).
    pub max: f64,
}

/// Jain's fairness index over a set of non-negative allocations.
///
/// Returns 1.0 for a perfectly fair vector and approaches `1/n` as one
/// element dominates. Returns 1.0 for empty or all-zero input.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if n == 0.0 || sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sum_sq)
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_time_weighted_mean() {
        let mut g = Gauge::new();
        g.set(SimTime::ZERO, 2.0);
        g.set(SimTime::from_ns(10.0), 4.0);
        // 2.0 for 10ns then 4.0 for 10ns → mean 3.0 at 20ns.
        assert!((g.mean(SimTime::from_ns(20.0)) - 3.0).abs() < 1e-9);
        assert_eq!(g.peak(), 4.0);
        g.adjust(SimTime::from_ns(20.0), -3.0);
        assert_eq!(g.level(), 1.0);
    }

    #[test]
    fn histogram_exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 63);
        // Small values land in exact buckets.
        assert_eq!(h.quantile(0.5), 32);
    }

    #[test]
    fn histogram_quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        for i in 1..=100_000u64 {
            h.record(i * 37);
        }
        for &q in &[0.1, 0.5, 0.9, 0.99, 0.999] {
            let exact = (q * 100_000.0) as u64 * 37;
            let est = h.quantile(q);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.02, "q={q}: est={est} exact={exact} err={err}");
        }
    }

    #[test]
    fn histogram_merge_equals_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut u = Histogram::new();
        for i in 0..1000u64 {
            if i % 2 == 0 {
                a.record(i * i);
            } else {
                b.record(i * i);
            }
            u.record(i * i);
        }
        a.merge(&b);
        assert_eq!(a.count(), u.count());
        assert_eq!(a.quantile(0.5), u.quantile(0.5));
        assert_eq!(a.min(), u.min());
        assert_eq!(a.max(), u.max());
    }

    #[test]
    fn summary_ns_scales() {
        let mut h = Histogram::new();
        h.record_time(SimTime::from_ns(1000.0));
        let s = h.summary_ns();
        assert_eq!(s.count, 1);
        assert!((s.mean - 1000.0).abs() < 1.0);
    }

    #[test]
    fn jain_index_extremes() {
        assert!((jain_fairness(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_fairness(&[100.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
    }

    proptest! {
        #[test]
        fn bucket_index_is_monotonic(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(Histogram::bucket_index(lo) <= Histogram::bucket_index(hi));
        }

        #[test]
        fn bucket_lower_bound_inverts_index(v in 0u64..u64::MAX) {
            let idx = Histogram::bucket_index(v);
            let lb = Histogram::bucket_lower_bound(idx);
            prop_assert!(lb <= v, "lb {lb} > v {v}");
            // Relative bucket width bound: lb >= v * (1 - 2^-SUB_BITS) roughly.
            if v > 128 {
                prop_assert!(lb as f64 >= v as f64 * (1.0 - 2.0 / SUBS as f64));
            }
        }

        #[test]
        fn quantiles_are_monotone(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut prev = 0;
            for i in 0..=10 {
                let q = h.quantile(i as f64 / 10.0);
                prop_assert!(q >= prev);
                prev = q;
            }
            prop_assert!(h.quantile(0.0) >= h.min());
            prop_assert!(h.quantile(1.0) == h.max());
        }

        #[test]
        fn mean_matches_sum(values in prop::collection::vec(0u64..1_000_000, 1..100)) {
            let mut h = Histogram::new();
            let mut sum = 0u128;
            for &v in &values {
                h.record(v);
                sum += v as u128;
            }
            let exact = sum as f64 / values.len() as f64;
            prop_assert!((h.mean() - exact).abs() < 1e-6);
        }
    }
}
