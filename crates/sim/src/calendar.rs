//! An indexed calendar (bucket) queue for the DES hot path.
//!
//! The engine pops events in `(time, seq)` order. A `BinaryHeap` does that
//! in `O(log n)` per operation with poor locality once the pending set
//! grows (congested scenarios hold tens of thousands of in-flight flit
//! events). A calendar queue exploits what a heap cannot: simulated time
//! only moves forward, and almost every event is scheduled a short,
//! bounded delay ahead of `now`.
//!
//! # Structure and invariants
//!
//! Time is divided into fixed-width *days* (`day = time_ps >> WIDTH_SHIFT`)
//! and the queue keeps a power-of-two ring of buckets, one day per bucket:
//!
//! * **Window invariant** — the ring only holds events whose day lies in
//!   the active window `[cur_day, cur_day + nbuckets)`. Because the window
//!   spans each ring residue exactly once, a bucket never mixes events of
//!   two different days.
//! * **Bucket order invariant** — each bucket is kept sorted by
//!   `(time, seq)` *descending*, so the next event of the current day pops
//!   from the back in `O(1)`. Inserts into the window binary-search their
//!   slot; with a sane width a bucket holds a handful of entries, so the
//!   memmove is a few dozen bytes.
//! * **Far invariant** — events beyond the window sit in a min-heap
//!   (`far`). Whenever `cur_day` advances, any `far` events whose day
//!   entered the window migrate into the ring, so the ring-first pop order
//!   is always globally correct.
//! * **Occupancy bitmap** — one bit per bucket lets the cursor skip runs
//!   of empty days with `trailing_zeros` instead of probing buckets one by
//!   one, which keeps sparse phases (a lone millisecond timer) cheap.
//!
//! The queue stores `(time, seq, id)` triples where `id` indexes the
//! engine's event slab; entries are 24 bytes and `Copy`, so bucket
//! shuffles never touch the event payloads themselves.
//!
//! Determinism: pop order is exactly ascending `(time, seq)` — the same
//! total order the seed heap produced — which `tests` verify against a
//! `BinaryHeap` oracle under proptest-generated insert/pop interleavings.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One queued event reference: its full sort key plus the slab id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CalEntry {
    /// Event time in picoseconds.
    pub time: u64,
    /// Engine-assigned scheduling sequence number (unique; ties in `time`
    /// fire in scheduling order).
    pub seq: u64,
    /// Event slab index.
    pub id: u32,
}

/// Calendar-queue sizing: `1 << BUCKET_SHIFT` buckets of `1 << WIDTH_SHIFT`
/// picoseconds each. 4096 buckets × 1024 ps ≈ a 4.2 µs window, sized so
/// nanosecond-scale flit hops land one-per-bucket while only coarse timers
/// (pacing steps, failure schedules) overflow to the far heap.
const BUCKET_SHIFT: u32 = 12;
const WIDTH_SHIFT: u32 = 10;

/// A monotone priority queue over `(time, seq)` keys.
pub struct CalendarQueue {
    /// The bucket ring; see module docs for the invariants.
    buckets: Vec<Vec<CalEntry>>,
    /// `nbuckets - 1`, for masking a day onto the ring.
    mask: u64,
    /// Day the cursor is parked on; no queued event is earlier.
    cur_day: u64,
    /// Entries currently in the ring.
    ring_len: usize,
    /// Min-heap of events beyond the window.
    far: BinaryHeap<Reverse<CalEntry>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupancy: Vec<u64>,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    /// Creates an empty queue with the cursor parked on day zero.
    pub fn new() -> Self {
        let nbuckets = 1usize << BUCKET_SHIFT;
        CalendarQueue {
            buckets: vec![Vec::new(); nbuckets],
            mask: (nbuckets - 1) as u64,
            cur_day: 0,
            ring_len: 0,
            far: BinaryHeap::new(),
            occupancy: vec![0u64; nbuckets / 64],
        }
    }

    #[inline]
    fn day_of(time: u64) -> u64 {
        time >> WIDTH_SHIFT
    }

    #[inline]
    fn nbuckets(&self) -> u64 {
        self.mask + 1
    }

    /// Total queued entries (ring plus far heap).
    pub fn len(&self) -> usize {
        self.ring_len + self.far.len()
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn mark(&mut self, bucket: usize, occupied: bool) {
        let (word, bit) = (bucket / 64, bucket % 64);
        if occupied {
            self.occupancy[word] |= 1 << bit;
        } else {
            self.occupancy[word] &= !(1 << bit);
        }
    }

    /// Inserts an entry. Engine scheduling guarantees `entry.time` is never
    /// before the last popped time, which is what keeps the window
    /// invariant cheap to maintain.
    pub fn push(&mut self, entry: CalEntry) {
        let day = Self::day_of(entry.time);
        debug_assert!(day >= self.cur_day, "scheduling into a past day");
        if day >= self.cur_day + self.nbuckets() {
            self.far.push(Reverse(entry));
            return;
        }
        let bucket = (day & self.mask) as usize;
        let vec = &mut self.buckets[bucket];
        // Descending order: find the first element smaller than `entry`
        // and insert before it (back of the vec is the minimum).
        let pos = vec.partition_point(|e| (e.time, e.seq) > (entry.time, entry.seq));
        vec.insert(pos, entry);
        self.ring_len += 1;
        self.mark(bucket, true);
    }

    /// Moves far events whose day has entered the window into the ring.
    fn migrate_far(&mut self) {
        let window_end = self.cur_day + self.nbuckets();
        while let Some(Reverse(top)) = self.far.peek() {
            if Self::day_of(top.time) >= window_end {
                break;
            }
            // Far entries migrate through the normal insert path; `pop`
            // below has already advanced `cur_day`, so they land in-window.
            #[allow(clippy::expect_used)] // peek() above guarantees Some
            let Reverse(entry) = self.far.pop().expect("peeked entry present");
            let day = Self::day_of(entry.time);
            let bucket = (day & self.mask) as usize;
            let vec = &mut self.buckets[bucket];
            let pos = vec.partition_point(|e| (e.time, e.seq) > (entry.time, entry.seq));
            vec.insert(pos, entry);
            self.ring_len += 1;
            self.mark(bucket, true);
        }
    }

    /// Finds the first non-empty bucket at or after `cur_day` within the
    /// window, in day order, via the occupancy bitmap. Returns its day.
    fn next_occupied_day(&self) -> Option<u64> {
        if self.ring_len == 0 {
            return None;
        }
        let nbuckets = self.nbuckets() as usize;
        let start = (self.cur_day & self.mask) as usize;
        let words = self.occupancy.len();
        let (start_word, start_bit) = (start / 64, start % 64);
        // Scan the bitmap circularly from `start`; because every ring
        // event's day is within the window, circular distance from the
        // cursor equals day order. The start word is visited twice: its
        // high bits (>= start_bit) first, its low bits after the wrap.
        let to_day = |bucket: usize| {
            let dist = (bucket + nbuckets - start) % nbuckets;
            self.cur_day + dist as u64
        };
        let head = self.occupancy[start_word] & (u64::MAX << start_bit);
        if head != 0 {
            return Some(to_day(start_word * 64 + head.trailing_zeros() as usize));
        }
        for k in 1..=words {
            let wi = (start_word + k) % words;
            let mut w = self.occupancy[wi];
            if k == words {
                // Back at the start word: only the wrapped-around low bits
                // remain uninspected.
                if start_bit == 0 {
                    break;
                }
                w &= (1u64 << start_bit) - 1;
            }
            if w != 0 {
                return Some(to_day(wi * 64 + w.trailing_zeros() as usize));
            }
        }
        None
    }

    /// The smallest `(time, seq)` entry, if any, without removing it.
    pub fn peek(&self) -> Option<CalEntry> {
        let ring_min = self.next_occupied_day().and_then(|day| {
            let bucket = (day & self.mask) as usize;
            self.buckets[bucket].last().copied()
        });
        let far_min = self.far.peek().map(|Reverse(e)| *e);
        match (ring_min, far_min) {
            (Some(r), Some(f)) => Some(if (r.time, r.seq) <= (f.time, f.seq) {
                r
            } else {
                f
            }),
            (Some(r), None) => Some(r),
            (None, Some(f)) => Some(f),
            (None, None) => None,
        }
    }

    /// Removes and returns the smallest `(time, seq)` entry.
    pub fn pop(&mut self) -> Option<CalEntry> {
        if self.ring_len == 0 {
            // Ring drained: jump the cursor straight to the earliest far
            // day (if any) and refill the window.
            let Reverse(top) = self.far.peek()?;
            self.cur_day = Self::day_of(top.time);
            self.migrate_far();
        }
        loop {
            if let Some(day) = self.next_occupied_day() {
                if day != self.cur_day {
                    // Advance the cursor; far events may have entered the
                    // window and can sort before the ring's next day.
                    self.cur_day = day;
                    self.migrate_far();
                    continue;
                }
                let bucket = (day & self.mask) as usize;
                // Occupancy bit set implies a non-empty bucket.
                #[allow(clippy::expect_used)]
                let entry = self.buckets[bucket].pop().expect("occupied bucket");
                if self.buckets[bucket].is_empty() {
                    self.mark(bucket, false);
                }
                self.ring_len -= 1;
                return Some(entry);
            }
            // Ring empty again (migration raced the cursor forward).
            let Reverse(top) = self.far.peek()?;
            self.cur_day = Self::day_of(top.time);
            self.migrate_far();
        }
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    /// The seed implementation, kept as the ordering oracle: a max-heap of
    /// `Reverse` keys pops in ascending `(time, seq)` order.
    #[derive(Default)]
    struct HeapOracle {
        heap: BinaryHeap<Reverse<CalEntry>>,
    }

    impl HeapOracle {
        fn push(&mut self, e: CalEntry) {
            self.heap.push(Reverse(e));
        }

        fn pop(&mut self) -> Option<CalEntry> {
            self.heap.pop().map(|Reverse(e)| e)
        }
    }

    fn entry(time: u64, seq: u64) -> CalEntry {
        CalEntry {
            time,
            seq,
            id: seq as u32,
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(entry(500, 1));
        q.push(entry(100, 2));
        q.push(entry(500, 0));
        q.push(entry(100, 3));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.seq))
            .collect();
        assert_eq!(order, vec![(100, 2), (100, 3), (500, 0), (500, 1)]);
    }

    #[test]
    fn far_future_events_round_trip() {
        let mut q = CalendarQueue::new();
        // Beyond the 4096-day window: a millisecond-scale timer.
        q.push(entry(1_000_000_000, 0));
        q.push(entry(10, 1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().map(|e| e.seq), Some(1));
        assert_eq!(q.pop().map(|e| e.seq), Some(0));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn far_event_entering_window_sorts_before_later_ring_event() {
        let mut q = CalendarQueue::new();
        let width = 1u64 << WIDTH_SHIFT;
        let window = (1u64 << BUCKET_SHIFT) * width;
        // Event A lands just past the initial window -> far heap.
        q.push(entry(window + width, 0));
        // Drain a nearby event so the cursor advances.
        q.push(entry(width * 3, 1));
        assert_eq!(q.pop().map(|e| e.seq), Some(1));
        // Event B is now inside the window but *after* A in time.
        q.push(entry(window + 2 * width, 2));
        assert_eq!(
            q.pop().map(|e| e.seq),
            Some(0),
            "far event must not be overtaken"
        );
        assert_eq!(q.pop().map(|e| e.seq), Some(2));
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        for (i, t) in [700u64, 3, 900_000_000, 40_000, 3].iter().enumerate() {
            q.push(entry(*t, i as u64));
        }
        while let Some(p) = q.peek() {
            assert_eq!(q.pop(), Some(p));
        }
        assert!(q.peek().is_none());
    }

    #[test]
    fn interleaved_push_pop_when_time_advances() {
        let mut q = CalendarQueue::new();
        q.push(entry(100, 0));
        assert_eq!(q.pop().map(|e| e.seq), Some(0));
        // Schedule relative to the new "now" — same day and later days.
        q.push(entry(100, 1));
        q.push(entry(105, 2));
        q.push(entry(2_000_000, 3));
        assert_eq!(q.pop().map(|e| e.seq), Some(1));
        assert_eq!(q.pop().map(|e| e.seq), Some(2));
        assert_eq!(q.pop().map(|e| e.seq), Some(3));
    }

    proptest! {
        /// The calendar queue and the heap oracle agree on pop order for
        /// arbitrary monotone insert/pop interleavings (ops never schedule
        /// before the last popped time, matching the engine contract).
        #[test]
        fn matches_heap_oracle(
            ops in prop::collection::vec((0u64..3, 0u64..200_000u64), 1..400),
        ) {
            let mut cal = CalendarQueue::new();
            let mut oracle = HeapOracle::default();
            let mut seq = 0u64;
            let mut now = 0u64;
            for (op, delay) in ops {
                if op == 0 {
                    // Pop from both; results must match.
                    let a = cal.pop();
                    let b = oracle.pop();
                    prop_assert_eq!(a, b);
                    if let Some(e) = a {
                        now = e.time;
                    }
                } else {
                    // Push at now + delay (op==2 stretches far beyond the
                    // window to exercise the far heap).
                    let t = now + if op == 2 { delay * 100_000 } else { delay };
                    let e = entry(t, seq);
                    seq += 1;
                    cal.push(e);
                    oracle.push(e);
                }
            }
            // Drain both completely.
            loop {
                let a = cal.pop();
                let b = oracle.pop();
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert!(cal.is_empty());
        }
    }
}
