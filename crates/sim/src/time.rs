//! Simulated time: a 64-bit picosecond clock.
//!
//! Picosecond resolution lets the protocol layers express sub-nanosecond
//! serialization delays (a 68-byte flit at 64 GT/s ×16 serializes in well
//! under a nanosecond) without accumulating rounding error, while still
//! covering ~213 days of simulated time in a `u64`.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time (or a duration), in picoseconds.
///
/// `SimTime` is used for both instants and durations; the arithmetic
/// operators saturate rather than wrap so that pathological parameter
/// choices fail loudly in debug builds and degrade gracefully in release.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds (fractional values are rounded).
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "invalid nanosecond value: {ns}"
        );
        SimTime((ns * 1e3).round() as u64)
    }

    /// Creates a time from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        Self::from_ns(us * 1e3)
    }

    /// Creates a time from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Self::from_ns(ms * 1e6)
    }

    /// Creates a time from whole seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        Self::from_ns(s * 1e9)
    }

    /// Returns the raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the time in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the time in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the time in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` if `rhs > self`.
    #[inline]
    pub const fn checked_sub(self, rhs: SimTime) -> Option<SimTime> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Multiplies a duration by an integer count (saturating).
    #[inline]
    pub const fn times(self, n: u64) -> SimTime {
        SimTime(self.0.saturating_mul(n))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;

    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        self.times(rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;

    /// Divides a duration by an integer count.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == u64::MAX {
            write!(f, "t=inf")
        } else if ps >= 1_000_000_000_000 {
            write!(f, "{:.6}s", self.as_secs())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us())
        } else {
            write!(f, "{:.3}ns", self.as_ns())
        }
    }
}

/// Computes the wire serialization time of `bytes` at `gbps` gigabits/s.
///
/// # Panics
///
/// Panics if `gbps` is not strictly positive.
pub fn serialization_time(bytes: u64, gbps: f64) -> SimTime {
    assert!(gbps > 0.0, "link rate must be positive");
    // bits / (Gbit/s) = nanoseconds; keep in f64 then round to ps.
    SimTime::from_ns(bytes as f64 * 8.0 / gbps)
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ns(1575.3);
        assert!((t.as_ns() - 1575.3).abs() < 1e-9);
        assert_eq!(SimTime::from_us(1.0), SimTime::from_ns(1000.0));
        assert_eq!(SimTime::from_ms(1.0), SimTime::from_us(1000.0));
        assert_eq!(SimTime::from_secs(1.0), SimTime::from_ms(1000.0));
        assert_eq!(SimTime::from_ps(1500), SimTime::from_ns(1.5));
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX + SimTime::from_ns(1.0), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_ns(1.0), SimTime::ZERO);
        assert_eq!(
            SimTime::from_ns(2.0).checked_sub(SimTime::from_ns(3.0)),
            None
        );
        assert_eq!(
            SimTime::from_ns(3.0).checked_sub(SimTime::from_ns(2.0)),
            Some(SimTime::from_ns(1.0))
        );
    }

    #[test]
    fn mul_div_sum() {
        let t = SimTime::from_ns(10.0);
        assert_eq!(t * 3, SimTime::from_ns(30.0));
        assert_eq!(t / 4, SimTime::from_ps(2500));
        let total: SimTime = (0..5).map(|_| t).sum();
        assert_eq!(total, SimTime::from_ns(50.0));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_ns(5.4)), "5.400ns");
        assert_eq!(format!("{}", SimTime::from_us(3.0)), "3.000us");
        assert_eq!(format!("{}", SimTime::from_secs(2.0)), "2.000000s");
        assert_eq!(format!("{}", SimTime::MAX), "t=inf");
    }

    #[test]
    fn serialization_time_matches_hand_math() {
        // 64 bytes at 512 Gbit/s = 1 ns.
        assert_eq!(serialization_time(64, 512.0), SimTime::from_ns(1.0));
        // 68-byte flit on a x16 CXL link at 64 GT/s ~ 1024 Gbit/s raw.
        let t = serialization_time(68, 1024.0);
        assert!((t.as_ns() - 0.531).abs() < 0.001);
    }

    #[test]
    #[should_panic(expected = "invalid nanosecond")]
    fn negative_ns_rejected() {
        let _ = SimTime::from_ns(-1.0);
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_ns(1.0);
        let b = SimTime::from_ns(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    proptest! {
        #[test]
        fn add_is_monotonic(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let ta = SimTime::from_ps(a);
            let tb = SimTime::from_ps(b);
            prop_assert!(ta + tb >= ta);
            prop_assert!(ta + tb >= tb);
        }

        #[test]
        fn sub_then_add_round_trips(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            let d = SimTime::from_ps(hi) - SimTime::from_ps(lo);
            prop_assert_eq!(SimTime::from_ps(lo) + d, SimTime::from_ps(hi));
        }

        #[test]
        fn ns_round_trip_within_half_ps(ns in 0.0f64..1e9) {
            let t = SimTime::from_ns(ns);
            prop_assert!((t.as_ns() - ns).abs() <= 0.0005 + ns * 1e-12);
        }
    }
}
