//! Queueing helpers shared by the fabric models: a byte-granular token
//! bucket used for bandwidth throttling and arbiter reservations.

use crate::time::SimTime;

/// A token bucket metering bytes at a configured rate.
///
/// Tokens accrue continuously at `rate_gbps`; a transfer of `n` bytes may
/// proceed when `n` tokens are available, otherwise [`TokenBucket::earliest`]
/// reports when it could proceed. The bucket capacity bounds burst size.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bytes_per_ns: f64,
    capacity_bytes: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Creates a bucket with the given sustained rate and burst capacity.
    ///
    /// # Panics
    ///
    /// Panics if `rate_gbps` or `capacity_bytes` is not strictly positive.
    pub fn new(rate_gbps: f64, capacity_bytes: u64) -> Self {
        assert!(rate_gbps > 0.0, "rate must be positive");
        assert!(capacity_bytes > 0, "capacity must be positive");
        TokenBucket {
            rate_bytes_per_ns: rate_gbps / 8.0,
            capacity_bytes: capacity_bytes as f64,
            tokens: capacity_bytes as f64,
            last_refill: SimTime::ZERO,
        }
    }

    /// Returns the configured sustained rate in Gbit/s.
    pub fn rate_gbps(&self) -> f64 {
        self.rate_bytes_per_ns * 8.0
    }

    /// Replaces the sustained rate (used by the arbiter to re-provision a
    /// flow), keeping accumulated tokens.
    ///
    /// # Panics
    ///
    /// Panics if `rate_gbps` is not strictly positive.
    pub fn set_rate(&mut self, now: SimTime, rate_gbps: f64) {
        assert!(rate_gbps > 0.0, "rate must be positive");
        self.refill(now);
        self.rate_bytes_per_ns = rate_gbps / 8.0;
    }

    fn refill(&mut self, now: SimTime) {
        let dt = (now - self.last_refill).as_ns();
        self.tokens = (self.tokens + dt * self.rate_bytes_per_ns).min(self.capacity_bytes);
        self.last_refill = now;
    }

    /// Attempts to consume `bytes` tokens at `now`; returns whether the
    /// transfer may proceed immediately.
    pub fn try_consume(&mut self, now: SimTime, bytes: u64) -> bool {
        self.refill(now);
        let need = bytes as f64;
        if self.tokens >= need {
            self.tokens -= need;
            true
        } else {
            false
        }
    }

    /// Returns the earliest time at which `bytes` tokens will be available,
    /// without consuming them.
    pub fn earliest(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.refill(now);
        let need = bytes as f64;
        if self.tokens >= need {
            now
        } else {
            let deficit = need - self.tokens;
            now + SimTime::from_ns(deficit / self.rate_bytes_per_ns)
        }
    }

    /// Consumes `bytes` tokens unconditionally, allowing the balance to go
    /// negative conceptually by clamping at zero plus recording debt via
    /// the earliest-time computation. Prefer [`TokenBucket::try_consume`].
    pub fn force_consume(&mut self, now: SimTime, bytes: u64) {
        self.refill(now);
        self.tokens -= bytes as f64;
    }

    /// Current token balance in bytes (may be negative after
    /// [`TokenBucket::force_consume`]).
    pub fn balance(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_bucket_allows_burst() {
        let mut tb = TokenBucket::new(8.0, 1024); // 1 byte/ns.
        assert!(tb.try_consume(SimTime::ZERO, 1024));
        assert!(!tb.try_consume(SimTime::ZERO, 1));
    }

    #[test]
    fn refills_at_rate() {
        let mut tb = TokenBucket::new(8.0, 1000); // 1 byte/ns.
        assert!(tb.try_consume(SimTime::ZERO, 1000));
        // After 500 ns, 500 bytes are available.
        assert!(tb.try_consume(SimTime::from_ns(500.0), 500));
        assert!(!tb.try_consume(SimTime::from_ns(500.0), 1));
    }

    #[test]
    fn earliest_predicts_availability() {
        let mut tb = TokenBucket::new(8.0, 1000);
        assert!(tb.try_consume(SimTime::ZERO, 1000));
        let t = tb.earliest(SimTime::ZERO, 250);
        assert_eq!(t, SimTime::from_ns(250.0));
        // And it is actually available then.
        assert!(tb.try_consume(t, 250));
    }

    #[test]
    fn capacity_caps_accumulation() {
        let mut tb = TokenBucket::new(8.0, 100);
        // Long idle: still only 100 bytes of burst.
        assert!(tb.try_consume(SimTime::from_secs(1.0), 100));
        assert!(!tb.try_consume(SimTime::from_secs(1.0), 1));
    }

    #[test]
    fn set_rate_reprovisions() {
        let mut tb = TokenBucket::new(8.0, 1000);
        assert!(tb.try_consume(SimTime::ZERO, 1000));
        tb.set_rate(SimTime::ZERO, 16.0); // 2 bytes/ns.
        let t = tb.earliest(SimTime::ZERO, 1000);
        assert_eq!(t, SimTime::from_ns(500.0));
    }

    #[test]
    fn force_consume_goes_negative() {
        let mut tb = TokenBucket::new(8.0, 100);
        tb.force_consume(SimTime::ZERO, 300);
        assert!(tb.balance() < 0.0);
        let t = tb.earliest(SimTime::ZERO, 0);
        // Zero-byte request still waits for debt? No: zero bytes needs no
        // tokens beyond non-negative balance; earliest() reports when the
        // deficit clears.
        assert!(t > SimTime::ZERO);
    }
}
