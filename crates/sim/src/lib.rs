#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Deterministic discrete-event simulation core for the FCC reproduction.
//!
//! Every hardware model in this workspace (links, switches, memory nodes,
//! cache hierarchies) is a [`Component`] driven by a single-threaded
//! [`Engine`]. Components communicate exclusively by scheduling timestamped
//! messages; the engine pops events in `(time, sequence)` order, so two runs
//! with the same seed produce byte-identical traces.
//!
//! # Examples
//!
//! ```
//! use fcc_sim::{Component, Ctx, Engine, Msg, SimTime};
//!
//! struct Echo {
//!     heard: u64,
//! }
//!
//! impl Component for Echo {
//!     fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {
//!         self.heard += 1;
//!     }
//! }
//!
//! let mut engine = Engine::new(7);
//! let echo = engine.add_component("echo", Echo { heard: 0 });
//! engine.post(echo, SimTime::from_ns(5.0), 42u32);
//! engine.run_until_idle();
//! assert_eq!(engine.component::<Echo>(echo).heard, 1);
//! assert_eq!(engine.now(), SimTime::from_ns(5.0));
//! ```

pub mod calendar;
pub mod engine;
pub mod queueing;
pub mod shard;
pub mod stats;
pub mod time;

pub use engine::{
    thread_events_dispatched, Component, ComponentId, Ctx, DeadlockReport, Engine, Msg, MsgBatch,
    PendingWork, StuckComponent, TraceEntry,
};
pub use queueing::TokenBucket;
pub use shard::{ShardGateway, ShardedEngine};
pub use stats::{jain_fairness, Counter, Gauge, Histogram, Summary, SummaryNs};
pub use time::serialization_time;
pub use time::SimTime;
