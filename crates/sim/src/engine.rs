//! The discrete-event engine: components, messages, and the event loop.
//!
//! Design notes:
//!
//! * Events are totally ordered by `(time, sequence)`; the sequence number is
//!   assigned at scheduling time, which makes simultaneous events fire in
//!   scheduling order and keeps runs deterministic.
//! * The pending set lives in an indexed calendar queue (see
//!   [`crate::calendar`]) holding 24-byte `(time, seq, id)` entries; event
//!   bodies sit in a slab recycled through a free list, so the steady-state
//!   loop schedules and retires events without allocating.
//! * Consecutive same-timestamp messages to one component are delivered as
//!   a single batch: the component is checked out of its slot once and
//!   receives the run through [`Component::on_batch`] (default: a loop over
//!   [`Component::on_msg`]), which spares the per-event slot bookkeeping on
//!   burst traffic.
//! * Components are owned by the engine in a slab. During dispatch the
//!   target component is temporarily moved out, so a component may freely
//!   schedule messages (including to itself) through [`Ctx`] without
//!   aliasing the component storage.
//! * Message payloads are `Box<dyn Any>`: each subsystem defines its own
//!   payload types and downcasts on receipt (see [`Msg::downcast`]).

use std::any::Any;
use std::cell::Cell;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::calendar::{CalEntry, CalendarQueue};
use crate::time::SimTime;

/// Identifies a component registered with an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(u32);

impl ComponentId {
    /// Returns the raw slab index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A delivered message: the sender, plus an opaque payload.
///
/// Payloads are `Send` so whole engines can move across worker threads
/// in the sharded executor (see [`crate::shard`]).
pub struct Msg {
    /// The component that scheduled this message, if any (`None` for
    /// messages posted by the harness through [`Engine::post`]).
    pub src: Option<ComponentId>,
    payload: Box<dyn Any + Send>,
    type_name: &'static str,
}

impl Msg {
    /// Attempts to downcast the payload to `T`, returning the original
    /// message on failure so dispatch chains can keep matching.
    pub fn downcast<T: 'static>(self) -> Result<T, Msg> {
        match self.payload.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(payload) => Err(Msg {
                src: self.src,
                payload,
                type_name: self.type_name,
            }),
        }
    }

    /// Returns a reference to the payload if it is a `T`.
    pub fn peek<T: 'static>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }

    /// Returns the payload's concrete type name, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        self.type_name
    }

    /// Splits the message into its boxed payload and type name without
    /// downcasting. The shard gateway uses this to relay payloads it
    /// does not understand (see [`crate::shard`]).
    pub(crate) fn into_parts(self) -> (Box<dyn Any + Send>, &'static str) {
        (self.payload, self.type_name)
    }
}

impl std::fmt::Debug for Msg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Msg")
            .field("src", &self.src)
            .field("payload", &self.type_name())
            .finish()
    }
}

/// In-flight work a component reports for post-drain deadlock analysis.
#[derive(Debug, Clone)]
pub struct PendingWork {
    /// What the component is waiting for (e.g. `"txn 42 (RdOwn)"`).
    pub what: String,
    /// The component being waited on, if known — used to build the
    /// wait-for graph.
    pub waiting_on: Option<ComponentId>,
}

/// A run of same-timestamp messages delivered to one component in one
/// [`Component::on_batch`] call. Draining it yields the messages in their
/// original `(time, seq)` order.
pub struct MsgBatch<'a> {
    /// The run, stored in *reverse* delivery order so `next_msg` is a
    /// plain `pop`.
    msgs: &'a mut Vec<Msg>,
}

impl MsgBatch<'_> {
    /// Takes the next message of the batch, if any.
    pub fn next_msg(&mut self) -> Option<Msg> {
        self.msgs.pop()
    }

    /// Messages not yet taken.
    pub fn remaining(&self) -> usize {
        self.msgs.len()
    }
}

/// A simulated hardware or software entity driven by timestamped messages.
///
/// The `Any` supertrait allows [`Engine::component`] to hand back concrete
/// types via trait upcasting. The `Send` supertrait lets the sharded
/// executor (see [`crate::shard`]) move whole engines — components
/// included — onto worker threads.
pub trait Component: Any + Send {
    /// Handles one message delivered at the current simulation time.
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg);

    /// Handles a run of same-timestamp messages in one call. The engine
    /// uses this when several queued messages share a timestamp and a
    /// target; the default forwards each message to
    /// [`Component::on_msg`] in order, so implementors only override it
    /// when they can exploit the batch (e.g. coalescing bookkeeping).
    /// Messages left in the batch are delivered through `on_msg` by the
    /// engine afterwards — none are dropped.
    fn on_batch(&mut self, ctx: &mut Ctx<'_>, batch: &mut MsgBatch<'_>) {
        while let Some(msg) = batch.next_msg() {
            self.on_msg(ctx, msg);
        }
    }

    /// Appends work this component considers unfinished, for
    /// [`Engine::deadlock_report`]. A component with queued requests,
    /// unacknowledged transactions, or undelivered grants should push
    /// them here; the default (no pending work) suits pure sinks and
    /// stateless components. Taking an out-parameter (rather than
    /// returning a `Vec`) lets the deadlock scan reuse one buffer across
    /// every component instead of allocating per call.
    fn outstanding(&self, out: &mut Vec<PendingWork>) {
        let _ = out;
    }
}

enum EventKind {
    Message { target: ComponentId, msg: Msg },
    Call(Box<dyn FnOnce(&mut Engine) + Send>),
}

/// One slab slot: an event body, or a link in the free list.
enum Slot {
    Occupied(EventKind),
    Vacant { next_free: u32 },
}

/// Free-list terminator.
const NO_FREE: u32 = u32::MAX;

thread_local! {
    /// Events dispatched by engines that finished on this thread; see
    /// [`thread_events_dispatched`].
    static THREAD_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Total events dispatched by every [`Engine`] *dropped* on the calling
/// thread so far. The experiment harness samples this around a scenario to
/// compute events/second; engines flush their counter on drop, so the
/// delta is exact once a scenario's engines have been torn down.
pub fn thread_events_dispatched() -> u64 {
    THREAD_EVENTS.with(|c| c.get())
}

/// Engine state shared with components during dispatch.
struct EngineCore {
    now: SimTime,
    seq: u64,
    queue: CalendarQueue,
    /// Event bodies, indexed by the calendar entries' `id`.
    slab: Vec<Slot>,
    /// Head of the vacant-slot chain threaded through `slab`.
    free_head: u32,
    rng: StdRng,
    events_dispatched: u64,
}

impl EngineCore {
    fn push(&mut self, time: SimTime, kind: EventKind) {
        debug_assert!(time >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        let id = if self.free_head != NO_FREE {
            let id = self.free_head;
            match std::mem::replace(&mut self.slab[id as usize], Slot::Occupied(kind)) {
                Slot::Vacant { next_free } => self.free_head = next_free,
                // fcc-lint: allow(panic-in-lib) -- slab free-list invariant: a vacant head is vacant
                Slot::Occupied(_) => unreachable!("free list pointed at an occupied slot"),
            }
            id
        } else {
            self.slab.push(Slot::Occupied(kind));
            (self.slab.len() - 1) as u32
        };
        self.queue.push(CalEntry {
            time: time.as_ps(),
            seq,
            id,
        });
    }

    /// Retires slab slot `id`, returning its event body.
    fn take(&mut self, id: u32) -> EventKind {
        let slot = std::mem::replace(
            &mut self.slab[id as usize],
            Slot::Vacant {
                next_free: self.free_head,
            },
        );
        self.free_head = id;
        match slot {
            Slot::Occupied(kind) => kind,
            // fcc-lint: allow(panic-in-lib) -- slab invariant: queue entries reference occupied slots
            Slot::Vacant { .. } => unreachable!("queue entry pointed at a vacant slot"),
        }
    }

    /// Whether queue entry `e` is a message for `target` (used to extend
    /// a delivery batch without retiring the slot yet).
    fn is_message_for(&self, e: CalEntry, target: ComponentId) -> bool {
        matches!(
            &self.slab[e.id as usize],
            Slot::Occupied(EventKind::Message { target: t, .. }) if *t == target
        )
    }
}

/// One recorded dispatch, kept by the engine's trace ring.
///
/// The target is stored as a [`ComponentId`] (not a name clone); resolve
/// it with [`Engine::trace_target_name`] when rendering.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Dispatch time.
    pub at: SimTime,
    /// Target component (`None` for harness closures).
    pub target: Option<ComponentId>,
    /// Payload type name (`"<closure>"` for harness closures).
    pub payload: &'static str,
}

/// The single-threaded discrete-event simulation engine.
pub struct Engine {
    core: EngineCore,
    components: Vec<Option<Box<dyn Component>>>,
    names: Vec<String>,
    trace: Option<(usize, std::collections::VecDeque<TraceEntry>)>,
    /// Reusable buffer for batched same-timestamp delivery.
    batch_buf: Vec<Msg>,
}

impl Engine {
    /// Creates an engine with a deterministic RNG seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        Engine {
            core: EngineCore {
                now: SimTime::ZERO,
                seq: 0,
                queue: CalendarQueue::new(),
                slab: Vec::new(),
                free_head: NO_FREE,
                rng: StdRng::seed_from_u64(seed),
                events_dispatched: 0,
            },
            components: Vec::new(),
            names: Vec::new(),
            trace: None,
            batch_buf: Vec::new(),
        }
    }

    /// Enables the dispatch trace ring, keeping the last `capacity`
    /// events. Entries are two words plus a timestamp (the target is an
    /// interned [`ComponentId`]), so the ring costs no allocation per
    /// dispatch; leave off in experiments, turn on to debug a stuck or
    /// misbehaving model.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace(&mut self, capacity: usize) {
        assert!(capacity > 0, "empty trace ring");
        self.trace = Some((
            capacity,
            std::collections::VecDeque::with_capacity(capacity),
        ));
    }

    /// The recorded trace entries, oldest first (empty unless enabled).
    /// Borrows from the ring instead of cloning it; use
    /// [`Engine::trace_target_name`] to render targets.
    pub fn trace(&self) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.trace.iter().flat_map(|(_, ring)| ring.iter())
    }

    /// Resolves a trace entry's target to its registered name
    /// (`"<call>"` for harness closures).
    pub fn trace_target_name(&self, entry: &TraceEntry) -> &str {
        match entry.target {
            Some(id) => &self.names[id.index()],
            None => "<call>",
        }
    }

    fn record_trace(&mut self, at: SimTime, target: Option<ComponentId>, payload: &'static str) {
        if let Some((cap, ring)) = self.trace.as_mut() {
            if ring.len() == *cap {
                ring.pop_front();
            }
            ring.push_back(TraceEntry {
                at,
                target,
                payload,
            });
        }
    }

    /// Registers a component and returns its id.
    pub fn add_component<C: Component>(
        &mut self,
        name: impl Into<String>,
        component: C,
    ) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        self.components.push(Some(Box::new(component)));
        self.names.push(name.into());
        id
    }

    /// Returns the registered name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this engine.
    pub fn name(&self, id: ComponentId) -> &str {
        &self.names[id.index()]
    }

    /// Returns the current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Returns the number of events dispatched so far.
    #[inline]
    pub fn events_dispatched(&self) -> u64 {
        self.core.events_dispatched
    }

    /// Returns the number of events still pending.
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.core.queue.len()
    }

    /// Returns the timestamp of the earliest pending event, if any.
    ///
    /// The sharded executor uses this to compute the global minimum
    /// next-event time that anchors each conservative epoch.
    #[inline]
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.core.queue.peek().map(|e| SimTime::from_ps(e.time))
    }

    /// Immutable access to a component, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is foreign, the component is mid-dispatch, or the
    /// concrete type is not `C`.
    pub fn component<C: Component>(&self, id: ComponentId) -> &C {
        // Documented-panic accessor: the slot is empty only during that
        // component's own dispatch, which cannot reenter the engine.
        #[allow(clippy::expect_used)]
        let b = self.components[id.index()]
            .as_ref()
            .expect("component is mid-dispatch");
        (b.as_ref() as &dyn Any)
            .downcast_ref::<C>()
            .unwrap_or_else(|| {
                // fcc-lint: allow(panic-in-lib) -- documented API contract: wrong-type downcast is caller error
                panic!(
                    "component {} is not a {}",
                    self.names[id.index()],
                    std::any::type_name::<C>()
                )
            })
    }

    /// Mutable access to a component, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Engine::component`].
    pub fn component_mut<C: Component>(&mut self, id: ComponentId) -> &mut C {
        let name: &str = &self.names[id.index()];
        // Same invariant as `component`: only empty during own dispatch.
        #[allow(clippy::expect_used)]
        let b = self.components[id.index()]
            .as_mut()
            .expect("component is mid-dispatch");
        (b.as_mut() as &mut dyn Any)
            .downcast_mut::<C>()
            // fcc-lint: allow(panic-in-lib) -- documented API contract: wrong-type downcast is caller error
            .unwrap_or_else(|| panic!("component {name} is not a {}", std::any::type_name::<C>()))
    }

    /// Schedules a message from the harness (no source component).
    pub fn post<T: Send + 'static>(&mut self, target: ComponentId, at: SimTime, payload: T) {
        assert!(
            target.index() < self.components.len(),
            "unknown component id"
        );
        let at = at.max(self.core.now);
        self.core.push(
            at,
            EventKind::Message {
                target,
                msg: Msg {
                    src: None,
                    payload: Box::new(payload),
                    type_name: std::any::type_name::<T>(),
                },
            },
        );
    }

    /// Schedules an already-boxed payload from the harness, preserving its
    /// recorded type name so receivers can still downcast. Used by the
    /// sharded executor to inject cross-shard messages (see
    /// [`crate::shard`]).
    pub(crate) fn post_boxed(
        &mut self,
        target: ComponentId,
        at: SimTime,
        payload: Box<dyn Any + Send>,
        type_name: &'static str,
    ) {
        assert!(
            target.index() < self.components.len(),
            "unknown component id"
        );
        let at = at.max(self.core.now);
        self.core.push(
            at,
            EventKind::Message {
                target,
                msg: Msg {
                    src: None,
                    payload,
                    type_name,
                },
            },
        );
    }

    /// Schedules a closure to run against the full engine at time `at`.
    ///
    /// Useful for harness-side load injection and probing: unlike a
    /// component, the closure may inspect and mutate any component.
    pub fn call_at(&mut self, at: SimTime, f: impl FnOnce(&mut Engine) + Send + 'static) {
        let at = at.max(self.core.now);
        self.core.push(at, EventKind::Call(Box::new(f)));
    }

    /// Direct access to the deterministic RNG (harness use).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.rng
    }

    fn dispatch(&mut self, entry: CalEntry) {
        let time = SimTime::from_ps(entry.time);
        self.core.now = time;
        match self.core.take(entry.id) {
            EventKind::Message { target, msg } => self.dispatch_messages(time, target, msg),
            EventKind::Call(f) => {
                self.core.events_dispatched += 1;
                if self.trace.is_some() {
                    self.record_trace(time, None, "<closure>");
                }
                f(self)
            }
        }
    }

    /// Delivers `first` plus any directly following queued messages that
    /// share its timestamp and target, checking the component out of its
    /// slot once for the whole run.
    fn dispatch_messages(&mut self, time: SimTime, target: ComponentId, first: Msg) {
        // Collect the run. Only *already queued* events join the batch;
        // messages the handler schedules for the same timestamp keep
        // their larger sequence numbers and fire in global order later.
        debug_assert!(self.batch_buf.is_empty());
        self.batch_buf.push(first);
        while let Some(next) = self.core.queue.peek() {
            if next.time != time.as_ps() || !self.core.is_message_for(next, target) {
                break;
            }
            let Some(e) = self.core.queue.pop() else {
                break;
            };
            match self.core.take(e.id) {
                EventKind::Message { msg, .. } => self.batch_buf.push(msg),
                // fcc-lint: allow(panic-in-lib) -- is_message_for only matches Message entries
                EventKind::Call(_) => unreachable!("is_message_for matched a closure"),
            }
        }
        let n = self.batch_buf.len();
        self.core.events_dispatched += n as u64;
        if self.trace.is_some() {
            for i in 0..n {
                self.record_trace(time, Some(target), self.batch_buf[i].type_name);
            }
        }
        // The engine is single-threaded and dispatch cannot reenter, so
        // the slot is always occupied here.
        #[allow(clippy::expect_used)]
        let mut component = self.components[target.index()]
            .take()
            .expect("component received a message while mid-dispatch");
        let mut msgs = std::mem::take(&mut self.batch_buf);
        {
            let mut ctx = Ctx {
                core: &mut self.core,
                self_id: target,
            };
            if n == 1 {
                if let Some(msg) = msgs.pop() {
                    component.on_msg(&mut ctx, msg);
                }
            } else {
                // MsgBatch pops from the back, so flip into reverse
                // delivery order first.
                msgs.reverse();
                let mut batch = MsgBatch { msgs: &mut msgs };
                component.on_batch(&mut ctx, &mut batch);
                // Safety net: a partial override must not lose messages.
                while let Some(msg) = batch.next_msg() {
                    component.on_msg(&mut ctx, msg);
                }
            }
        }
        msgs.clear();
        self.batch_buf = msgs;
        self.components[target.index()] = Some(component);
    }

    /// Runs one event; returns `false` when the queue is empty. A batched
    /// delivery counts as one step even when it retires several events.
    pub fn step(&mut self) -> bool {
        match self.core.queue.pop() {
            Some(entry) => {
                self.dispatch(entry);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains and returns the final time.
    pub fn run_until_idle(&mut self) -> SimTime {
        while self.step() {}
        self.core.now
    }

    /// Runs until the queue drains or the clock passes `deadline`.
    ///
    /// Events scheduled after `deadline` remain queued; the clock is left at
    /// the later of its current value and `deadline` only if an event
    /// actually reached it (the clock never runs ahead of dispatched work).
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        loop {
            match self.core.queue.peek() {
                Some(e) if e.time <= deadline.as_ps() => {}
                _ => break,
            }
            if let Some(entry) = self.core.queue.pop() {
                self.dispatch(entry);
            }
        }
        self.core.now
    }

    /// Runs for an additional `duration` of simulated time.
    pub fn run_for(&mut self, duration: SimTime) -> SimTime {
        let deadline = self.core.now + duration;
        self.run_until(deadline)
    }

    /// Analyzes the simulation for a deadlock after the event queue has
    /// drained.
    ///
    /// An idle queue with components still reporting
    /// [`outstanding`](Component::outstanding) work means transactions
    /// were lost or are mutually blocked: no future event can complete
    /// them. The report lists every stuck component and, from the
    /// `waiting_on` edges, any wait-for cycles (the classic
    /// credit-deadlock signature of §3 D#3).
    ///
    /// Returns `None` when events are still pending (the system may yet
    /// make progress) or when nothing is outstanding (a clean drain).
    pub fn deadlock_report(&self) -> Option<DeadlockReport> {
        if !self.core.queue.is_empty() {
            return None;
        }
        let mut stuck = Vec::new();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut work: Vec<PendingWork> = Vec::new();
        for (idx, slot) in self.components.iter().enumerate() {
            let Some(component) = slot.as_ref() else {
                continue;
            };
            work.clear();
            component.outstanding(&mut work);
            for w in work.drain(..) {
                if let Some(target) = w.waiting_on {
                    edges.push((idx, target.index()));
                }
                stuck.push(StuckComponent {
                    component: self.names[idx].clone(),
                    what: w.what,
                    waiting_on: w.waiting_on.map(|t| self.names[t.index()].clone()),
                });
            }
        }
        if stuck.is_empty() {
            return None;
        }
        Some(DeadlockReport {
            cycles: find_cycles(self.components.len(), &edges)
                .into_iter()
                .map(|cycle| cycle.into_iter().map(|i| self.names[i].clone()).collect())
                .collect(),
            stuck,
        })
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        THREAD_EVENTS.with(|c| c.set(c.get() + self.core.events_dispatched));
    }
}

/// One component's stranded work inside a [`DeadlockReport`].
#[derive(Debug, Clone)]
pub struct StuckComponent {
    /// The component's registered name.
    pub component: String,
    /// Its description of the stranded work.
    pub what: String,
    /// The name of the component it waits on, if reported.
    pub waiting_on: Option<String>,
}

/// Stranded in-flight work found after the event queue drained.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// Every component with outstanding work.
    pub stuck: Vec<StuckComponent>,
    /// Wait-for cycles among the stuck components (each a list of
    /// component names; empty when the blockage is acyclic, e.g. a
    /// single lost message).
    pub cycles: Vec<Vec<String>>,
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "deadlock: queue drained with {} component(s) stuck",
            self.stuck.len()
        )?;
        for s in &self.stuck {
            match &s.waiting_on {
                Some(t) => writeln!(f, "  {}: {} (waiting on {t})", s.component, s.what)?,
                None => writeln!(f, "  {}: {}", s.component, s.what)?,
            }
        }
        for cycle in &self.cycles {
            writeln!(f, "  wait-for cycle: {}", cycle.join(" -> "))?;
        }
        Ok(())
    }
}

/// Finds elementary cycles in the wait-for graph by walking each node's
/// out-edges depth-first (the graphs here are tiny: one node per stuck
/// component).
fn find_cycles(nodes: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); nodes];
    for &(a, b) in edges {
        if !adj[a].contains(&b) {
            adj[a].push(b);
        }
    }
    let mut cycles: Vec<Vec<usize>> = Vec::new();
    let mut in_cycle = vec![false; nodes];
    for start in 0..nodes {
        if in_cycle[start] {
            continue;
        }
        // Iterative DFS tracking the current path.
        let mut path = vec![start];
        let mut iters = vec![0usize];
        while let Some(&node) = path.last() {
            let it = match iters.last_mut() {
                Some(it) => it,
                None => break,
            };
            if let Some(&next) = adj[node].get(*it) {
                *it += 1;
                if let Some(pos) = path.iter().position(|&n| n == next) {
                    let cycle: Vec<usize> = path[pos..].to_vec();
                    if cycle.iter().any(|&n| !in_cycle[n]) {
                        for &n in &cycle {
                            in_cycle[n] = true;
                        }
                        cycles.push(cycle);
                    }
                } else {
                    path.push(next);
                    iters.push(0);
                }
            } else {
                path.pop();
                iters.pop();
            }
        }
    }
    cycles
}

/// Per-dispatch context handed to [`Component::on_msg`].
pub struct Ctx<'a> {
    core: &'a mut EngineCore,
    self_id: ComponentId,
}

impl Ctx<'_> {
    /// Returns the current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Returns the id of the component being dispatched.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedules `payload` for `target` after `delay`.
    pub fn send<T: Send + 'static>(&mut self, target: ComponentId, delay: SimTime, payload: T) {
        let at = self.core.now + delay;
        self.core.push(
            at,
            EventKind::Message {
                target,
                msg: Msg {
                    src: Some(self.self_id),
                    payload: Box::new(payload),
                    type_name: std::any::type_name::<T>(),
                },
            },
        );
    }

    /// Schedules `payload` back to the current component after `delay`.
    pub fn send_self<T: Send + 'static>(&mut self, delay: SimTime, payload: T) {
        self.send(self.self_id, delay, payload);
    }

    /// Schedules an already-boxed payload for `target`, preserving its
    /// recorded type name. The shard gateway relays opaque payloads to
    /// its local switch with this (see [`crate::shard`]).
    pub(crate) fn send_boxed(
        &mut self,
        target: ComponentId,
        delay: SimTime,
        payload: Box<dyn Any + Send>,
        type_name: &'static str,
    ) {
        let at = self.core.now + delay;
        self.core.push(
            at,
            EventKind::Message {
                target,
                msg: Msg {
                    src: Some(self.self_id),
                    payload,
                    type_name,
                },
            },
        );
    }

    /// The deterministic RNG shared by the whole simulation.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.rng
    }
}

#[cfg(test)]
mod tests {
    use rand::Rng;

    use super::*;

    struct Recorder {
        log: Vec<(SimTime, u32)>,
    }

    impl Component for Recorder {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let v = msg.downcast::<u32>().expect("u32 payload");
            self.log.push((ctx.now(), v));
        }
    }

    struct PingPong {
        peer: Option<ComponentId>,
        remaining: u32,
        bounces: u32,
    }

    struct Ball;

    impl Component for PingPong {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let _ = msg.downcast::<Ball>().expect("ball");
            self.bounces += 1;
            if self.remaining > 0 {
                self.remaining -= 1;
                let peer = self.peer.expect("peer wired");
                ctx.send(peer, SimTime::from_ns(10.0), Ball);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let mut engine = Engine::new(0);
        let rec = engine.add_component("rec", Recorder { log: vec![] });
        engine.post(rec, SimTime::from_ns(20.0), 2u32);
        engine.post(rec, SimTime::from_ns(10.0), 1u32);
        engine.post(rec, SimTime::from_ns(20.0), 3u32);
        engine.post(rec, SimTime::from_ns(20.0), 4u32);
        engine.run_until_idle();
        let log = &engine.component::<Recorder>(rec).log;
        let values: Vec<u32> = log.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![1, 2, 3, 4]);
        assert_eq!(log[0].0, SimTime::from_ns(10.0));
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut engine = Engine::new(0);
        let a = engine.add_component(
            "a",
            PingPong {
                peer: None,
                remaining: 5,
                bounces: 0,
            },
        );
        let b = engine.add_component(
            "b",
            PingPong {
                peer: None,
                remaining: 5,
                bounces: 0,
            },
        );
        engine.component_mut::<PingPong>(a).peer = Some(b);
        engine.component_mut::<PingPong>(b).peer = Some(a);
        engine.post(a, SimTime::ZERO, Ball);
        engine.run_until_idle();
        let ba = engine.component::<PingPong>(a).bounces;
        let bb = engine.component::<PingPong>(b).bounces;
        // a: initial + returns; total bounces = 1 + 5 + 5 = 11 dispatches.
        assert_eq!(ba + bb, 11);
        assert_eq!(engine.now(), SimTime::from_ns(100.0));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut engine = Engine::new(0);
        let rec = engine.add_component("rec", Recorder { log: vec![] });
        for i in 0..10 {
            engine.post(rec, SimTime::from_ns(i as f64 * 10.0), i as u32);
        }
        engine.run_until(SimTime::from_ns(45.0));
        assert_eq!(engine.component::<Recorder>(rec).log.len(), 5);
        assert_eq!(engine.pending_events(), 5);
        engine.run_until_idle();
        assert_eq!(engine.component::<Recorder>(rec).log.len(), 10);
    }

    #[test]
    fn call_at_sees_components() {
        let mut engine = Engine::new(0);
        let rec = engine.add_component("rec", Recorder { log: vec![] });
        engine.post(rec, SimTime::from_ns(1.0), 7u32);
        engine.call_at(SimTime::from_ns(2.0), move |e| {
            let seen = e.component::<Recorder>(rec).log.len();
            assert_eq!(seen, 1);
            e.post(rec, e.now(), 8u32);
        });
        engine.run_until_idle();
        assert_eq!(engine.component::<Recorder>(rec).log.len(), 2);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<u64> {
            let mut engine = Engine::new(seed);
            let mut out = Vec::new();
            for _ in 0..100 {
                out.push(engine.rng().gen());
            }
            out
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    /// A component that claims to be waiting on another forever (models a
    /// lost message or credit starvation).
    struct Waiter {
        on: Option<ComponentId>,
        what: &'static str,
    }

    impl Component for Waiter {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}

        fn outstanding(&self, out: &mut Vec<PendingWork>) {
            out.push(PendingWork {
                what: self.what.to_string(),
                waiting_on: self.on,
            });
        }
    }

    #[test]
    fn clean_drain_reports_no_deadlock() {
        let mut engine = Engine::new(0);
        let rec = engine.add_component("rec", Recorder { log: vec![] });
        engine.post(rec, SimTime::from_ns(1.0), 1u32);
        engine.run_until_idle();
        assert!(engine.deadlock_report().is_none());
    }

    #[test]
    fn no_report_while_events_are_pending() {
        let mut engine = Engine::new(0);
        let w = engine.add_component(
            "w",
            Waiter {
                on: None,
                what: "x",
            },
        );
        engine.post(w, SimTime::from_ns(10.0), Ball);
        // Queue non-empty: the system may still make progress.
        assert!(engine.deadlock_report().is_none());
    }

    #[test]
    fn wait_for_cycle_is_detected_and_named() {
        let mut engine = Engine::new(0);
        let a = engine.add_component(
            "alpha",
            Waiter {
                on: None,
                what: "req 1",
            },
        );
        let b = engine.add_component(
            "beta",
            Waiter {
                on: None,
                what: "req 2",
            },
        );
        engine.component_mut::<Waiter>(a).on = Some(b);
        engine.component_mut::<Waiter>(b).on = Some(a);
        let report = engine.deadlock_report().expect("both components stuck");
        assert_eq!(report.stuck.len(), 2);
        assert_eq!(report.cycles.len(), 1);
        let cycle = &report.cycles[0];
        assert!(cycle.contains(&"alpha".to_string()));
        assert!(cycle.contains(&"beta".to_string()));
        let rendered = report.to_string();
        assert!(rendered.contains("wait-for cycle"));
        assert!(rendered.contains("req 1"));
    }

    #[test]
    fn acyclic_blockage_lists_stuck_without_cycles() {
        let mut engine = Engine::new(0);
        let sink = engine.add_component("sink", Recorder { log: vec![] });
        let w = engine.add_component(
            "w",
            Waiter {
                on: None,
                what: "lost msg",
            },
        );
        engine.component_mut::<Waiter>(w).on = Some(sink);
        let report = engine.deadlock_report().expect("one component stuck");
        assert_eq!(report.stuck.len(), 1);
        assert_eq!(report.stuck[0].waiting_on.as_deref(), Some("sink"));
        assert!(report.cycles.is_empty());
    }

    #[test]
    fn self_wait_is_a_cycle_of_one() {
        let mut engine = Engine::new(0);
        let w = engine.add_component(
            "w",
            Waiter {
                on: None,
                what: "stuck",
            },
        );
        engine.component_mut::<Waiter>(w).on = Some(w);
        let report = engine.deadlock_report().expect("stuck on itself");
        assert_eq!(report.cycles, vec![vec!["w".to_string()]]);
    }

    #[test]
    fn msg_downcast_fallthrough_preserves_payload() {
        let msg = Msg {
            src: None,
            payload: Box::new(5u32),
            type_name: std::any::type_name::<u32>(),
        };
        let msg = msg.downcast::<String>().expect_err("not a string");
        assert_eq!(msg.peek::<u32>(), Some(&5));
        assert_eq!(msg.downcast::<u32>().expect("u32"), 5);
    }

    #[test]
    fn post_in_the_past_is_clamped_to_now() {
        let mut engine = Engine::new(0);
        let rec = engine.add_component("rec", Recorder { log: vec![] });
        engine.post(rec, SimTime::from_ns(100.0), 1u32);
        engine.run_until_idle();
        // Posting at t=0 after the clock reached 100ns must not go backwards.
        engine.post(rec, SimTime::ZERO, 2u32);
        engine.run_until_idle();
        let log = &engine.component::<Recorder>(rec).log;
        assert_eq!(log[1].0, SimTime::from_ns(100.0));
    }

    #[test]
    fn trace_ring_keeps_the_tail() {
        let mut engine = Engine::new(0);
        let rec = engine.add_component("rec", Recorder { log: vec![] });
        engine.enable_trace(3);
        for i in 0..10u32 {
            engine.post(rec, SimTime::from_ns(i as f64), i);
        }
        engine.run_until_idle();
        let trace: Vec<&TraceEntry> = engine.trace().collect();
        assert_eq!(trace.len(), 3, "ring keeps only the last 3");
        assert_eq!(trace[2].at, SimTime::from_ns(9.0));
        assert_eq!(engine.trace_target_name(trace[0]), "rec");
        assert!(trace[0].payload.contains("u32"));
    }

    /// A component that counts how many messages arrive per batch call.
    struct BatchCounter {
        batches: Vec<usize>,
        singles: u32,
    }

    impl Component for BatchCounter {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {
            self.singles += 1;
        }

        fn on_batch(&mut self, ctx: &mut Ctx<'_>, batch: &mut MsgBatch<'_>) {
            self.batches.push(batch.remaining());
            while let Some(msg) = batch.next_msg() {
                self.on_msg(ctx, msg);
            }
        }
    }

    #[test]
    fn same_timestamp_runs_deliver_as_one_batch() {
        let mut engine = Engine::new(0);
        let c = engine.add_component(
            "c",
            BatchCounter {
                batches: vec![],
                singles: 0,
            },
        );
        let other = engine.add_component("rec", Recorder { log: vec![] });
        // Three same-time messages to `c`, then one to another component,
        // then one more to `c` (the run is broken by the interloper's seq).
        engine.post(c, SimTime::from_ns(5.0), 1u32);
        engine.post(c, SimTime::from_ns(5.0), 2u32);
        engine.post(c, SimTime::from_ns(5.0), 3u32);
        engine.post(other, SimTime::from_ns(5.0), 4u32);
        engine.post(c, SimTime::from_ns(5.0), 5u32);
        engine.run_until_idle();
        let counter = engine.component::<BatchCounter>(c);
        assert_eq!(counter.batches, vec![3], "first run batched");
        assert_eq!(counter.singles, 4, "all four messages delivered");
        assert_eq!(engine.events_dispatched(), 5);
    }

    #[test]
    fn batch_preserves_message_order() {
        let mut engine = Engine::new(0);
        let rec = engine.add_component("rec", Recorder { log: vec![] });
        for i in 0..6u32 {
            engine.post(rec, SimTime::from_ns(1.0), i);
        }
        engine.run_until_idle();
        let values: Vec<u32> = engine
            .component::<Recorder>(rec)
            .log
            .iter()
            .map(|&(_, v)| v)
            .collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn thread_events_counter_flushes_on_drop() {
        let before = thread_events_dispatched();
        {
            let mut engine = Engine::new(0);
            let rec = engine.add_component("rec", Recorder { log: vec![] });
            for i in 0..7u32 {
                engine.post(rec, SimTime::from_ns(i as f64 * 1000.0), i);
            }
            engine.run_until_idle();
            assert_eq!(engine.events_dispatched(), 7);
        }
        assert_eq!(thread_events_dispatched() - before, 7);
    }

    #[test]
    #[should_panic(expected = "is not a")]
    fn wrong_component_type_panics() {
        let mut engine = Engine::new(0);
        let rec = engine.add_component("rec", Recorder { log: vec![] });
        let _ = engine.component::<PingPong>(rec);
    }
}
