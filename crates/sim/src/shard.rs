//! Conservative-lookahead sharded execution: many engines, one clock
//! discipline.
//!
//! A [`ShardedEngine`] partitions a scenario into per-shard [`Engine`]s
//! (one calendar queue each) and runs them on worker threads under the
//! classic conservative synchronization scheme: because every cross-shard
//! link carries a positive relay latency `L` (serialization and
//! propagation of the long-haul cable between switch domains), a message
//! leaving shard *a* at time `t` cannot affect shard *b* before `t + L`.
//! Each epoch therefore
//!
//! 1. computes the global minimum next-event time `m` across all shards,
//! 2. lets every shard run freely up to the *horizon* `m + L − 1`
//!    (exclusive of `m + L`), staging outbound cross-shard messages into
//!    per-`(src, dst)` mailbox cells, and
//! 3. merges the staged messages into their target shards in the
//!    deterministic order `(time, source shard, emission index)`.
//!
//! Every staged message is timestamped `t + L > m + L − 1`, i.e. strictly
//! beyond the horizon, so no shard can receive a message in its past:
//! the scheme is causally safe. It is also deadlock-free — the shard
//! holding the global minimum always makes progress in step 2, so `m`
//! advances by at least `L` per epoch and no null messages are needed
//! (the barrier plays their role). See DESIGN.md for the full argument.
//!
//! # Determinism
//!
//! The shard decomposition is part of the *scenario* (derived from the
//! topology), never of the thread count: `threads` in
//! [`ShardedEngine::run`] only selects how many workers the fixed set of
//! shards is spread over. Each shard is itself a deterministic
//! single-threaded [`Engine`], the epoch schedule is a pure function of
//! global simulation state, and the merge order is a pure function of
//! the staged messages — so runs with 1, 2, or 16 worker threads produce
//! byte-identical results.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard};

use crate::engine::{Component, ComponentId, Ctx, Engine, Msg};
use crate::time::SimTime;

/// A cross-shard message parked between epochs.
struct StagedMsg {
    /// Delivery time (sender dispatch time + link latency), in ps.
    time_ps: u64,
    /// Position in the source shard's emission order this epoch; the
    /// third merge tie-break key after `(time, src shard)`.
    emit_idx: u64,
    /// Target component in the destination shard.
    dst: ComponentId,
    payload: Box<dyn Any + Send>,
    type_name: &'static str,
}

/// One directed mailbox cell: messages staged from one shard to another.
type Cell = Arc<Mutex<Vec<StagedMsg>>>;

/// A staged message keyed for the deterministic merge:
/// `(time, src shard, emission index, dst, payload, type name)`.
type Inbound = (
    u64,
    usize,
    u64,
    ComponentId,
    Box<dyn Any + Send>,
    &'static str,
);

/// Locks a mailbox cell, recovering from poisoning (a panicked worker
/// aborts the run anyway; the lock only guards a plain `Vec`).
fn lock(cell: &Mutex<Vec<StagedMsg>>) -> MutexGuard<'_, Vec<StagedMsg>> {
    cell.lock().unwrap_or_else(|e| e.into_inner())
}

/// The boundary component of a shard: egress relay for local traffic
/// heading off-shard, ingress proxy for traffic arriving from its peer.
///
/// A gateway pair `(g_a, g_b)` created by [`ShardedEngine::link`] models
/// one long-haul cable between two switch domains. Wire a gateway as the
/// connected peer of a switch port: flits the switch transmits reach the
/// gateway as ordinary messages (`src = switch`) and are staged for the
/// remote shard with the cable latency added; messages the executor
/// injects (`src = None`) are forwarded to the local attachment at the
/// same timestamp, so the switch sees them arrive *from* the gateway and
/// resolves its input port normally.
pub struct ShardGateway {
    /// Mailbox cell for this gateway's direction (`my shard → peer shard`).
    outbox: Cell,
    /// Shared per-source-shard emission counter; stamps staged messages
    /// with a total order over the whole shard's emissions.
    emit: Arc<AtomicU64>,
    /// The peer gateway in the destination shard.
    peer: Option<ComponentId>,
    /// Local component injected traffic is forwarded to (the switch this
    /// gateway is attached to).
    local: Option<ComponentId>,
    /// One-way relay latency of the modeled cable.
    latency: SimTime,
    /// Messages relayed toward the peer shard.
    pub relayed_out: u64,
    /// Messages injected by the executor and forwarded locally.
    pub relayed_in: u64,
}

impl ShardGateway {
    /// Sets the local component (normally the attached switch) that
    /// injected cross-shard traffic is forwarded to.
    pub fn set_local_peer(&mut self, local: ComponentId) {
        self.local = Some(local);
    }
}

impl Component for ShardGateway {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.src {
            Some(_) => {
                // Local traffic heading off-shard: stage it for the peer
                // gateway one cable latency in the future. The staged
                // timestamp is what gives the executor its lookahead.
                let Some(peer) = self.peer else {
                    // fcc-lint: allow(panic-in-lib) -- wiring error: gateway used before link() paired it
                    panic!("shard gateway has no peer");
                };
                let (payload, type_name) = msg.into_parts();
                lock(&self.outbox).push(StagedMsg {
                    time_ps: (ctx.now() + self.latency).as_ps(),
                    emit_idx: self.emit.fetch_add(1, Ordering::Relaxed),
                    dst: peer,
                    payload,
                    type_name,
                });
                self.relayed_out += 1;
            }
            None => {
                // Injected by the executor: hand to the local switch at
                // this timestamp so it arrives with `src = gateway`.
                let Some(local) = self.local else {
                    // fcc-lint: allow(panic-in-lib) -- wiring error: set_local_peer was never called
                    panic!("shard gateway has no local attachment");
                };
                let (payload, type_name) = msg.into_parts();
                ctx.send_boxed(local, SimTime::ZERO, payload, type_name);
                self.relayed_in += 1;
            }
        }
    }
}

/// Shared state of one sharded run; one instance per [`ShardedEngine::run`].
struct RunShared {
    barrier: Barrier,
    /// Global minimum next-event time this epoch (ps); `u64::MAX` = idle.
    global_min: AtomicU64,
    lookahead_ps: u64,
    /// `channels[src][dst]` holds messages staged from shard `src` to
    /// shard `dst`.
    channels: Vec<Vec<Cell>>,
}

/// A set of per-shard [`Engine`]s executed under conservative-lookahead
/// synchronization. See the [module docs](crate::shard) for the scheme.
pub struct ShardedEngine {
    engines: Vec<Engine>,
    channels: Vec<Vec<Cell>>,
    emit: Vec<Arc<AtomicU64>>,
    lookahead: Option<SimTime>,
}

impl ShardedEngine {
    /// Creates `shards` empty engines. Shard `s` gets a deterministic
    /// seed derived from `seed` and `s`, so scenario randomness is
    /// per-shard reproducible regardless of worker count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(seed: u64, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let engines = (0..shards)
            .map(|s| Engine::new(seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        let channels = (0..shards)
            .map(|_| (0..shards).map(|_| Cell::default()).collect())
            .collect();
        let emit = (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect();
        ShardedEngine {
            engines,
            channels,
            emit,
            lookahead: None,
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.engines.len()
    }

    /// The engine of shard `s`.
    pub fn engine(&self, s: usize) -> &Engine {
        &self.engines[s]
    }

    /// Mutable access to the engine of shard `s` (topology building,
    /// post-run inspection).
    pub fn engine_mut(&mut self, s: usize) -> &mut Engine {
        &mut self.engines[s]
    }

    /// The minimum cross-shard latency, i.e. the conservative lookahead.
    /// `None` until the first [`ShardedEngine::link`].
    pub fn lookahead(&self) -> Option<SimTime> {
        self.lookahead
    }

    /// Total events dispatched across all shards.
    pub fn total_events(&self) -> u64 {
        self.engines.iter().map(Engine::events_dispatched).sum()
    }

    /// Creates a linked gateway pair modeling a full-duplex cable of
    /// one-way latency `latency` between shards `a` and `b`, and lowers
    /// the run's lookahead to `latency` if it is the new minimum.
    /// Returns `(gateway in a, gateway in b)`; attach each to a switch
    /// port on its side and call [`ShardGateway::set_local_peer`].
    ///
    /// # Panics
    ///
    /// Panics if `a == b`, either index is out of range, or `latency`
    /// is zero (zero lookahead would stall the epoch scheme).
    pub fn link(
        &mut self,
        a: usize,
        b: usize,
        latency: SimTime,
        name: &str,
    ) -> (ComponentId, ComponentId) {
        assert!(a != b, "gateway pair must span two shards");
        assert!(
            latency > SimTime::ZERO,
            "cross-shard latency must be positive"
        );
        let ga = self.engines[a].add_component(
            format!("{name}.gw{a}to{b}"),
            ShardGateway {
                outbox: Arc::clone(&self.channels[a][b]),
                emit: Arc::clone(&self.emit[a]),
                peer: None,
                local: None,
                latency,
                relayed_out: 0,
                relayed_in: 0,
            },
        );
        let gb = self.engines[b].add_component(
            format!("{name}.gw{b}to{a}"),
            ShardGateway {
                outbox: Arc::clone(&self.channels[b][a]),
                emit: Arc::clone(&self.emit[b]),
                peer: Some(ga),
                local: None,
                latency,
                relayed_out: 0,
                relayed_in: 0,
            },
        );
        self.engines[a].component_mut::<ShardGateway>(ga).peer = Some(gb);
        self.lookahead = Some(match self.lookahead {
            Some(l) => l.min(latency),
            None => latency,
        });
        (ga, gb)
    }

    /// Runs every shard to global idle using at most `threads` worker
    /// threads (clamped to `[1, shard count]`). Byte-identical results
    /// for any `threads` value.
    ///
    /// # Panics
    ///
    /// Panics if the shards exchange traffic but no [`ShardedEngine::link`]
    /// was created (no lookahead), or a worker thread panics.
    pub fn run(&mut self, threads: usize) {
        let k = self.engines.len();
        let m = threads.clamp(1, k);
        // A single unlinked shard is just a serial engine.
        let lookahead_ps = match self.lookahead {
            Some(l) => l.as_ps(),
            None if k == 1 => u64::MAX,
            // fcc-lint: allow(panic-in-lib) -- wiring error: multi-shard run without any link
            None => panic!("multi-shard run requires at least one link for lookahead"),
        };
        let shared = RunShared {
            barrier: Barrier::new(m),
            global_min: AtomicU64::new(u64::MAX),
            lookahead_ps,
            channels: self.channels.clone(),
        };
        // Chunk shards over workers; the assignment affects scheduling
        // only, never results.
        let mut bundles: Vec<Vec<(usize, Engine)>> = (0..m).map(|_| Vec::new()).collect();
        for (s, engine) in self.engines.drain(..).enumerate() {
            bundles[s % m].push((s, engine));
        }
        let mut returned: Vec<Option<Engine>> = (0..k).map(|_| None).collect();
        std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = bundles
                .into_iter()
                .map(|bundle| scope.spawn(move || worker_loop(bundle, shared)))
                .collect();
            for h in handles {
                let bundle = match h.join() {
                    Ok(b) => b,
                    // fcc-lint: allow(panic-in-lib) -- worker panics propagate to the caller
                    Err(_) => panic!("shard worker panicked"),
                };
                for (s, engine) in bundle {
                    returned[s] = Some(engine);
                }
            }
        });
        self.engines = returned
            .into_iter()
            .map(|slot| match slot {
                Some(e) => e,
                // fcc-lint: allow(panic-in-lib) -- every worker returns every shard it was handed
                None => unreachable!("shard engine lost by worker"),
            })
            .collect();
    }
}

/// The per-worker epoch loop. `bundle` is the set of shards this worker
/// owns; engines come back out when the run reaches global idle.
fn worker_loop(mut bundle: Vec<(usize, Engine)>, shared: &RunShared) -> Vec<(usize, Engine)> {
    loop {
        // Phase A: contribute to the global minimum next-event time.
        for (_, engine) in &bundle {
            if let Some(t) = engine.next_event_time() {
                shared.global_min.fetch_min(t.as_ps(), Ordering::SeqCst);
            }
        }
        shared.barrier.wait();
        let min = shared.global_min.load(Ordering::SeqCst);
        if min == u64::MAX {
            // Globally idle: no pending events anywhere and (because
            // mailboxes were merged before this epoch's minimum was
            // computed) no staged messages either.
            break;
        }
        let horizon = SimTime::from_ps(min.saturating_add(shared.lookahead_ps - 1));
        // Phase B: run freely up to the horizon; gateways stage
        // cross-shard messages with timestamps strictly beyond it.
        for (_, engine) in &mut bundle {
            engine.run_until(horizon);
        }
        let sync = shared.barrier.wait();
        if sync.is_leader() {
            // Safe to reset here: every worker read `min` before the
            // barrier above, and none reads it again until the next
            // epoch's barrier.
            shared.global_min.store(u64::MAX, Ordering::SeqCst);
        }
        // Phase C: merge staged messages into this worker's shards in
        // `(time, src shard, emission index)` order.
        for (dst, engine) in &mut bundle {
            let mut inbound: Vec<Inbound> = Vec::new();
            for (src, row) in shared.channels.iter().enumerate() {
                for staged in lock(&row[*dst]).drain(..) {
                    inbound.push((
                        staged.time_ps,
                        src,
                        staged.emit_idx,
                        staged.dst,
                        staged.payload,
                        staged.type_name,
                    ));
                }
            }
            inbound.sort_by_key(|&(time, src, emit, ..)| (time, src, emit));
            for (time, _, _, target, payload, type_name) in inbound {
                engine.post_boxed(target, SimTime::from_ps(time), payload, type_name);
            }
        }
        shared.barrier.wait();
    }
    bundle
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every `u64` payload to `target` after `delay`, decremented;
    /// stops at zero (or when no target is wired).
    struct Bouncer {
        target: Option<ComponentId>,
        delay: SimTime,
        heard: Vec<(u64, u64)>,
    }

    impl Component for Bouncer {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let v = match msg.downcast::<u64>() {
                Ok(v) => v,
                Err(m) => panic!("unexpected payload {}", m.type_name()),
            };
            self.heard.push((ctx.now().as_ps(), v));
            if v > 0 {
                if let Some(t) = self.target {
                    ctx.send(t, self.delay, v - 1);
                }
            }
        }
    }

    fn bouncer(target: Option<ComponentId>, delay: SimTime) -> Bouncer {
        Bouncer {
            target,
            delay,
            heard: Vec::new(),
        }
    }

    /// `(time ps, value)` observations of one bouncer.
    type Heard = Vec<(u64, u64)>;

    /// Two shards bouncing a counter through the gateway pair.
    fn bounce_run(threads: usize) -> (Heard, Heard, u64) {
        let mut sharded = ShardedEngine::new(7, 2);
        let lat = SimTime::from_ns(50.0);
        let (ga, gb) = sharded.link(0, 1, lat, "cable");
        let delay = SimTime::from_ns(10.0);
        let b0 = sharded
            .engine_mut(0)
            .add_component("b0", bouncer(Some(ga), delay));
        let b1 = sharded
            .engine_mut(1)
            .add_component("b1", bouncer(Some(gb), delay));
        sharded
            .engine_mut(0)
            .component_mut::<ShardGateway>(ga)
            .set_local_peer(b0);
        sharded
            .engine_mut(1)
            .component_mut::<ShardGateway>(gb)
            .set_local_peer(b1);
        sharded.engine_mut(0).post(b0, SimTime::ZERO, 6u64);
        sharded.run(threads);
        let h0 = sharded.engine(0).component::<Bouncer>(b0).heard.clone();
        let h1 = sharded.engine(1).component::<Bouncer>(b1).heard.clone();
        (h0, h1, sharded.total_events())
    }

    #[test]
    fn gateway_pair_bounces_across_shards() {
        let (h0, h1, _) = bounce_run(2);
        let v0: Vec<u64> = h0.iter().map(|&(_, v)| v).collect();
        let v1: Vec<u64> = h1.iter().map(|&(_, v)| v).collect();
        assert_eq!(v0, vec![6, 4, 2, 0]);
        assert_eq!(v1, vec![5, 3, 1]);
        // Each hop costs the bouncer delay (10ns) + cable latency (50ns).
        assert_eq!(h1[0].0, SimTime::from_ns(60.0).as_ps());
        assert_eq!(h0[1].0, SimTime::from_ns(120.0).as_ps());
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let serial = bounce_run(1);
        for threads in [2, 3, 8] {
            assert_eq!(bounce_run(threads), serial, "threads={threads}");
        }
    }

    /// Three shards; 1 and 2 each land one message in shard 0 at the same
    /// instant. The `(time, src shard, emit)` merge key fixes the order.
    fn star_run(threads: usize) -> Vec<(u64, u64)> {
        let lat = SimTime::from_ns(10.0);
        let mut sharded = ShardedEngine::new(0, 3);
        let (g01, g10) = sharded.link(0, 1, lat, "a");
        let (g02, g20) = sharded.link(0, 2, lat, "b");
        let sink = sharded
            .engine_mut(0)
            .add_component("sink", bouncer(None, SimTime::ZERO));
        sharded
            .engine_mut(0)
            .component_mut::<ShardGateway>(g01)
            .set_local_peer(sink);
        sharded
            .engine_mut(0)
            .component_mut::<ShardGateway>(g02)
            .set_local_peer(sink);
        // Shard 1 relays value 0, shard 2 relays value 1, both arriving
        // in shard 0 at the same 15ns instant.
        for (shard, gw_in, value) in [(1usize, g10, 1u64), (2, g20, 2)] {
            let src = sharded
                .engine_mut(shard)
                .add_component("src", bouncer(Some(gw_in), SimTime::ZERO));
            sharded
                .engine_mut(shard)
                .component_mut::<ShardGateway>(gw_in)
                .set_local_peer(src);
            sharded
                .engine_mut(shard)
                .post(src, SimTime::from_ns(5.0), value);
        }
        sharded.run(threads);
        sharded.engine(0).component::<Bouncer>(sink).heard.clone()
    }

    #[test]
    fn merge_order_breaks_ties_by_source_shard() {
        let heard = star_run(1);
        assert_eq!(heard.len(), 2, "one message from each shard");
        assert_eq!(heard[0].0, heard[1].0, "same delivery instant");
        // Shard 1 before shard 2: values arrive as [0, 1].
        let values: Vec<u64> = heard.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![0, 1]);
        for threads in [2, 3] {
            assert_eq!(star_run(threads), heard, "threads={threads}");
        }
    }

    #[test]
    fn single_unlinked_shard_runs_serially() {
        let mut sharded = ShardedEngine::new(3, 1);
        let b = sharded
            .engine_mut(0)
            .add_component("b", bouncer(None, SimTime::from_ns(1.0)));
        sharded.engine_mut(0).component_mut::<Bouncer>(b).target = Some(b);
        sharded.engine_mut(0).post(b, SimTime::ZERO, 4u64);
        sharded.run(4);
        assert_eq!(sharded.engine(0).component::<Bouncer>(b).heard.len(), 5);
    }

    #[test]
    #[should_panic(expected = "cross-shard latency must be positive")]
    fn zero_latency_link_is_rejected() {
        let mut sharded = ShardedEngine::new(0, 2);
        sharded.link(0, 1, SimTime::ZERO, "bad");
    }

    /// A parameterized two-shard bounce: every observation (timestamps,
    /// values, total event count) must be invariant to the worker count,
    /// for any seed, hop count, cable latency, and component delay.
    fn param_bounce(
        seed: u64,
        hops: u64,
        lat_ps: u64,
        delay_ps: u64,
        threads: usize,
    ) -> (Heard, Heard, u64) {
        let mut sharded = ShardedEngine::new(seed, 2);
        let (ga, gb) = sharded.link(0, 1, SimTime::from_ps(lat_ps), "cable");
        let delay = SimTime::from_ps(delay_ps);
        let b0 = sharded
            .engine_mut(0)
            .add_component("b0", bouncer(Some(ga), delay));
        let b1 = sharded
            .engine_mut(1)
            .add_component("b1", bouncer(Some(gb), delay));
        sharded
            .engine_mut(0)
            .component_mut::<ShardGateway>(ga)
            .set_local_peer(b0);
        sharded
            .engine_mut(1)
            .component_mut::<ShardGateway>(gb)
            .set_local_peer(b1);
        sharded.engine_mut(0).post(b0, SimTime::ZERO, hops);
        sharded.run(threads);
        let h0 = sharded.engine(0).component::<Bouncer>(b0).heard.clone();
        let h1 = sharded.engine(1).component::<Bouncer>(b1).heard.clone();
        (h0, h1, sharded.total_events())
    }

    mod properties {
        use proptest::prelude::*;

        use super::param_bounce;

        proptest! {
            /// Every observation is invariant to the worker count, for
            /// any seed, hop count, cable latency, and component delay.
            #[test]
            fn bounce_is_worker_count_invariant(
                seed in any::<u64>(),
                hops in 0u64..24,
                lat_ps in 1u64..500_000u64,
                delay_ps in 0u64..100_000u64,
                threads in 2usize..6,
            ) {
                let serial = param_bounce(seed, hops, lat_ps, delay_ps, 1);
                let threaded = param_bounce(seed, hops, lat_ps, delay_ps, threads);
                prop_assert_eq!(serial, threaded);
            }
        }
    }
}
