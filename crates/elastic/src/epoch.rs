//! The epoch-based two-phase reconfiguration protocol, as a pure plan.
//!
//! Online composition changes the fabric's routing state while traffic is
//! in flight. The switch data plane ([`fcc_fabric::switch`]) drops any
//! flit it cannot route, so the *order* of control-plane steps is the
//! whole safety argument:
//!
//! * **Hot-add** is two-phase: epoch N installs the new node's routes on
//!   every switch; only after they have landed does epoch N+1 announce
//!   the node (map its range at the FHAs, open the heap node). No flit
//!   can target the node before its routes exist.
//! * **Hot-remove** is the mirror image: epoch N retracts the node (heap
//!   stops allocating, evacuation begins); routes are pruned only behind
//!   a *quiescence guard* — the ledger-verified condition that no flit
//!   to or from the node is in flight — and the port detaches last.
//!
//! The steps are modeled here as plain data so the runtime composer
//! ([`crate::composer`]) and the `fcc-verify` reconfiguration model
//! checker consume the *same* plan: the checker explores every
//! interleaving of plan steps against in-flight traffic and proves no
//! flit is dropped or misrouted; the composer executes the steps against
//! the simulated fabric.

/// One control-plane step of a reconfiguration plan. Plans are per-node:
/// the node being added or removed is implicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStep {
    /// Install the node's route on switch `switch`.
    InstallRoute {
        /// Switch index.
        switch: usize,
    },
    /// Announce the node: FHAs learn its address range and the heap node
    /// opens. Traffic toward the node may start after this step.
    Announce,
    /// Retract the node: the heap stops allocating on it and initiators
    /// stop issuing *new* traffic toward it. In-flight flits remain.
    Retract,
    /// Prune the node's route from switch `switch`. With
    /// `require_quiescent`, the step only fires once no flit to or from
    /// the node is in flight (the ledger-verified drain condition);
    /// without it, the prune races in-flight traffic.
    PruneRoute {
        /// Switch index.
        switch: usize,
        /// Gate the prune on fabric quiescence for the node.
        require_quiescent: bool,
    },
    /// Physically detach the node's port.
    Detach,
}

/// An ordered reconfiguration plan for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigPlan {
    /// Steps in issue order. Steps may still interleave with data-plane
    /// traffic; the model checker explores those interleavings.
    pub steps: Vec<UpdateStep>,
}

impl ReconfigPlan {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The safe hot-add plan over `n_switches` switches: routes first
/// (epoch N), announce last (epoch N+1).
pub fn hot_add_plan(n_switches: usize) -> ReconfigPlan {
    let mut steps: Vec<UpdateStep> = (0..n_switches)
        .map(|switch| UpdateStep::InstallRoute { switch })
        .collect();
    steps.push(UpdateStep::Announce);
    ReconfigPlan { steps }
}

/// The broken hot-add: announce before the routes land. Traffic admitted
/// in the window between the announce and a late install is dropped as
/// unroutable — the counterexample the model checker finds.
pub fn hot_add_naive(n_switches: usize) -> ReconfigPlan {
    let mut steps = vec![UpdateStep::Announce];
    steps.extend((0..n_switches).map(|switch| UpdateStep::InstallRoute { switch }));
    ReconfigPlan { steps }
}

/// The safe hot-remove plan: retract first (no new traffic), prune each
/// switch only at quiescence, detach last.
pub fn hot_remove_plan(n_switches: usize) -> ReconfigPlan {
    let mut steps = vec![UpdateStep::Retract];
    steps.extend((0..n_switches).map(|switch| UpdateStep::PruneRoute {
        switch,
        require_quiescent: true,
    }));
    steps.push(UpdateStep::Detach);
    ReconfigPlan { steps }
}

/// The broken hot-remove (the "naive yank"): no retraction and no
/// quiescence guard — routes vanish under in-flight flits.
pub fn hot_remove_naive(n_switches: usize) -> ReconfigPlan {
    let mut steps: Vec<UpdateStep> = (0..n_switches)
        .map(|switch| UpdateStep::PruneRoute {
            switch,
            require_quiescent: false,
        })
        .collect();
    steps.push(UpdateStep::Detach);
    ReconfigPlan { steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_add_installs_every_route_before_announcing() {
        let plan = hot_add_plan(3);
        let announce = plan
            .steps
            .iter()
            .position(|s| *s == UpdateStep::Announce)
            .expect("announce present");
        let last_install = plan
            .steps
            .iter()
            .rposition(|s| matches!(s, UpdateStep::InstallRoute { .. }))
            .expect("installs present");
        assert!(last_install < announce);
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn naive_add_announces_first() {
        let plan = hot_add_naive(2);
        assert_eq!(plan.steps[0], UpdateStep::Announce);
    }

    #[test]
    fn safe_remove_retracts_then_prunes_guarded() {
        let plan = hot_remove_plan(2);
        assert_eq!(plan.steps[0], UpdateStep::Retract);
        assert!(plan.steps.iter().all(|s| !matches!(
            s,
            UpdateStep::PruneRoute {
                require_quiescent: false,
                ..
            }
        )));
        assert_eq!(plan.steps.last(), Some(&UpdateStep::Detach));
    }

    #[test]
    fn naive_remove_never_retracts_or_guards() {
        let plan = hot_remove_naive(2);
        assert!(!plan.steps.contains(&UpdateStep::Retract));
        assert!(plan.steps.iter().any(|s| matches!(
            s,
            UpdateStep::PruneRoute {
                require_quiescent: false,
                ..
            }
        )));
    }
}
