//! The elastic composer: online hot-add and hot-remove of memory nodes.
//!
//! This is the runtime that executes the [`crate::epoch`] protocol
//! against a live simulated fabric:
//!
//! * [`ElasticCluster::hot_add`] attaches a new FAM chassis mid-run with
//!   the two-phase routing update — epoch N installs the switch route,
//!   epoch N+1 (after the route has settled) maps the range at every FHA
//!   and opens the heap node. In-flight traffic never sees a missing
//!   route because nothing targets the node before the announce.
//! * [`ElasticCluster::begin_drain`] retracts a node (the heap stops
//!   allocating on it), evacuates every live object through throttled
//!   eTrans migration jobs, and — once the jobs complete and the node is
//!   ledger-verified quiescent — prunes its routes, reclaims its credit
//!   allocations, and detaches its port.
//! * [`ElasticCluster::apply_failure_schedule`] wires power-domain
//!   failure events into the same drain path (failure-triggered
//!   evacuation at elevated priority).
//! * [`ElasticCluster::naive_yank`] is the deliberately broken baseline:
//!   routes vanish with no drain and no quiescence guard, destroying the
//!   node's resident objects and stranding in-flight operations.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use fcc_core::etrans::{
    ETrans, ETransDone, MigrationAgent, SubmitETrans, TenantLimit, TransAttrs, TransOwnership,
    TransactionEngine,
};
use fcc_core::heap::FabricBox;
use fcc_core::heap::{EvacuationPlan, HeapNodeCfg, NodeState, UnifiedHeap};
use fcc_fabric::adapter::{Fea, InstallMapping};
use fcc_fabric::endpoint::{Endpoint, FixedLatencyMemory};
use fcc_fabric::ledger::{audit_topology, AuditReport};
use fcc_fabric::switch::{FabricSwitch, InstallPbrRoute};
use fcc_fabric::topology::{self, DeviceHandle, Topology, TopologySpec};
use fcc_memnode::profile::MemNodeProfile;
use fcc_proto::addr::{AddrRange, NodeId};
use fcc_sim::{Component, ComponentId, Ctx, Engine, Msg, PendingWork, SimTime};
use fcc_telemetry::{MetricsRegistry, TraceCtx, TraceSink, Track};
use fcc_workloads::failure::FailureSchedule;

use crate::events::{ReconfigEvent, ReconfigKind, ReconfigLog};
use crate::store::ShadowStore;

/// Tenant id under which evacuation eTrans jobs are throttled.
pub const EVAC_TENANT: u32 = 0xE7AC;

/// Delay between installing routes (phase 1) and announcing the node
/// (phase 2): long enough for the posted route-install messages to land.
const ROUTE_SETTLE: SimTime = SimTime::from_ps(250_000);

/// Poll period while waiting for a draining node to quiesce.
const DETACH_POLL: SimTime = SimTime::from_ps(500_000);

/// Give up detaching after this many quiescence polls (keeps a stranded
/// drain from wedging `run_until_idle` with an endless poll chain).
const MAX_DETACH_POLLS: u32 = 20_000;

/// Why a drain started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainReason {
    /// Operator-planned removal (background-priority evacuation).
    Planned,
    /// Power-domain failure notice (elevated-priority evacuation).
    Failure,
}

/// Shared cluster state behind the [`ElasticCluster`] handle.
pub struct ClusterState {
    /// The unified heap over the fabric devices (heap index i ↔
    /// `topo.devices[i]`, including offline slots).
    pub heap: UnifiedHeap,
    /// Byte images of live objects (loss detection).
    pub store: ShadowStore,
    /// Epoch transition log.
    pub log: ReconfigLog,
    /// Current reconfiguration epoch.
    pub epoch: u64,
    /// The live topology (devices grow on hot-add; handles of detached
    /// devices stay for index stability).
    pub topo: Topology,
    /// Objects destroyed by yanks.
    pub lost_objects: u64,
    /// Evacuation jobs submitted.
    pub evac_jobs: u64,
    /// Evacuation bytes submitted.
    pub evac_bytes: u64,
    /// Objects a drain could not place anywhere.
    pub stranded_objects: u64,
    /// Outstanding evacuation jobs per draining heap index.
    pending_evac: BTreeMap<usize, usize>,
    /// Switch port of each device (parallel to `topo.devices`).
    port_of: Vec<usize>,
    next_node: u16,
    next_addr: u64,
    track: Track,
}

impl ClusterState {
    fn bump_epoch(&mut self, at: SimTime, node: NodeId, kind: ReconfigKind) {
        self.epoch += 1;
        self.track.instant(
            "reconfig",
            &format!("epoch {}: node {} {kind}", self.epoch, node.0),
            at,
            TraceCtx::new(self.epoch),
        );
        self.log.push(ReconfigEvent {
            at,
            epoch: self.epoch,
            node,
            kind,
        });
    }

    /// The fabric address of bin-local `addr` on heap node `idx`.
    pub fn fabric_addr(&self, idx: usize, addr: u64) -> u64 {
        self.topo.devices[idx].range.base + addr
    }

    /// How many of `objs` still have intact byte images.
    pub fn surviving(&self, objs: &[FabricBox]) -> usize {
        objs.iter().filter(|&&o| self.store.contains(o)).count()
    }
}

/// Ergonomic, poison-recovering access to the shared [`ClusterState`].
///
/// The state is behind an `Arc<Mutex<…>>` so the cluster's components are
/// `Send` and an elastic scenario can run under the sharded executor; all
/// accesses still happen from whichever single thread is dispatching the
/// owning engine, so the lock is uncontended. Poisoning is recovered (the
/// state carries counters and logs worth reading after a panic).
pub trait LockClusterState {
    /// Locks the state for reading or writing.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, ClusterState>;
}

impl LockClusterState for Mutex<ClusterState> {
    fn lock_state(&self) -> std::sync::MutexGuard<'_, ClusterState> {
        self.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Routes evacuation-job completions back into the cluster state and
/// reports unfinished evacuations to the deadlock detector.
struct DrainCoordinator {
    state: Arc<Mutex<ClusterState>>,
}

impl Component for DrainCoordinator {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.downcast::<ETransDone>() {
            Ok(done) => {
                let idx = (done.tag >> 32) as usize;
                let mut st = self.state.lock_state();
                st.track.span(
                    "reconfig",
                    &format!("evac.job node{idx}"),
                    done.issued_at,
                    done.completed_at,
                    TraceCtx::new(done.tag),
                );
                let remaining = match st.pending_evac.get_mut(&idx) {
                    Some(n) => {
                        *n = n.saturating_sub(1);
                        *n
                    }
                    None => return,
                };
                if remaining == 0 {
                    let node = st.topo.devices[idx].node;
                    st.bump_epoch(ctx.now(), node, ReconfigKind::EvacuationComplete);
                }
            }
            Err(m) => panic!("drain coordinator: unexpected message {}", m.type_name()),
        }
    }

    fn outstanding(&self, out: &mut Vec<PendingWork>) {
        out.extend(
            self.state
                .lock_state()
                .pending_evac
                .iter()
                .filter(|&(_, &n)| n > 0)
                .map(|(&idx, &n)| PendingWork {
                    what: format!("{n} evacuation jobs off heap node {idx}"),
                    waiting_on: None,
                }),
        );
    }
}

/// A cheaply cloneable handle to an elastic cluster: a single-switch
/// fabric whose FAM population changes at runtime.
#[derive(Clone)]
pub struct ElasticCluster {
    state: Arc<Mutex<ClusterState>>,
    /// The fabric switch.
    pub switch: ComponentId,
    /// The eTrans engine executing evacuations.
    pub etrans: ComponentId,
    coordinator: ComponentId,
    spec: TopologySpec,
}

impl ElasticCluster {
    /// Builds a single-switch cluster with `n_hosts` hosts and one FAM
    /// device per profile (heap node i ↔ device i). The evacuation
    /// migration agent issues through host 0's FHA, so evacuation traffic
    /// contends with foreground load on the real fabric.
    ///
    /// # Panics
    ///
    /// Panics if `n_hosts` or `profiles` is empty.
    pub fn build(
        engine: &mut Engine,
        spec: TopologySpec,
        n_hosts: usize,
        profiles: Vec<MemNodeProfile>,
    ) -> ElasticCluster {
        assert!(n_hosts > 0, "cluster needs a host");
        assert!(!profiles.is_empty(), "cluster needs a device");
        let devices: Vec<Box<dyn Endpoint>> = profiles
            .iter()
            .map(|p| {
                Box::new(FixedLatencyMemory::new(
                    p.read_latency,
                    p.write_latency,
                    p.capacity,
                )) as Box<dyn Endpoint>
            })
            .collect();
        let topo = topology::single_switch(engine, spec, n_hosts, devices);
        let switch = topo.switches[0];
        let heap = UnifiedHeap::new(
            profiles
                .iter()
                .map(|&profile| HeapNodeCfg { profile })
                .collect(),
        );
        let agent = engine.add_component(
            "evac-agent",
            MigrationAgent::new(topo.hosts[0].fha, 4096, 4),
        );
        let etrans = engine.add_component("evac-etrans", TransactionEngine::new(vec![agent]));
        let n_devices = profiles.len();
        let next_addr = topo
            .devices
            .iter()
            .map(|d| d.range.end())
            .fold(topology::FAM_BASE, u64::max);
        // The builder numbers devices 1..=d, then hosts d+1..=d+h.
        let next_node = (n_devices + n_hosts + 1) as u16;
        // Hosts occupy switch ports 0..n_hosts, devices the next ports.
        let port_of = (0..n_devices).map(|i| n_hosts + i).collect();
        let state = Arc::new(Mutex::new(ClusterState {
            heap,
            store: ShadowStore::new(),
            log: ReconfigLog::new(),
            epoch: 0,
            topo,
            lost_objects: 0,
            evac_jobs: 0,
            evac_bytes: 0,
            stranded_objects: 0,
            pending_evac: BTreeMap::new(),
            port_of,
            next_node,
            next_addr,
            track: Track::default(),
        }));
        let coordinator = engine.add_component(
            "drain-coordinator",
            DrainCoordinator {
                state: Arc::clone(&state),
            },
        );
        ElasticCluster {
            state,
            switch,
            etrans,
            coordinator,
            spec,
        }
    }

    /// The shared cluster state.
    pub fn state(&self) -> &Arc<Mutex<ClusterState>> {
        &self.state
    }

    /// Installs a bandwidth cap on the evacuation tenant — the throttle
    /// that keeps background evacuation from starving foreground traffic.
    pub fn set_evacuation_limit(&self, engine: &mut Engine, gbps: f64, burst: u64) {
        engine
            .component_mut::<TransactionEngine>(self.etrans)
            .set_tenant_limit(TenantLimit {
                tenant: EVAC_TENANT,
                gbps,
                burst,
            });
    }

    /// Wires a [`TraceSink`] through the fabric, the eTrans engine, and
    /// the composer's own `reconfig` track (epoch instants + evacuation
    /// spans). Devices hot-added later keep running untraced; the epoch
    /// instants still record their lifecycle.
    pub fn enable_tracing(&self, engine: &mut Engine, sink: &TraceSink) {
        self.state.lock_state().topo.enable_tracing(engine, sink);
        engine
            .component_mut::<TransactionEngine>(self.etrans)
            .set_trace(sink.track("evac-etrans"));
        self.state.lock_state().track = sink.track("reconfig");
    }

    /// Snapshots fabric and evacuation counters into `reg` under
    /// `<prefix>…` names.
    pub fn collect_metrics(&self, engine: &Engine, reg: &mut MetricsRegistry, prefix: &str) {
        self.state
            .lock_state()
            .topo
            .collect_metrics(engine, reg, prefix);
        let te = engine.component::<TransactionEngine>(self.etrans);
        reg.record_counter(&format!("{prefix}evac.completed"), &te.completed);
        reg.record_counter(&format!("{prefix}evac.bytes_moved"), &te.bytes_moved);
        reg.record_histogram(&format!("{prefix}evac.latency_ps"), &te.latency);
    }

    /// Audits every credit ledger in the cluster.
    pub fn audit(&self, engine: &Engine) -> AuditReport {
        audit_topology(engine, &self.state.lock_state().topo)
    }

    /// Hot-adds a FAM chassis with the given profile, returning its heap
    /// index. Phase 1 (now): attach the port, post the route install,
    /// open the heap slot in [`NodeState::Draining`] so nothing allocates
    /// there yet. Phase 2 (after `ROUTE_SETTLE`): map the range at
    /// every FHA and set the node [`NodeState::Active`]. The ordering is
    /// the safety argument — the switch drops unroutable flits, so no
    /// traffic may target the node before its route exists.
    pub fn hot_add(&self, engine: &mut Engine, profile: MemNodeProfile) -> usize {
        let now = engine.now();
        let (node, range) = {
            let mut st = self.state.lock_state();
            let node = NodeId(st.next_node);
            st.next_node += 1;
            let range = AddrRange::new(st.next_addr, profile.capacity);
            st.next_addr += profile.capacity;
            (node, range)
        };
        let dev: Box<dyn Endpoint> = Box::new(FixedLatencyMemory::new(
            profile.read_latency,
            profile.write_latency,
            profile.capacity,
        ));
        let fea = engine.add_component(
            format!("fea{}", node.0),
            Fea::new(node, self.spec.switch.phys, self.spec.credit, dev),
        );
        let port = {
            let sw = engine.component_mut::<FabricSwitch>(self.switch);
            let p = sw.add_port();
            sw.connect(p, fea);
            p
        };
        engine.component_mut::<Fea>(fea).connect(self.switch);
        // Phase 1: the route install travels as a control message, like a
        // fabric manager would issue it.
        engine.post(self.switch, now, InstallPbrRoute { dst: node, port });
        let idx = {
            let mut st = self.state.lock_state();
            let idx = st.topo.devices.len();
            st.topo.devices.push(DeviceHandle { fea, node, range });
            st.port_of.push(port);
            let hidx = st.heap.add_node(HeapNodeCfg { profile });
            debug_assert_eq!(hidx, idx, "heap and device indices in lockstep");
            // Not yet announced: no allocations until phase 2.
            st.heap.set_draining(idx);
            st.bump_epoch(now, node, ReconfigKind::AddStarted);
            idx
        };
        // Phase 2: announce once the route has settled.
        let me = self.clone();
        engine.call_at(now + ROUTE_SETTLE, move |e| {
            let fhas: Vec<ComponentId> = {
                let st = me.state.lock_state();
                st.topo.hosts.iter().map(|h| h.fha).collect()
            };
            let at = e.now();
            for fha in fhas {
                e.post(fha, at, InstallMapping { range, node });
            }
            let mut st = me.state.lock_state();
            st.heap.set_online(idx);
            st.bump_epoch(at, node, ReconfigKind::NodeAnnounced);
        });
        idx
    }

    /// Starts draining heap node `idx`: the heap stops allocating on it,
    /// every live object is relocated (metadata now, bytes via throttled
    /// eTrans jobs), and a quiescence-polling chain detaches the node
    /// once the last job completes and the port is provably empty.
    ///
    /// Returns the evacuation plan. Objects in
    /// [`EvacuationPlan::stranded`] had no admissible target; the node
    /// then stays [`NodeState::Draining`] and is never detached.
    pub fn begin_drain(
        &self,
        engine: &mut Engine,
        idx: usize,
        reason: DrainReason,
    ) -> EvacuationPlan {
        let now = engine.now();
        let (plan, node, submissions) = {
            let mut st = self.state.lock_state();
            let targets: Vec<usize> = (0..st.heap.node_count())
                .filter(|&i| i != idx && st.heap.node_state(i) == NodeState::Active)
                .collect();
            let plan = st.heap.drain(idx, &targets);
            let node = st.topo.devices[idx].node;
            let kind = match reason {
                DrainReason::Planned => ReconfigKind::DrainStarted,
                DrainReason::Failure => ReconfigKind::FailureDrain,
            };
            st.bump_epoch(now, node, kind);
            st.pending_evac.insert(idx, plan.moves.len());
            st.evac_jobs += plan.moves.len() as u64;
            st.evac_bytes += plan.bytes;
            st.stranded_objects += plan.stranded.len() as u64;
            let submissions: Vec<SubmitETrans> = plan
                .moves
                .iter()
                .enumerate()
                .map(|(i, m)| SubmitETrans {
                    etrans: ETrans {
                        src: vec![(st.fabric_addr(m.from, m.src_addr), m.obj.size() as u32)],
                        dst: vec![(st.fabric_addr(m.to, m.dst_addr), m.obj.size() as u32)],
                        immediate: false,
                        attrs: TransAttrs {
                            tenant: EVAC_TENANT,
                            priority: match reason {
                                DrainReason::Planned => 64,
                                DrainReason::Failure => 192,
                            },
                        },
                        ownership: TransOwnership::Caller,
                    },
                    tag: ((idx as u64) << 32) | i as u64,
                    reply_to: self.coordinator,
                })
                .collect();
            (plan, node, submissions)
        };
        for sub in submissions {
            engine.post(self.etrans, now, sub);
        }
        let _ = node;
        if plan.stranded.is_empty() {
            self.schedule_detach(engine, idx, MAX_DETACH_POLLS);
        }
        plan
    }

    fn schedule_detach(&self, engine: &mut Engine, idx: usize, polls_left: u32) {
        if polls_left == 0 {
            return;
        }
        let me = self.clone();
        engine.call_at(engine.now() + DETACH_POLL, move |e| {
            if !me.try_detach(e, idx) {
                me.schedule_detach(e, idx, polls_left - 1);
            }
        });
    }

    /// Attempts the final hot-remove step for a drained node. Succeeds
    /// only at full quiescence: all evacuation jobs done, no live object
    /// left, FEA idle, and the switch port empty with a clean credit
    /// ledger. On success the port detaches (releasing its ramp-up credit
    /// allocations), per-node flow reservations are reclaimed, the PBR
    /// route is pruned, and the heap slot goes [`NodeState::Offline`].
    pub fn try_detach(&self, engine: &mut Engine, idx: usize) -> bool {
        let now = engine.now();
        let (node, port, fea) = {
            let st = self.state.lock_state();
            if st.pending_evac.get(&idx).copied().unwrap_or(0) > 0 {
                return false;
            }
            if !st.heap.objects_on(idx).is_empty() {
                return false;
            }
            (
                st.topo.devices[idx].node,
                st.port_of[idx],
                st.topo.devices[idx].fea,
            )
        };
        if !engine.component::<Fea>(fea).is_quiescent(now) {
            return false;
        }
        // `detach_port` re-verifies emptiness and audits the link ledger;
        // it mutates nothing when it refuses.
        {
            let sw = engine.component_mut::<FabricSwitch>(self.switch);
            if sw.detach_port(port).is_err() {
                return false;
            }
            // The port is provably empty: prune the route and reclaim the
            // node's flow reservations.
            sw.routing.remove_pbr(node);
            sw.reclaim_flows(node);
        }
        let mut st = self.state.lock_state();
        if st.heap.set_offline(idx).is_err() {
            // Unreachable (objects_on was empty above), but never panic in
            // lib code: leave the node draining.
            return false;
        }
        st.pending_evac.remove(&idx);
        st.bump_epoch(now, node, ReconfigKind::NodeDetached);
        true
    }

    /// The deliberately broken removal: prunes the node's route and drops
    /// its flow reservations *immediately*, destroying the byte images of
    /// every resident object. In-flight and future flits toward the node
    /// are dropped as unroutable, so closed-loop initiators wedge — the
    /// failure mode E11 measures against the managed drain. Returns the
    /// number of objects lost.
    pub fn naive_yank(&self, engine: &mut Engine, idx: usize) -> usize {
        let now = engine.now();
        let (node, doomed) = {
            let st = self.state.lock_state();
            (st.topo.devices[idx].node, st.heap.objects_on(idx))
        };
        {
            let sw = engine.component_mut::<FabricSwitch>(self.switch);
            sw.routing.remove_pbr(node);
            sw.reclaim_flows(node);
        }
        let mut st = self.state.lock_state();
        let lost = st.store.destroy(&doomed);
        st.lost_objects += lost as u64;
        // Handles keep dangling at the dead node; only allocation stops.
        st.heap.set_draining(idx);
        st.bump_epoch(now, node, ReconfigKind::NodeYanked);
        lost
    }

    /// Schedules a failure-triggered drain for every failure event whose
    /// power domain covers a heap node (`domain_of[idx]` maps heap nodes
    /// to domains). Returns how many drains were scheduled. Nodes already
    /// draining or offline when the failure fires are skipped.
    pub fn apply_failure_schedule(
        &self,
        engine: &mut Engine,
        schedule: &FailureSchedule,
        domain_of: &[usize],
    ) -> usize {
        let mut scheduled = 0;
        for event in schedule.events() {
            for (idx, &domain) in domain_of.iter().enumerate() {
                if domain != event.domain {
                    continue;
                }
                let me = self.clone();
                engine.call_at(event.at, move |e| {
                    let active = me.state.lock_state().heap.node_state(idx) == NodeState::Active;
                    if active {
                        me.begin_drain(e, idx, DrainReason::Failure);
                    }
                });
                scheduled += 1;
            }
        }
        scheduled
    }
}

#[cfg(test)]
mod tests {
    use fcc_core::heap::PlacementHint;
    use fcc_fabric::adapter::{HostOp, HostRequest};
    use fcc_memnode::profile::MemNodeKind;

    use super::*;

    fn fam(capacity: u64) -> MemNodeProfile {
        MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, capacity)
    }

    fn build(engine: &mut Engine, n: usize) -> ElasticCluster {
        ElasticCluster::build(
            engine,
            TopologySpec::default(),
            1,
            (0..n).map(|_| fam(1 << 20)).collect(),
        )
    }

    /// Allocates `n` objects with content.
    fn populate(cluster: &ElasticCluster, n: usize, size: u64) -> Vec<FabricBox> {
        let mut st = cluster.state().lock_state();
        (0..n)
            .map(|i| {
                let obj = st.heap.alloc(size, PlacementHint::Auto).expect("fits");
                st.store.insert(obj, 0x5eed ^ i as u64);
                obj
            })
            .collect()
    }

    #[test]
    fn hot_add_two_phase_opens_node_after_settle() {
        let mut engine = Engine::new(11);
        let cluster = build(&mut engine, 1);
        let idx = cluster.hot_add(&mut engine, fam(1 << 20));
        // Phase 1 only: heap slot exists but refuses allocations.
        assert_eq!(
            cluster.state().lock_state().heap.node_state(idx),
            NodeState::Draining
        );
        engine.run_until_idle();
        let st = cluster.state().lock_state();
        assert_eq!(st.heap.node_state(idx), NodeState::Active);
        assert_eq!(st.log.count_of(ReconfigKind::AddStarted), 1);
        assert_eq!(st.log.count_of(ReconfigKind::NodeAnnounced), 1);
        assert_eq!(st.epoch, 2);
    }

    #[test]
    fn hot_added_node_carries_traffic() {
        let mut engine = Engine::new(12);
        let cluster = build(&mut engine, 1);
        let idx = cluster.hot_add(&mut engine, fam(1 << 20));
        engine.run_until_idle();
        // Read the new device through the fabric.
        struct Sink {
            done: usize,
        }
        impl Component for Sink {
            fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
                msg.downcast::<fcc_fabric::adapter::HostCompletion>()
                    .expect("completion");
                self.done += 1;
            }
        }
        let sink = engine.add_component("sink", Sink { done: 0 });
        let (fha, addr) = {
            let st = cluster.state().lock_state();
            (st.topo.hosts[0].fha, st.topo.devices[idx].range.base)
        };
        engine.post(
            fha,
            engine.now(),
            HostRequest {
                op: HostOp::Read { addr, bytes: 64 },
                tag: 1,
                reply_to: sink,
            },
        );
        engine.run_until_idle();
        assert_eq!(engine.component::<Sink>(sink).done, 1);
        let sw = engine.component::<FabricSwitch>(cluster.switch);
        assert_eq!(sw.unroutable.get(), 0, "two-phase add never drops");
        assert!(cluster.audit(&engine).is_clean());
    }

    #[test]
    fn drain_evacuates_and_detaches_at_quiescence() {
        let mut engine = Engine::new(13);
        let cluster = build(&mut engine, 2);
        let objs = populate(&cluster, 8, 4096);
        let before = cluster.state().lock_state().store.checksums();
        // Both tiers are identical, so every object lands on the same
        // node — drain whichever one holds them; the other is the target.
        let victim = cluster
            .state()
            .lock_state()
            .heap
            .node_of(objs[0])
            .expect("live");
        let plan = cluster.begin_drain(&mut engine, victim, DrainReason::Planned);
        assert!(plan.stranded.is_empty(), "other node has room");
        engine.run_until_idle();
        {
            let st = cluster.state().lock_state();
            assert_eq!(st.heap.node_state(victim), NodeState::Offline);
            assert_eq!(st.heap.objects_on(victim).len(), 0);
            assert_eq!(st.surviving(&objs), objs.len(), "no object lost");
            for (&obj, &sum) in &before {
                assert_eq!(st.store.checksum(obj), Some(sum), "byte-identical");
            }
            assert_eq!(st.log.count_of(ReconfigKind::EvacuationComplete), 1);
            assert_eq!(st.log.count_of(ReconfigKind::NodeDetached), 1);
        }
        // The detached port is gone; ledgers still balance.
        assert!(cluster.audit(&engine).is_clean());
        assert!(engine.deadlock_report().is_none());
    }

    #[test]
    fn drain_of_empty_node_detaches_without_jobs() {
        let mut engine = Engine::new(14);
        let cluster = build(&mut engine, 2);
        let plan = cluster.begin_drain(&mut engine, 0, DrainReason::Planned);
        assert!(plan.moves.is_empty());
        engine.run_until_idle();
        let st = cluster.state().lock_state();
        assert_eq!(st.heap.node_state(0), NodeState::Offline);
        assert_eq!(st.evac_jobs, 0);
    }

    #[test]
    fn failure_schedule_triggers_the_drain_path() {
        use fcc_workloads::failure::FailureEvent;
        let mut engine = Engine::new(15);
        let cluster = build(&mut engine, 2);
        populate(&cluster, 4, 1024);
        let schedule = FailureSchedule::explicit(vec![FailureEvent {
            at: SimTime::from_us(1.0),
            domain: 3,
            recovered_at: SimTime::from_us(50.0),
        }]);
        // Heap node 1 sits in power domain 3.
        let n = cluster.apply_failure_schedule(&mut engine, &schedule, &[0, 3]);
        assert_eq!(n, 1);
        engine.run_until_idle();
        let st = cluster.state().lock_state();
        assert_eq!(st.log.count_of(ReconfigKind::FailureDrain), 1);
        assert_eq!(st.heap.node_state(1), NodeState::Offline);
        assert_eq!(st.lost_objects, 0);
    }

    #[test]
    fn naive_yank_loses_residents_and_strands_inflight_ops() {
        let mut engine = Engine::new(16);
        let cluster = build(&mut engine, 1);
        let objs = populate(&cluster, 4, 4096);
        let victim = cluster
            .state()
            .lock_state()
            .heap
            .node_of(objs[0])
            .expect("live");
        // An in-flight read toward the victim at yank time.
        struct Sink {
            done: usize,
        }
        impl Component for Sink {
            fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
                msg.downcast::<fcc_fabric::adapter::HostCompletion>()
                    .expect("completion");
                self.done += 1;
            }
        }
        let sink = engine.add_component("sink", Sink { done: 0 });
        let (fha, addr) = {
            let st = cluster.state().lock_state();
            let (node, bin) = st.heap.locate(objs[0]).expect("live");
            (st.topo.hosts[0].fha, st.fabric_addr(node, bin))
        };
        engine.post(
            fha,
            engine.now(),
            HostRequest {
                op: HostOp::Read { addr, bytes: 64 },
                tag: 9,
                reply_to: sink,
            },
        );
        // Yank before the flit can route.
        let lost = cluster.naive_yank(&mut engine, victim);
        assert_eq!(lost, objs.len());
        engine.run_until_idle();
        assert_eq!(engine.component::<Sink>(sink).done, 0, "op never completes");
        let sw = engine.component::<FabricSwitch>(cluster.switch);
        assert!(sw.unroutable.get() >= 1, "flit dropped at the switch");
        let report = engine.deadlock_report().expect("stranded work detected");
        // The FHA's outstanding table names the stranded transaction.
        assert!(
            report.stuck.iter().any(|s| s.component.contains("fha")),
            "stuck: {:?}",
            report.stuck
        );
        assert_eq!(cluster.state().lock_state().lost_objects, objs.len() as u64);
    }
}
