#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Online fabric composition for FCC: hot-add, drain + hot-remove, and
//! failure-triggered evacuation.
//!
//! The paper's composable infrastructure is not static: chassis join the
//! fabric, age out, and fail in their own power domains (§3 D#5). This
//! crate grows the simulated runtime with the control plane for that
//! churn:
//!
//! * [`epoch`] — the epoch-based two-phase routing-update protocol as
//!   pure plan data, shared with the `fcc-verify` model checker.
//! * [`composer`] — [`composer::ElasticCluster`], the runtime executing
//!   hot-add (routes before announce), managed drain + detach (evacuate,
//!   verify quiescence, reclaim credits, unplug), failure-triggered
//!   drains, and the deliberately broken naive yank.
//! * [`store`] — byte-accurate shadow images of heap objects, so data
//!   loss under churn is measurable, not hypothetical.
//! * [`events`] — the reconfiguration event log mirrored into Perfetto
//!   trace instants.
//! * [`loadgen`] — a closed-loop Zipf load generator that resolves every
//!   access through the live heap, used by the E11 churn experiment.

pub mod composer;
pub mod epoch;
pub mod events;
pub mod loadgen;
pub mod store;

pub use composer::{ClusterState, DrainReason, ElasticCluster, LockClusterState, EVAC_TENANT};
pub use epoch::{
    hot_add_naive, hot_add_plan, hot_remove_naive, hot_remove_plan, ReconfigPlan, UpdateStep,
};
pub use events::{ReconfigEvent, ReconfigKind, ReconfigLog};
pub use loadgen::{HeapLoadGen, StartLoad};
pub use store::ShadowStore;
