//! The reconfiguration event log.
//!
//! Every epoch transition of the composer is recorded as a
//! [`ReconfigEvent`] and (when tracing is on) emitted as a Perfetto
//! instant on the `reconfig` track, so a trace of a churn run shows the
//! add/drain/detach lifecycle against the data-plane spans.

use fcc_proto::addr::NodeId;
use fcc_sim::SimTime;

/// What a reconfiguration epoch transition did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigKind {
    /// Hot-add phase 1: the node is attached and its routes are being
    /// installed; it is not yet announced.
    AddStarted,
    /// Hot-add phase 2: routes have settled, FHAs learned the mapping,
    /// the heap node opened for allocation.
    NodeAnnounced,
    /// A planned drain began: the heap node stopped allocating and its
    /// evacuation jobs were submitted.
    DrainStarted,
    /// A power-domain failure triggered the drain path.
    FailureDrain,
    /// Every evacuation job for the node completed.
    EvacuationComplete,
    /// The node passed the quiescence checks, its routes were pruned, its
    /// credits reclaimed, and its port detached.
    NodeDetached,
    /// The node was yanked with no drain and no quiescence guard (the
    /// failure-mode baseline E11 measures against).
    NodeYanked,
}

impl std::fmt::Display for ReconfigKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReconfigKind::AddStarted => "add-started",
            ReconfigKind::NodeAnnounced => "announced",
            ReconfigKind::DrainStarted => "drain-started",
            ReconfigKind::FailureDrain => "failure-drain",
            ReconfigKind::EvacuationComplete => "evacuated",
            ReconfigKind::NodeDetached => "detached",
            ReconfigKind::NodeYanked => "yanked",
        };
        write!(f, "{s}")
    }
}

/// One epoch transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigEvent {
    /// When the transition happened.
    pub at: SimTime,
    /// The epoch that began with this transition.
    pub epoch: u64,
    /// The fabric node the transition concerns.
    pub node: NodeId,
    /// What happened.
    pub kind: ReconfigKind,
}

/// The append-only reconfiguration log.
#[derive(Debug, Default, Clone)]
pub struct ReconfigLog {
    events: Vec<ReconfigEvent>,
}

impl ReconfigLog {
    /// An empty log.
    pub fn new() -> Self {
        ReconfigLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: ReconfigEvent) {
        self.events.push(event);
    }

    /// All events in append (= time) order.
    pub fn events(&self) -> &[ReconfigEvent] {
        &self.events
    }

    /// Events of one kind.
    pub fn count_of(&self, kind: ReconfigKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// The most recent event for `node`, if any.
    pub fn last_for(&self, node: NodeId) -> Option<&ReconfigEvent> {
        self.events.iter().rev().find(|e| e.node == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_preserves_order_and_counts() {
        let mut log = ReconfigLog::new();
        for (i, kind) in [
            ReconfigKind::AddStarted,
            ReconfigKind::NodeAnnounced,
            ReconfigKind::DrainStarted,
            ReconfigKind::NodeDetached,
        ]
        .into_iter()
        .enumerate()
        {
            log.push(ReconfigEvent {
                at: SimTime::from_ns(i as f64),
                epoch: i as u64 + 1,
                node: NodeId(7),
                kind,
            });
        }
        assert_eq!(log.events().len(), 4);
        assert_eq!(log.count_of(ReconfigKind::DrainStarted), 1);
        let last = log.last_for(NodeId(7)).expect("events for node 7");
        assert_eq!(last.kind, ReconfigKind::NodeDetached);
        assert!(log.last_for(NodeId(9)).is_none());
    }
}
