//! The shadow content store: byte-accurate object contents for churn
//! experiments.
//!
//! The simulated memory devices are analytic — they model *timing*, not
//! bytes. To make data loss observable (the whole point of comparing a
//! managed drain against a naive yank), the store keeps a deterministic
//! byte image per live [`FabricBox`]. A managed drain relocates an
//! object's placement but never touches its image; a yank destroys the
//! images of every object still resident on the yanked node. Checksums
//! before and after a churn cycle prove byte-identical survival.

use std::collections::BTreeMap;

use fcc_core::heap::FabricBox;

/// FNV-1a over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 step, used to fill deterministic content.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-object byte images keyed by heap handle.
#[derive(Debug, Default, Clone)]
pub struct ShadowStore {
    data: BTreeMap<FabricBox, Vec<u8>>,
}

impl ShadowStore {
    /// An empty store.
    pub fn new() -> Self {
        ShadowStore::default()
    }

    /// Fills `obj` with `obj.size()` deterministic bytes derived from
    /// `seed` (same seed ⇒ same image).
    pub fn insert(&mut self, obj: FabricBox, seed: u64) {
        let mut state = seed;
        let mut bytes = Vec::with_capacity(obj.size() as usize);
        while bytes.len() < obj.size() as usize {
            let word = splitmix64(&mut state).to_le_bytes();
            let take = (obj.size() as usize - bytes.len()).min(8);
            bytes.extend_from_slice(&word[..take]);
        }
        self.data.insert(obj, bytes);
    }

    /// The object's image, if it survives.
    pub fn get(&self, obj: FabricBox) -> Option<&[u8]> {
        self.data.get(&obj).map(Vec::as_slice)
    }

    /// Whether the object's image survives.
    pub fn contains(&self, obj: FabricBox) -> bool {
        self.data.contains_key(&obj)
    }

    /// Removes one image (object freed).
    pub fn remove(&mut self, obj: FabricBox) -> bool {
        self.data.remove(&obj).is_some()
    }

    /// Destroys the images of `objs` (what a yank does to a node's
    /// residents); returns how many were lost.
    pub fn destroy(&mut self, objs: &[FabricBox]) -> usize {
        objs.iter()
            .filter(|&&o| self.data.remove(&o).is_some())
            .count()
    }

    /// Number of live images.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// FNV-1a checksum of one object's image.
    pub fn checksum(&self, obj: FabricBox) -> Option<u64> {
        self.data.get(&obj).map(|b| fnv1a(b))
    }

    /// Checksums of every live image (for before/after comparison).
    pub fn checksums(&self) -> BTreeMap<FabricBox, u64> {
        self.data.iter().map(|(&o, b)| (o, fnv1a(b))).collect()
    }
}

#[cfg(test)]
mod tests {
    use fcc_core::heap::{HeapNodeCfg, PlacementHint, UnifiedHeap};
    use fcc_memnode::profile::{MemNodeKind, MemNodeProfile};

    use super::*;

    fn boxes(n: usize, size: u64) -> Vec<FabricBox> {
        let mut heap = UnifiedHeap::new(vec![HeapNodeCfg {
            profile: MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, 1 << 24),
        }]);
        (0..n)
            .map(|_| heap.alloc(size, PlacementHint::Auto).expect("fits"))
            .collect()
    }

    #[test]
    fn content_is_deterministic_per_seed() {
        let objs = boxes(2, 4096);
        let mut a = ShadowStore::new();
        let mut b = ShadowStore::new();
        a.insert(objs[0], 42);
        b.insert(objs[0], 42);
        assert_eq!(a.checksum(objs[0]), b.checksum(objs[0]));
        b.insert(objs[1], 43);
        assert_ne!(b.checksum(objs[0]), b.checksum(objs[1]));
        assert_eq!(a.get(objs[0]).expect("live").len(), 4096);
    }

    #[test]
    fn destroy_loses_exactly_the_residents() {
        let objs = boxes(3, 256);
        let mut s = ShadowStore::new();
        for (i, &o) in objs.iter().enumerate() {
            s.insert(o, i as u64);
        }
        let before = s.checksums();
        assert_eq!(s.destroy(&objs[..2]), 2);
        assert_eq!(s.len(), 1);
        assert!(s.contains(objs[2]));
        assert_eq!(
            s.checksum(objs[2]),
            before.get(&objs[2]).copied(),
            "survivor is byte-identical"
        );
        // Destroying again finds nothing.
        assert_eq!(s.destroy(&objs[..2]), 0);
    }

    #[test]
    fn odd_sizes_fill_exactly() {
        let objs = boxes(1, 100);
        let mut s = ShadowStore::new();
        s.insert(objs[0], 7);
        assert_eq!(s.get(objs[0]).expect("live").len(), 100);
    }
}
