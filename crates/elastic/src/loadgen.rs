//! A closed-loop, heap-directed load generator for churn experiments.
//!
//! [`HeapLoadGen`] keeps a window of outstanding operations against a
//! Zipf-popular working set of heap objects. Every operation resolves its
//! object through the live heap (so placements moved by a drain are
//! followed transparently — the paper's migration-transparent smart
//! pointer) and issues a real fabric request through an FHA. Operations
//! whose flits are dropped (a yanked node) never complete and pin their
//! window slot forever; the generator reports them as outstanding work,
//! so a wedged run surfaces in
//! [`deadlock_report`](fcc_sim::Engine::deadlock_report).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use fcc_core::heap::FabricBox;
use fcc_fabric::adapter::{HostCompletion, HostOp, HostRequest};
use fcc_sim::{Component, ComponentId, Counter, Ctx, Histogram, Msg, PendingWork, SimTime};
use fcc_workloads::ZipfStream;
use rand::Rng;

use crate::composer::{ClusterState, LockClusterState};

/// Kick-off message: post one to the generator at start time.
#[derive(Debug, Clone, Copy)]
pub struct StartLoad;

/// The closed-loop generator.
pub struct HeapLoadGen {
    state: Arc<Mutex<ClusterState>>,
    fha: ComponentId,
    host: u16,
    objects: Vec<FabricBox>,
    zipf: ZipfStream,
    window: usize,
    stop_at: SimTime,
    in_flight: BTreeMap<u64, (FabricBox, SimTime)>,
    next_tag: u64,
    /// Completed-operation latency (ps).
    pub latency: Histogram,
    /// Operations issued.
    pub issued: Counter,
    /// Operations completed.
    pub completed: Counter,
    /// Picks skipped because the object's handle no longer resolves.
    pub skipped: Counter,
}

impl HeapLoadGen {
    /// Creates a generator over `objects` with Zipf skew `theta`, keeping
    /// `window` operations outstanding through `fha` until `stop_at`.
    ///
    /// # Panics
    ///
    /// Panics if `objects` is empty or `window` is zero.
    pub fn new(
        state: Arc<Mutex<ClusterState>>,
        fha: ComponentId,
        host: u16,
        objects: Vec<FabricBox>,
        theta: f64,
        window: usize,
        stop_at: SimTime,
    ) -> Self {
        assert!(!objects.is_empty(), "empty working set");
        assert!(window > 0, "zero window");
        let zipf = ZipfStream::new(objects.len() as u64, theta);
        HeapLoadGen {
            state,
            fha,
            host,
            objects,
            zipf,
            window,
            stop_at,
            in_flight: BTreeMap::new(),
            next_tag: 0,
            latency: Histogram::new(),
            issued: Counter::new(),
            completed: Counter::new(),
            skipped: Counter::new(),
        }
    }

    fn fill(&mut self, ctx: &mut Ctx<'_>) {
        while self.in_flight.len() < self.window && ctx.now() <= self.stop_at {
            let pick = self.zipf.next(ctx.rng()) as usize;
            let obj = self.objects[pick];
            let is_write = ctx.rng().gen_range(0..10u32) < 3;
            // Resolve through the live heap: migrations are transparent.
            let addr = {
                let mut st = self.state.lock_state();
                match st.heap.locate(obj) {
                    Ok((node, bin)) => {
                        // Update the object's access profile (temperature,
                        // sharers) like a real accessor would.
                        let _ = st.heap.access(obj, self.host, is_write);
                        st.fabric_addr(node, bin)
                    }
                    Err(_) => {
                        self.skipped.inc();
                        continue;
                    }
                }
            };
            let tag = self.next_tag;
            self.next_tag += 1;
            self.in_flight.insert(tag, (obj, ctx.now()));
            self.issued.inc();
            ctx.send(
                self.fha,
                SimTime::ZERO,
                HostRequest {
                    op: if is_write {
                        HostOp::Write { addr, bytes: 64 }
                    } else {
                        HostOp::Read { addr, bytes: 64 }
                    },
                    tag,
                    reply_to: ctx.self_id(),
                },
            );
        }
    }
}

impl Component for HeapLoadGen {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<StartLoad>() {
            Ok(StartLoad) => {
                self.fill(ctx);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<HostCompletion>() {
            Ok(hc) => {
                if self.in_flight.remove(&hc.tag).is_some() {
                    self.latency.record_time(hc.latency());
                    self.completed.inc();
                }
                self.fill(ctx);
            }
            Err(m) => panic!("loadgen: unexpected message {}", m.type_name()),
        }
    }

    fn outstanding(&self, out: &mut Vec<PendingWork>) {
        out.extend(
            self.in_flight
                .iter()
                .map(|(&tag, &(obj, since))| PendingWork {
                    what: format!("op {tag} on {} B object (issued {since})", obj.size()),
                    waiting_on: Some(self.fha),
                }),
        );
    }
}

#[cfg(test)]
mod tests {
    use fcc_core::heap::PlacementHint;
    use fcc_fabric::topology::TopologySpec;
    use fcc_memnode::profile::{MemNodeKind, MemNodeProfile};
    use fcc_sim::Engine;

    use crate::composer::ElasticCluster;

    use super::*;

    #[test]
    fn closed_loop_sustains_window_and_stops() {
        let mut engine = Engine::new(31);
        let cluster = ElasticCluster::build(
            &mut engine,
            TopologySpec::default(),
            1,
            vec![MemNodeProfile::omega_like(
                MemNodeKind::CpulessNuma,
                1 << 20,
            )],
        );
        let objs: Vec<FabricBox> = {
            let mut st = cluster.state().lock_state();
            (0..16)
                .map(|i| {
                    let o = st.heap.alloc(1024, PlacementHint::Auto).expect("fits");
                    st.store.insert(o, i);
                    o
                })
                .collect()
        };
        let fha = cluster.state().lock_state().topo.hosts[0].fha;
        let gen = engine.add_component(
            "loadgen",
            HeapLoadGen::new(
                Arc::clone(cluster.state()),
                fha,
                100,
                objs,
                1.1,
                4,
                SimTime::from_us(50.0),
            ),
        );
        engine.post(gen, SimTime::ZERO, StartLoad);
        engine.run_until_idle();
        let g = engine.component::<HeapLoadGen>(gen);
        assert!(g.completed.get() > 20, "completed {}", g.completed.get());
        assert_eq!(g.completed.get(), g.issued.get(), "loop drained cleanly");
        assert!(g.latency.quantile(0.5) > 0);
        assert!(engine.deadlock_report().is_none());
    }
}
