//! Integration tests for online composition: byte-identical object
//! survival across a full drain → remove → re-add cycle, and
//! credit-ledger balance at quiescence after arbitrary add/remove
//! sequences.

use std::collections::BTreeMap;

use fcc_core::heap::{FabricBox, NodeState, PlacementHint};
use fcc_elastic::{DrainReason, ElasticCluster, LockClusterState};
use fcc_fabric::topology::TopologySpec;
use fcc_memnode::profile::{MemNodeKind, MemNodeProfile};
use fcc_sim::Engine;

fn fam(capacity: u64) -> MemNodeProfile {
    MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, capacity)
}

fn build(engine: &mut Engine, nodes: usize) -> ElasticCluster {
    ElasticCluster::build(
        engine,
        TopologySpec::default(),
        1,
        (0..nodes).map(|_| fam(1 << 20)).collect(),
    )
}

fn populate(cluster: &ElasticCluster, n: usize, size: u64) -> Vec<FabricBox> {
    let mut st = cluster.state().lock_state();
    (0..n)
        .map(|i| {
            // Test-fixture allocation: capacity is sized to fit.
            #[allow(clippy::expect_used)]
            let obj = st
                .heap
                .alloc(size, PlacementHint::Auto)
                .expect("working set fits");
            st.store.insert(obj, 0xC0FFEE ^ i as u64);
            obj
        })
        .collect()
}

/// Every live heap object survives a drain + hot-remove + hot-add cycle
/// byte-identically: the checksums taken before any churn still match
/// after the victim node is gone and a replacement has joined — and
/// after the *replacement's* predecessor is drained onto it.
#[test]
fn objects_survive_drain_remove_readd_cycle_byte_identically() {
    let mut engine = Engine::new(0xC1C);
    let cluster = build(&mut engine, 2);
    let objs = populate(&cluster, 8, 4096);
    let before: BTreeMap<FabricBox, u64> = cluster.state().lock_state().store.checksums();

    // All objects land on one node (identical tiers, stable order).
    let first = cluster
        .state()
        .lock_state()
        .heap
        .node_of(objs[0])
        .expect("live");

    // Drain + remove the node holding the working set.
    let plan = cluster.begin_drain(&mut engine, first, DrainReason::Planned);
    assert!(plan.stranded.is_empty(), "the peer node has room");
    engine.run_until_idle();
    {
        let st = cluster.state().lock_state();
        assert_eq!(st.heap.node_state(first), NodeState::Offline);
    }

    // Hot-add a replacement chassis.
    let added = cluster.hot_add(&mut engine, fam(1 << 20));
    engine.run_until_idle();
    assert_eq!(
        cluster.state().lock_state().heap.node_state(added),
        NodeState::Active
    );

    // Drain the survivor too: every object must relocate onto the
    // hot-added node, exercising the full add-then-serve path.
    let second = cluster
        .state()
        .lock_state()
        .heap
        .node_of(objs[0])
        .expect("still live");
    assert_ne!(second, first, "objects moved off the removed node");
    let plan = cluster.begin_drain(&mut engine, second, DrainReason::Planned);
    assert!(plan.stranded.is_empty(), "the new node has room");
    engine.run_until_idle();

    let st = cluster.state().lock_state();
    for &obj in &objs {
        assert_eq!(
            st.heap.node_of(obj).expect("live"),
            added,
            "object ended on the hot-added node"
        );
        let sum = before.get(&obj).copied().expect("checksummed");
        assert_eq!(
            st.store.checksum(obj),
            Some(sum),
            "byte-identical after the full cycle"
        );
    }
    assert_eq!(st.lost_objects, 0);
    drop(st);
    assert!(cluster.audit(&engine).is_clean(), "ledgers balance");
    assert!(engine.deadlock_report().is_none());
}

mod ledger_balance {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After ANY sequence of hot-adds and managed drains, every
        /// credit ledger in the fabric balances at quiescence and no
        /// object is lost. Each op is `(kind, pick)`: kind 0 hot-adds a
        /// fresh chassis mid-run, kind 1 drains the pick-th active node
        /// (one active node always stays, mirroring the operator
        /// invariant).
        #[test]
        fn audit_is_clean_after_any_add_remove_sequence(
            ops in prop::collection::vec((0u8..2, 0u8..8), 1..6),
        ) {
            let mut engine = Engine::new(0xBA1A);
            let cluster = build(&mut engine, 2);
            let objs = populate(&cluster, 6, 2048);
            for (kind, pick) in ops {
                if kind == 0 {
                    cluster.hot_add(&mut engine, fam(1 << 20));
                } else {
                    let active: Vec<usize> = {
                        let st = cluster.state().lock_state();
                        (0..st.heap.node_count())
                            .filter(|&i| st.heap.node_state(i) == NodeState::Active)
                            .collect()
                    };
                    // Keep one node active so drains always have a
                    // target.
                    if active.len() < 2 {
                        continue;
                    }
                    let victim = active[pick as usize % active.len()];
                    cluster.begin_drain(&mut engine, victim, DrainReason::Planned);
                }
                engine.run_until_idle();
            }
            engine.run_until_idle();
            let report = cluster.audit(&engine);
            prop_assert!(report.is_clean(), "unbalanced ledger: {report:?}");
            // Take the deadlock report before locking the cluster state:
            // the scan polls DrainCoordinator::outstanding, which locks
            // the state itself.
            let deadlock = engine.deadlock_report();
            let st = cluster.state().lock_state();
            prop_assert_eq!(st.surviving(&objs), objs.len());
            prop_assert_eq!(st.lost_objects, 0);
            prop_assert!(deadlock.is_none());
        }
    }
}
