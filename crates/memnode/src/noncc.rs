//! The non-CC NUMA node: shared memory without hardware coherence.
//!
//! "Fabric-attached Non-CC-NUMA memory node [...] operates similarly to
//! the CC-NUMA one but lacks cache coherence, e.g., Intel's SCC and IBM
//! Cell's SPE. This simplifies the hardware design of an FHA/FEA, but
//! complicates the software design and implementation" (§3 D#2).
//!
//! [`NonCoherentShared`] services reads and writes with no snooping at
//! all — that is the hardware simplification — and, to make the *software
//! burden* measurable, records a **hazard** whenever a host writes a line
//! last written by a different host with no intervening flush: exactly the
//! update a coherent node would have ordered, and the one software fences
//! (CLFlush in this model) must now order explicitly.

use std::collections::HashMap;

use fcc_proto::addr::NodeId;
use fcc_proto::channel::{CacheOpcode, MemOpcode, Transaction, TransactionKind};
use fcc_sim::SimTime;

use fcc_fabric::endpoint::{Endpoint, EndpointResponse};

use crate::dram::{DramDevice, DramTiming};

const LINE: u64 = 64;

#[derive(Debug, Clone, Copy)]
struct LineMeta {
    last_writer: NodeId,
    flushed: bool,
}

/// A software-coherent shared memory node.
#[derive(Debug)]
pub struct NonCoherentShared {
    dram: DramDevice,
    meta: HashMap<u64, LineMeta>,
    /// Write-write transitions between hosts without an intervening flush.
    pub hazards: u64,
    /// Explicit flushes observed.
    pub flushes: u64,
}

impl NonCoherentShared {
    /// Creates a node of `capacity` bytes.
    pub fn new(timing: DramTiming, capacity: u64) -> Self {
        NonCoherentShared {
            dram: DramDevice::new(timing, capacity),
            meta: HashMap::new(),
            hazards: 0,
            flushes: 0,
        }
    }

    /// The DRAM backing store.
    pub fn dram(&self) -> &DramDevice {
        &self.dram
    }

    fn note_write(&mut self, line: u64, writer: NodeId) {
        match self.meta.get_mut(&line) {
            Some(meta) => {
                if meta.last_writer != writer && !meta.flushed {
                    self.hazards += 1;
                }
                meta.last_writer = writer;
                meta.flushed = false;
            }
            None => {
                self.meta.insert(
                    line,
                    LineMeta {
                        last_writer: writer,
                        flushed: false,
                    },
                );
            }
        }
    }

    fn note_flush(&mut self, line: u64) {
        self.flushes += 1;
        if let Some(meta) = self.meta.get_mut(&line) {
            meta.flushed = true;
        }
    }
}

impl Endpoint for NonCoherentShared {
    fn is_idle(&self, now: SimTime) -> bool {
        self.dram.idle_at() <= now
    }

    fn service(&mut self, txn: &Transaction, now: SimTime) -> EndpointResponse {
        let line = txn.addr & !(LINE - 1);
        match txn.kind {
            TransactionKind::Cache(CacheOpcode::CLFlush) => {
                self.note_flush(line);
                EndpointResponse {
                    kind: Some(TransactionKind::Cache(CacheOpcode::Go)),
                    bytes: 0,
                    ready_at: now + SimTime::from_ns(5.0),
                }
            }
            TransactionKind::Mem(op) if op.carries_data() => {
                self.note_write(line, txn.src);
                let ready_at = self.dram.access(txn.addr, txn.bytes.max(64), now);
                EndpointResponse {
                    kind: Some(TransactionKind::Mem(MemOpcode::Cmp)),
                    bytes: 0,
                    ready_at,
                }
            }
            _ => {
                let bytes = txn.bytes.max(64);
                let ready_at = self.dram.access(txn.addr, bytes, now);
                EndpointResponse {
                    kind: Some(TransactionKind::Mem(MemOpcode::MemData)),
                    bytes,
                    ready_at,
                }
            }
        }
    }

    fn capacity(&self) -> u64 {
        self.dram.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(src: u16, addr: u64) -> Transaction {
        Transaction {
            id: 1,
            kind: TransactionKind::Mem(MemOpcode::MemWr),
            addr,
            bytes: 64,
            src: NodeId(src),
            dst: NodeId(100),
        }
    }

    fn flush(src: u16, addr: u64) -> Transaction {
        Transaction {
            kind: TransactionKind::Cache(CacheOpcode::CLFlush),
            bytes: 0,
            ..write(src, addr)
        }
    }

    #[test]
    fn same_host_rewrites_are_safe() {
        let mut dev = NonCoherentShared::new(DramTiming::default(), 1 << 20);
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            now = dev.service(&write(1, 0x100), now).ready_at;
        }
        assert_eq!(dev.hazards, 0);
    }

    #[test]
    fn cross_host_unfenced_write_is_a_hazard() {
        let mut dev = NonCoherentShared::new(DramTiming::default(), 1 << 20);
        let t = dev.service(&write(1, 0x100), SimTime::ZERO).ready_at;
        dev.service(&write(2, 0x100), t);
        assert_eq!(dev.hazards, 1);
    }

    #[test]
    fn flush_orders_the_handoff() {
        let mut dev = NonCoherentShared::new(DramTiming::default(), 1 << 20);
        let t = dev.service(&write(1, 0x100), SimTime::ZERO).ready_at;
        let t = dev.service(&flush(1, 0x100), t).ready_at;
        dev.service(&write(2, 0x100), t);
        assert_eq!(dev.hazards, 0);
        assert_eq!(dev.flushes, 1);
    }

    #[test]
    fn distinct_lines_do_not_interfere() {
        let mut dev = NonCoherentShared::new(DramTiming::default(), 1 << 20);
        let t = dev.service(&write(1, 0x100), SimTime::ZERO).ready_at;
        dev.service(&write(2, 0x140), t);
        assert_eq!(dev.hazards, 0, "different cachelines");
    }

    #[test]
    fn reads_never_hazard() {
        let mut dev = NonCoherentShared::new(DramTiming::default(), 1 << 20);
        let rd = Transaction {
            kind: TransactionKind::Mem(MemOpcode::MemRd),
            ..write(2, 0x100)
        };
        let t = dev.service(&write(1, 0x100), SimTime::ZERO).ready_at;
        let r = dev.service(&rd, t);
        assert_eq!(r.kind, Some(TransactionKind::Mem(MemOpcode::MemData)));
        assert_eq!(dev.hazards, 0);
    }
}
