//! A full-map directory for write-invalidate MESI coherence.
//!
//! "Fabric-attached CC-NUMA memory node [...] is usually realized via a
//! cross-node, directory-based, write-invalidate cache coherence protocol
//! within an FHA/FEA" (§3 D#2) — the DASH/FLASH lineage. This module is
//! the pure protocol engine: given read/write/evict requests it returns
//! the snoops to send and the grants to issue, and enforces the
//! single-writer/multiple-reader invariant. The event-driven wrapper that
//! runs it at an FEA is [`DirectoryNode`](crate::ccnuma::DirectoryNode).

use std::collections::{BTreeMap, BTreeSet};

use fcc_proto::addr::NodeId;

/// Stable directory state of one line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LineState {
    /// No cached copies; memory is the only holder.
    Uncached,
    /// Read-only copies at the listed nodes.
    Shared(BTreeSet<NodeId>),
    /// One writable (possibly dirty) copy.
    Modified(NodeId),
}

/// Access grant issued to a requester once a request resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Grant {
    /// Read-only copy.
    Shared,
    /// Writable, exclusive copy.
    Exclusive,
}

/// Snoop kinds the directory sends to caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnoopKind {
    /// Fetch the dirty data and downgrade the holder to Shared.
    Data,
    /// Invalidate the copy (holder writes back if dirty).
    Invalidate,
}

/// What the directory wants done after accepting a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirOutcome {
    /// Resolved immediately: grant the requester (data from memory).
    Ready(Grant),
    /// Snoops must complete first; the caller sends them and feeds
    /// responses to [`Directory::snoop_response`].
    Wait(Vec<(NodeId, SnoopKind)>),
    /// The line already has a request in flight; retry after it resolves.
    Busy,
}

#[derive(Debug, Clone)]
struct Pending {
    requester: NodeId,
    want: Grant,
    awaiting: BTreeSet<NodeId>,
    /// Whether any snooped node forwarded dirty data (memory update due).
    dirty_data: bool,
}

#[derive(Debug, Clone, Default)]
struct Line {
    state: Option<LineState>,
    pending: Option<Pending>,
}

/// The directory controller state for one CC-NUMA node.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    lines: BTreeMap<u64, Line>,
    /// Snoops issued (statistics).
    pub snoops_sent: u64,
    /// Requests that found the line busy.
    pub busy_rejections: u64,
}

/// One line's entry in a [`Directory::canonical`] snapshot:
/// `(line_addr, state, pending (requester, grant, sharers-to-ack, data_ready))`.
pub type CanonicalLine = (u64, LineState, Option<(NodeId, Grant, Vec<NodeId>, bool)>);

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state of a line (defaults to Uncached).
    pub fn state(&self, line: u64) -> LineState {
        self.lines
            .get(&line)
            .and_then(|l| l.state.clone())
            .unwrap_or(LineState::Uncached)
    }

    /// Whether a line has an unresolved request.
    pub fn is_busy(&self, line: u64) -> bool {
        self.lines
            .get(&line)
            .map(|l| l.pending.is_some())
            .unwrap_or(false)
    }

    /// A read request (load miss) from `requester`.
    pub fn read(&mut self, line: u64, requester: NodeId) -> DirOutcome {
        let entry = self.lines.entry(line).or_default();
        if entry.pending.is_some() {
            self.busy_rejections += 1;
            return DirOutcome::Busy;
        }
        match entry.state.take().unwrap_or(LineState::Uncached) {
            LineState::Uncached => {
                entry.state = Some(LineState::Shared([requester].into()));
                DirOutcome::Ready(Grant::Shared)
            }
            LineState::Shared(mut s) => {
                s.insert(requester);
                entry.state = Some(LineState::Shared(s));
                DirOutcome::Ready(Grant::Shared)
            }
            LineState::Modified(owner) if owner == requester => {
                // Owner re-reading its own line: nothing to do.
                entry.state = Some(LineState::Modified(owner));
                DirOutcome::Ready(Grant::Exclusive)
            }
            LineState::Modified(owner) => {
                entry.state = Some(LineState::Modified(owner));
                entry.pending = Some(Pending {
                    requester,
                    want: Grant::Shared,
                    awaiting: [owner].into(),
                    dirty_data: false,
                });
                self.snoops_sent += 1;
                DirOutcome::Wait(vec![(owner, SnoopKind::Data)])
            }
        }
    }

    /// A write request (store miss or upgrade) from `requester`.
    pub fn write(&mut self, line: u64, requester: NodeId) -> DirOutcome {
        let entry = self.lines.entry(line).or_default();
        if entry.pending.is_some() {
            self.busy_rejections += 1;
            return DirOutcome::Busy;
        }
        match entry.state.take().unwrap_or(LineState::Uncached) {
            LineState::Uncached => {
                entry.state = Some(LineState::Modified(requester));
                DirOutcome::Ready(Grant::Exclusive)
            }
            LineState::Shared(s) => {
                let others: BTreeSet<NodeId> =
                    s.iter().copied().filter(|&n| n != requester).collect();
                if others.is_empty() {
                    entry.state = Some(LineState::Modified(requester));
                    return DirOutcome::Ready(Grant::Exclusive);
                }
                entry.state = Some(LineState::Shared(s));
                entry.pending = Some(Pending {
                    requester,
                    want: Grant::Exclusive,
                    awaiting: others.clone(),
                    dirty_data: false,
                });
                self.snoops_sent += others.len() as u64;
                DirOutcome::Wait(
                    others
                        .into_iter()
                        .map(|n| (n, SnoopKind::Invalidate))
                        .collect(),
                )
            }
            LineState::Modified(owner) if owner == requester => {
                entry.state = Some(LineState::Modified(owner));
                DirOutcome::Ready(Grant::Exclusive)
            }
            LineState::Modified(owner) => {
                entry.state = Some(LineState::Modified(owner));
                entry.pending = Some(Pending {
                    requester,
                    want: Grant::Exclusive,
                    awaiting: [owner].into(),
                    dirty_data: false,
                });
                self.snoops_sent += 1;
                DirOutcome::Wait(vec![(owner, SnoopKind::Invalidate)])
            }
        }
    }

    /// Feeds one snoop response; returns the grant once all snoops for the
    /// line have answered.
    ///
    /// `had_dirty_data` reports that the snooped cache forwarded a modified
    /// copy (the caller must write it back to memory before granting).
    ///
    /// # Panics
    ///
    /// Panics if no snoop to `from` is outstanding for `line`.
    pub fn snoop_response(
        &mut self,
        line: u64,
        from: NodeId,
        had_dirty_data: bool,
    ) -> Option<(NodeId, Grant, bool)> {
        // Documented-panic API: a snoop response without an outstanding
        // snoop is a protocol bug the caller must not paper over.
        #[allow(clippy::expect_used)]
        let entry = self.lines.get_mut(&line).expect("line exists");
        #[allow(clippy::expect_used)]
        let pending = entry.pending.as_mut().expect("pending request");
        assert!(
            pending.awaiting.remove(&from),
            "unexpected snoop response from {from}"
        );
        pending.dirty_data |= had_dirty_data;
        if !pending.awaiting.is_empty() {
            return None;
        }
        // `as_mut` above proved pending is Some.
        #[allow(clippy::expect_used)]
        let pending = entry.pending.take().expect("checked");
        let new_state = match pending.want {
            Grant::Shared => {
                // Previous owner downgraded; requester joins as a sharer.
                let mut s = BTreeSet::new();
                if let Some(LineState::Modified(owner)) = entry.state.take() {
                    s.insert(owner);
                }
                s.insert(pending.requester);
                LineState::Shared(s)
            }
            Grant::Exclusive => LineState::Modified(pending.requester),
        };
        entry.state = Some(new_state);
        Some((pending.requester, pending.want, pending.dirty_data))
    }

    /// An eviction notice from a cache (writeback or clean drop).
    pub fn evict(&mut self, line: u64, from: NodeId) {
        let Some(entry) = self.lines.get_mut(&line) else {
            return;
        };
        let state = entry.state.take().unwrap_or(LineState::Uncached);
        entry.state = Some(match state {
            LineState::Modified(owner) if owner == from => LineState::Uncached,
            LineState::Shared(mut s) => {
                s.remove(&from);
                if s.is_empty() {
                    LineState::Uncached
                } else {
                    LineState::Shared(s)
                }
            }
            other => other,
        });
    }

    /// A canonical, hashable snapshot of the protocol-relevant state.
    ///
    /// Entries are sorted by line address; lines that are `Uncached`
    /// with no pending request are omitted, and the statistics
    /// counters (`snoops_sent`, `busy_rejections`) are excluded — two
    /// directories that would behave identically from here on produce
    /// equal snapshots. Used by the `fcc-verify` model checker to
    /// deduplicate explored states.
    pub fn canonical(&self) -> Vec<CanonicalLine> {
        let mut entries: Vec<_> = self
            .lines
            .iter()
            .filter_map(|(&addr, l)| {
                let state = l.state.clone().unwrap_or(LineState::Uncached);
                let pending = l.pending.as_ref().map(|p| {
                    (
                        p.requester,
                        p.want,
                        p.awaiting.iter().copied().collect::<Vec<_>>(),
                        p.dirty_data,
                    )
                });
                if state == LineState::Uncached && pending.is_none() {
                    None
                } else {
                    Some((addr, state, pending))
                }
            })
            .collect();
        entries.sort_by_key(|e| e.0);
        entries
    }

    /// Checks the single-writer-multiple-reader invariant for all lines.
    pub fn check_swmr(&self) -> bool {
        self.lines.values().all(|l| match &l.state {
            Some(LineState::Shared(s)) => !s.is_empty(),
            _ => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    const L: u64 = 0x40;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn cold_read_grants_shared() {
        let mut d = Directory::new();
        assert_eq!(d.read(L, n(1)), DirOutcome::Ready(Grant::Shared));
        assert_eq!(d.state(L), LineState::Shared([n(1)].into()));
    }

    #[test]
    fn cold_write_grants_exclusive() {
        let mut d = Directory::new();
        assert_eq!(d.write(L, n(1)), DirOutcome::Ready(Grant::Exclusive));
        assert_eq!(d.state(L), LineState::Modified(n(1)));
    }

    #[test]
    fn write_to_shared_invalidates_all_other_sharers() {
        let mut d = Directory::new();
        for i in 1..=3 {
            d.read(L, n(i));
        }
        let out = d.write(L, n(1));
        let DirOutcome::Wait(snoops) = out else {
            panic!("expected snoops, got {out:?}");
        };
        assert_eq!(snoops.len(), 2);
        assert!(snoops.iter().all(|&(_, k)| k == SnoopKind::Invalidate));
        // Responses trickle in; grant fires on the last.
        assert_eq!(d.snoop_response(L, n(2), false), None);
        let grant = d.snoop_response(L, n(3), false).expect("resolved");
        assert_eq!(grant, (n(1), Grant::Exclusive, false));
        assert_eq!(d.state(L), LineState::Modified(n(1)));
    }

    #[test]
    fn read_of_modified_downgrades_owner() {
        let mut d = Directory::new();
        d.write(L, n(1));
        let out = d.read(L, n(2));
        let DirOutcome::Wait(snoops) = out else {
            panic!("expected snoop");
        };
        assert_eq!(snoops, vec![(n(1), SnoopKind::Data)]);
        let grant = d.snoop_response(L, n(1), true).expect("resolved");
        assert_eq!(grant, (n(2), Grant::Shared, true));
        assert_eq!(d.state(L), LineState::Shared([n(1), n(2)].into()));
    }

    #[test]
    fn upgrade_by_sole_sharer_is_instant() {
        let mut d = Directory::new();
        d.read(L, n(1));
        assert_eq!(d.write(L, n(1)), DirOutcome::Ready(Grant::Exclusive));
    }

    #[test]
    fn busy_line_rejects_until_resolved() {
        let mut d = Directory::new();
        d.write(L, n(1));
        let DirOutcome::Wait(_) = d.write(L, n(2)) else {
            panic!("expected snoop wait");
        };
        assert_eq!(d.read(L, n(3)), DirOutcome::Busy);
        assert_eq!(d.busy_rejections, 1);
        d.snoop_response(L, n(1), true);
        assert!(!d.is_busy(L));
        assert!(matches!(d.read(L, n(3)), DirOutcome::Wait(_)));
    }

    #[test]
    fn eviction_clears_state() {
        let mut d = Directory::new();
        d.read(L, n(1));
        d.read(L, n(2));
        d.evict(L, n(1));
        assert_eq!(d.state(L), LineState::Shared([n(2)].into()));
        d.evict(L, n(2));
        assert_eq!(d.state(L), LineState::Uncached);
        // Modified eviction (writeback).
        d.write(L, n(3));
        d.evict(L, n(3));
        assert_eq!(d.state(L), LineState::Uncached);
    }

    #[test]
    fn owner_rewrite_is_silent() {
        let mut d = Directory::new();
        d.write(L, n(1));
        assert_eq!(d.write(L, n(1)), DirOutcome::Ready(Grant::Exclusive));
        assert_eq!(d.snoops_sent, 0);
    }

    proptest! {
        /// Random single-line workload: drive the protocol to completion
        /// after every request and check SWMR plus state sanity.
        #[test]
        fn swmr_invariant_holds(ops in prop::collection::vec((0u8..3, 1u16..5), 1..100)) {
            let mut d = Directory::new();
            for (op, node) in ops {
                let node = n(node);
                let outcome = match op {
                    0 => d.read(L, node),
                    1 => d.write(L, node),
                    _ => {
                        d.evict(L, node);
                        continue;
                    }
                };
                if let DirOutcome::Wait(snoops) = outcome {
                    // Answer snoops immediately and in order.
                    let k = snoops.len();
                    for (i, (target, _)) in snoops.into_iter().enumerate() {
                        let r = d.snoop_response(L, target, true);
                        prop_assert_eq!(r.is_some(), i == k - 1);
                    }
                }
                prop_assert!(d.check_swmr());
                prop_assert!(!d.is_busy(L));
            }
        }
    }
}
