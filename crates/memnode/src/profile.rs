//! Memory node profiles: capabilities and costs per node type.
//!
//! The UniFabric heap (design principle #2) places objects by comparing
//! node types: "Designing an efficient data structure should consider the
//! memory layout across different memory nodes, their access distribution,
//! and data locality" (§4 DP#2). A [`MemNodeProfile`] summarizes what the
//! placement policy needs: base access latencies, sharing capability, and
//! whether hardware maintains coherence.

use serde::{Deserialize, Serialize};

use fcc_sim::SimTime;

/// The memory node taxonomy of §3 Difference #2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemNodeKind {
    /// Host-local DRAM (not fabric-attached; the baseline tier).
    HostLocal,
    /// Fabric-attached CPU-less NUMA memory node (CXL Type 3 expander).
    CpulessNuma,
    /// Fabric-attached CC-NUMA node (hardware directory coherence).
    CcNuma,
    /// Fabric-attached non-CC NUMA node (software-managed coherence).
    NonCcNuma,
    /// Fabric-attached COMA attraction-memory node.
    Coma,
}

impl MemNodeKind {
    /// All fabric-attached kinds (everything but host-local).
    pub const FABRIC_KINDS: [MemNodeKind; 4] = [
        MemNodeKind::CpulessNuma,
        MemNodeKind::CcNuma,
        MemNodeKind::NonCcNuma,
        MemNodeKind::Coma,
    ];

    /// Whether hardware keeps copies coherent on this node type.
    pub fn hw_coherent(self) -> bool {
        matches!(
            self,
            MemNodeKind::HostLocal | MemNodeKind::CcNuma | MemNodeKind::Coma
        )
    }

    /// Whether multiple hosts may map the node simultaneously.
    pub fn shareable(self) -> bool {
        !matches!(self, MemNodeKind::HostLocal)
    }

    /// Whether the node can run computation near the data (node
    /// replication needs processing units; "inapplicable for the CPU-less
    /// NUMA one since the remote memory expander has no processing units").
    pub fn has_processing(self) -> bool {
        matches!(self, MemNodeKind::CcNuma | MemNodeKind::Coma)
    }
}

/// Placement-relevant costs of a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemNodeProfile {
    /// The node type.
    pub kind: MemNodeKind,
    /// Expected 64 B read latency from the local host.
    pub read_latency: SimTime,
    /// Expected 64 B write latency from the local host.
    pub write_latency: SimTime,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Extra per-write coherence cost when the line is shared (snoop
    /// fan-out for CC-NUMA, software invalidation for non-CC).
    pub shared_write_penalty: SimTime,
}

impl MemNodeProfile {
    /// The Omega-calibrated profile for a node kind (Table 2 anchors the
    /// host-local and CPU-less rows; the others are derived).
    pub fn omega_like(kind: MemNodeKind, capacity: u64) -> Self {
        let (read, write, penalty) = match kind {
            // Table 2: local 111.7/119.3 ns.
            MemNodeKind::HostLocal => (111.7, 119.3, 0.0),
            // Table 2: remote 1575.3/1613.3 ns.
            MemNodeKind::CpulessNuma => (1575.3, 1613.3, 0.0),
            // Directory adds a lookup on the critical path; shared writes
            // pay invalidation round trips.
            MemNodeKind::CcNuma => (1675.0, 1725.0, 1800.0),
            // No coherence hardware: slightly cheaper than the expander,
            // but software fences cost on shared writes.
            MemNodeKind::NonCcNuma => (1550.0, 1590.0, 2500.0),
            // Attraction memory: hits served near-locally after migration,
            // misses pay a directory + transfer cost; this profile reports
            // the steady-state (post-migration) hit latency.
            MemNodeKind::Coma => (450.0, 500.0, 900.0),
        };
        MemNodeProfile {
            kind,
            read_latency: SimTime::from_ns(read),
            write_latency: SimTime::from_ns(write),
            capacity,
            shared_write_penalty: SimTime::from_ns(penalty),
        }
    }

    /// Cost of one access for placement math.
    pub fn access_cost(&self, is_write: bool, shared: bool) -> SimTime {
        let base = if is_write {
            self.write_latency
        } else {
            self.read_latency
        };
        if is_write && shared {
            base + self.shared_write_penalty
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_capabilities() {
        assert!(MemNodeKind::HostLocal.hw_coherent());
        assert!(!MemNodeKind::HostLocal.shareable());
        assert!(MemNodeKind::CpulessNuma.shareable());
        assert!(!MemNodeKind::CpulessNuma.has_processing());
        assert!(MemNodeKind::CcNuma.hw_coherent());
        assert!(MemNodeKind::CcNuma.has_processing());
        assert!(!MemNodeKind::NonCcNuma.hw_coherent());
        assert!(MemNodeKind::Coma.hw_coherent());
    }

    #[test]
    fn omega_profile_matches_table2_anchors() {
        let local = MemNodeProfile::omega_like(MemNodeKind::HostLocal, 1 << 30);
        assert!((local.read_latency.as_ns() - 111.7).abs() < 0.01);
        let remote = MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, 1 << 30);
        assert!((remote.read_latency.as_ns() - 1575.3).abs() < 0.01);
        // The paper's 10x+ local-vs-remote gap.
        assert!(remote.read_latency.as_ns() / local.read_latency.as_ns() > 10.0);
    }

    #[test]
    fn shared_writes_cost_more_only_where_coherence_acts() {
        let cc = MemNodeProfile::omega_like(MemNodeKind::CcNuma, 1 << 30);
        assert!(cc.access_cost(true, true) > cc.access_cost(true, false));
        assert_eq!(cc.access_cost(false, true), cc.access_cost(false, false));
        let exp = MemNodeProfile::omega_like(MemNodeKind::CpulessNuma, 1 << 30);
        assert_eq!(exp.access_cost(true, true), exp.access_cost(true, false));
    }
}
