//! The fabric-attached CPU-less NUMA memory node (CXL Type 3 expander).
//!
//! "A standalone memory expander with no processors. [...] This node can
//! be either owned exclusively by a host CPU or shared across multiple
//! hosts (where the FEA needs to partition the capacity and enforce
//! coherence at the device)" (§3 D#2). [`ExpanderDevice`] wraps a
//! [`DramDevice`] with per-host partitioning: in shared mode each host is
//! confined to its slice, and cross-partition accesses are rejected at the
//! device, as the paper assigns that duty to the FEA.

use std::collections::HashMap;

use fcc_proto::addr::NodeId;
use fcc_proto::channel::{MemOpcode, Transaction, TransactionKind};
use fcc_sim::SimTime;

use fcc_fabric::endpoint::{Endpoint, EndpointResponse};

use crate::dram::{DramDevice, DramTiming};

/// Ownership mode of the expander.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ownership {
    /// One host owns the whole capacity.
    Exclusive(NodeId),
    /// Capacity partitioned equally among the listed hosts, in order.
    Shared(Vec<NodeId>),
}

/// A CXL Type 3 memory expander.
#[derive(Debug)]
pub struct ExpanderDevice {
    dram: DramDevice,
    ownership: Ownership,
    partition_bytes: u64,
    partition_of: HashMap<NodeId, u64>,
    /// Accesses rejected for crossing a partition boundary.
    pub violations: u64,
}

impl ExpanderDevice {
    /// Creates an expander of `capacity` bytes with the given ownership.
    ///
    /// # Panics
    ///
    /// Panics if a shared ownership list is empty.
    pub fn new(timing: DramTiming, capacity: u64, ownership: Ownership) -> Self {
        let (partition_bytes, partition_of) = match &ownership {
            Ownership::Exclusive(owner) => {
                let mut m = HashMap::new();
                m.insert(*owner, 0u64);
                (capacity, m)
            }
            Ownership::Shared(hosts) => {
                assert!(!hosts.is_empty(), "shared expander with no hosts");
                let slice = capacity / hosts.len() as u64;
                let m = hosts
                    .iter()
                    .enumerate()
                    .map(|(i, &h)| (h, i as u64 * slice))
                    .collect();
                (slice, m)
            }
        };
        ExpanderDevice {
            dram: DramDevice::new(timing, capacity),
            ownership,
            partition_bytes,
            partition_of,
            violations: 0,
        }
    }

    /// The ownership configuration.
    pub fn ownership(&self) -> &Ownership {
        &self.ownership
    }

    /// The DRAM backing store (row-buffer statistics).
    pub fn dram(&self) -> &DramDevice {
        &self.dram
    }

    /// Translates a host's partition-relative DPA to an absolute device
    /// address; `None` if the host is unknown or the address exceeds its
    /// partition.
    fn translate(&self, host: NodeId, dpa: u64) -> Option<u64> {
        let base = *self.partition_of.get(&host)?;
        if dpa >= self.partition_bytes {
            return None;
        }
        Some(base + dpa)
    }
}

impl Endpoint for ExpanderDevice {
    fn is_idle(&self, now: SimTime) -> bool {
        self.dram.idle_at() <= now
    }

    fn service(&mut self, txn: &Transaction, now: SimTime) -> EndpointResponse {
        let Some(abs) = self.translate(txn.src, txn.addr) else {
            self.violations += 1;
            // Poisoned completion: zero-latency error response.
            return EndpointResponse {
                kind: Some(TransactionKind::Mem(MemOpcode::Cmp)),
                bytes: 0,
                ready_at: now,
            };
        };
        let bytes = txn.bytes.max(64);
        let ready_at = self.dram.access(abs, bytes, now);
        match txn.kind {
            TransactionKind::Mem(op) if op.carries_data() => EndpointResponse {
                kind: Some(TransactionKind::Mem(MemOpcode::Cmp)),
                bytes: 0,
                ready_at,
            },
            _ => EndpointResponse {
                kind: Some(TransactionKind::Mem(MemOpcode::MemData)),
                bytes,
                ready_at,
            },
        }
    }

    fn capacity(&self) -> u64 {
        match &self.ownership {
            Ownership::Exclusive(_) => self.partition_bytes,
            Ownership::Shared(hosts) => self.partition_bytes * hosts.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(src: u16, addr: u64, kind: TransactionKind) -> Transaction {
        Transaction {
            id: 1,
            kind,
            addr,
            bytes: 64,
            src: NodeId(src),
            dst: NodeId(100),
        }
    }

    #[test]
    fn exclusive_owner_sees_full_capacity() {
        let mut dev = ExpanderDevice::new(
            DramTiming::default(),
            1 << 20,
            Ownership::Exclusive(NodeId(1)),
        );
        let r = dev.service(
            &txn(1, (1 << 20) - 64, TransactionKind::Mem(MemOpcode::MemRd)),
            SimTime::ZERO,
        );
        assert_eq!(r.kind, Some(TransactionKind::Mem(MemOpcode::MemData)));
        assert_eq!(dev.violations, 0);
    }

    #[test]
    fn shared_partitions_isolate_hosts() {
        let mut dev = ExpanderDevice::new(
            DramTiming::default(),
            1 << 20,
            Ownership::Shared(vec![NodeId(1), NodeId(2)]),
        );
        // Host 2's DPA 0 maps to the second half: same DPA, different rows.
        let a = dev.translate(NodeId(1), 0).expect("host 1");
        let b = dev.translate(NodeId(2), 0).expect("host 2");
        assert_eq!(a, 0);
        assert_eq!(b, 1 << 19);
        // DPA beyond the slice is rejected.
        assert!(dev.translate(NodeId(1), 1 << 19).is_none());
        let r = dev.service(
            &txn(1, 1 << 19, TransactionKind::Mem(MemOpcode::MemRd)),
            SimTime::ZERO,
        );
        assert_eq!(r.ready_at, SimTime::ZERO, "violation is not serviced");
        assert_eq!(dev.violations, 1);
    }

    #[test]
    fn unknown_host_rejected() {
        let mut dev = ExpanderDevice::new(
            DramTiming::default(),
            1 << 20,
            Ownership::Exclusive(NodeId(1)),
        );
        dev.service(
            &txn(9, 0, TransactionKind::Mem(MemOpcode::MemRd)),
            SimTime::ZERO,
        );
        assert_eq!(dev.violations, 1);
    }

    #[test]
    fn capacity_reports_whole_device() {
        let dev = ExpanderDevice::new(
            DramTiming::default(),
            1 << 20,
            Ownership::Shared(vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]),
        );
        assert_eq!(dev.capacity(), 1 << 20);
    }
}
