//! The CC-NUMA memory node: a directory controller at the FEA.
//!
//! [`DirectoryNode`] terminates CXL.cache at a fabric-attached node: host
//! caches issue `RdShared`/`RdOwn`/evictions; the node runs the full-map
//! write-invalidate [`Directory`], snooping other hosts over the fabric
//! when a line is held remotely, and backs everything with a banked
//! [`DramDevice`].

use std::collections::{BTreeMap, VecDeque};

use fcc_proto::addr::NodeId;
use fcc_proto::channel::{CacheOpcode, Transaction, TransactionKind};
use fcc_proto::flit::{flits_for_transfer, FlitPayload};
use fcc_proto::link::CreditConfig;
use fcc_proto::phys::PhysConfig;
use fcc_sim::{Component, ComponentId, Counter, Ctx, Msg, PendingWork, SimTime};

use fcc_fabric::port::{FlitMsg, LinkPort, PortEvent};

use crate::directory::{DirOutcome, Directory, SnoopKind};
use crate::dram::{DramDevice, DramTiming};

/// Cacheline size the directory tracks.
const LINE: u64 = 64;

/// Self-message: a response is ready to enter the fabric.
#[derive(Debug)]
struct ResponseDue {
    txn: Transaction,
    slots: u64,
}

#[derive(Debug)]
struct Reassembly {
    txn: Transaction,
    slots_needed: u64,
    slots_got: u64,
}

/// A fabric-attached CC-NUMA node component.
pub struct DirectoryNode {
    node: NodeId,
    port: LinkPort,
    dram: DramDevice,
    /// The coherence engine (public for probes).
    pub dir: Directory,
    /// Requests deferred because their line was busy.
    deferred: BTreeMap<u64, VecDeque<Transaction>>,
    /// Original request being resolved by snoops, per line.
    inflight: BTreeMap<u64, Transaction>,
    /// Snoop txn id → (line, snooped node).
    snoop_ids: BTreeMap<u64, (u64, NodeId)>,
    next_snoop: u64,
    reassembly: BTreeMap<u64, Reassembly>,
    /// Requests served.
    pub serviced: Counter,
    /// Snoops issued over the fabric.
    pub snoops_issued: Counter,
}

impl DirectoryNode {
    /// Creates a CC-NUMA node of `capacity` bytes.
    pub fn new(
        node: NodeId,
        phys: PhysConfig,
        credit: CreditConfig,
        timing: DramTiming,
        capacity: u64,
    ) -> Self {
        DirectoryNode {
            node,
            port: LinkPort::new(phys, credit),
            dram: DramDevice::new(timing, capacity),
            dir: Directory::new(),
            deferred: BTreeMap::new(),
            inflight: BTreeMap::new(),
            snoop_ids: BTreeMap::new(),
            next_snoop: 0,
            reassembly: BTreeMap::new(),
            serviced: Counter::new(),
            snoops_issued: Counter::new(),
        }
    }

    /// The node's fabric id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Connects to the fabric (switch or direct FHA).
    pub fn connect(&mut self, peer: ComponentId) {
        self.port.connect(peer);
    }

    /// The DRAM backing store (row-buffer stats).
    pub fn dram(&self) -> &DramDevice {
        &self.dram
    }

    fn send_txn(&mut self, ctx: &mut Ctx<'_>, txn: Transaction) {
        let slots = if txn.kind.carries_data() && txn.bytes > 0 {
            flits_for_transfer(self.port.phys.flit_mode, txn.bytes as u64)
        } else {
            0
        };
        let (id, src, dst) = (txn.id, txn.src, txn.dst);
        self.port.enqueue(ctx, FlitPayload::Transaction(txn));
        for slot in 0..slots {
            self.port.enqueue(
                ctx,
                FlitPayload::Data {
                    txn_id: id,
                    slot: slot as u32,
                    src,
                    dst,
                },
            );
        }
    }

    fn respond_data(&mut self, ctx: &mut Ctx<'_>, req: &Transaction) {
        let ready_at = self.dram.access(req.addr, 64, ctx.now());
        let rsp = req.response(TransactionKind::Cache(CacheOpcode::Data), 64);
        ctx.send_self(
            ready_at - ctx.now(),
            ResponseDue {
                txn: rsp,
                slots: flits_for_transfer(self.port.phys.flit_mode, 64),
            },
        );
    }

    fn respond_go(&mut self, ctx: &mut Ctx<'_>, req: &Transaction) {
        let rsp = req.response(TransactionKind::Cache(CacheOpcode::Go), 0);
        ctx.send_self(SimTime::from_ns(5.0), ResponseDue { txn: rsp, slots: 0 });
    }

    fn issue_snoops(
        &mut self,
        ctx: &mut Ctx<'_>,
        line: u64,
        req: Transaction,
        snoops: Vec<(NodeId, SnoopKind)>,
    ) {
        self.inflight.insert(line, req);
        for (target, kind) in snoops {
            let id = ((self.node.0 as u64) << 48) | self.next_snoop;
            self.next_snoop += 1;
            self.snoop_ids.insert(id, (line, target));
            self.snoops_issued.inc();
            let op = match kind {
                SnoopKind::Data => CacheOpcode::SnpData,
                SnoopKind::Invalidate => CacheOpcode::SnpInv,
            };
            let txn = Transaction {
                id,
                kind: TransactionKind::Cache(op),
                addr: line,
                bytes: 0,
                src: self.node,
                dst: target,
            };
            self.send_txn(ctx, txn);
        }
    }

    fn handle_request(&mut self, ctx: &mut Ctx<'_>, txn: Transaction) {
        let line = txn.addr & !(LINE - 1);
        let TransactionKind::Cache(op) = txn.kind else {
            // A plain CXL.mem access to a CC-NUMA node: service uncached.
            self.serviced.inc();
            match txn.kind {
                TransactionKind::Mem(mop) if mop.carries_data() => {
                    let ready = self.dram.access(txn.addr, txn.bytes.max(64), ctx.now());
                    let rsp =
                        txn.response(TransactionKind::Mem(fcc_proto::channel::MemOpcode::Cmp), 0);
                    ctx.send_self(ready - ctx.now(), ResponseDue { txn: rsp, slots: 0 });
                }
                _ => {
                    let ready = self.dram.access(txn.addr, txn.bytes.max(64), ctx.now());
                    let bytes = txn.bytes.max(64);
                    let rsp = txn.response(
                        TransactionKind::Mem(fcc_proto::channel::MemOpcode::MemData),
                        bytes,
                    );
                    let slots = flits_for_transfer(self.port.phys.flit_mode, bytes as u64);
                    ctx.send_self(ready - ctx.now(), ResponseDue { txn: rsp, slots });
                }
            }
            return;
        };
        match op {
            CacheOpcode::RdShared | CacheOpcode::RdCurr => match self.dir.read(line, txn.src) {
                DirOutcome::Ready(_) => {
                    self.serviced.inc();
                    self.respond_data(ctx, &txn);
                }
                DirOutcome::Wait(snoops) => self.issue_snoops(ctx, line, txn, snoops),
                DirOutcome::Busy => self.deferred.entry(line).or_default().push_back(txn),
            },
            CacheOpcode::RdOwn => match self.dir.write(line, txn.src) {
                DirOutcome::Ready(_) => {
                    self.serviced.inc();
                    self.respond_data(ctx, &txn);
                }
                DirOutcome::Wait(snoops) => self.issue_snoops(ctx, line, txn, snoops),
                DirOutcome::Busy => self.deferred.entry(line).or_default().push_back(txn),
            },
            CacheOpcode::DirtyEvict => {
                self.dir.evict(line, txn.src);
                // Write the returned data to memory.
                let _done = self.dram.access(line, 64, ctx.now());
                self.serviced.inc();
                self.respond_go(ctx, &txn);
            }
            CacheOpcode::CleanEvict | CacheOpcode::CLFlush => {
                self.dir.evict(line, txn.src);
                self.serviced.inc();
                self.respond_go(ctx, &txn);
            }
            // Snoop responses from host caches.
            CacheOpcode::RspIHitI | CacheOpcode::RspSHitSe | CacheOpcode::RspIFwdM => {
                self.handle_snoop_response(ctx, txn);
            }
            other => panic!("directory node: unexpected cache op {other:?}"),
        }
    }

    fn handle_snoop_response(&mut self, ctx: &mut Ctx<'_>, txn: Transaction) {
        let Some((line, target)) = self.snoop_ids.remove(&txn.id) else {
            return;
        };
        let dirty = matches!(txn.kind, TransactionKind::Cache(CacheOpcode::RspIFwdM));
        if let Some((_requester, _grant, had_dirty)) = self.dir.snoop_response(line, target, dirty)
        {
            if had_dirty {
                // Write the forwarded dirty line back to memory first.
                let _ = self.dram.access(line, 64, ctx.now());
            }
            // snoop_response resolving means a request was parked here.
            #[allow(clippy::expect_used)]
            let req = self.inflight.remove(&line).expect("request awaited snoops");
            self.serviced.inc();
            self.respond_data(ctx, &req);
            // Drain one deferred request for this line.
            if let Some(q) = self.deferred.get_mut(&line) {
                if let Some(next) = q.pop_front() {
                    self.handle_request(ctx, next);
                }
            }
        }
    }

    fn on_payload(&mut self, ctx: &mut Ctx<'_>, payload: FlitPayload) {
        let class = payload.msg_class();
        self.port.release(ctx, class);
        match payload {
            FlitPayload::Transaction(txn) => {
                if txn.kind.carries_data() && txn.bytes > 0 {
                    let needed = flits_for_transfer(self.port.phys.flit_mode, txn.bytes as u64);
                    self.reassembly.insert(
                        txn.id,
                        Reassembly {
                            txn,
                            slots_needed: needed,
                            slots_got: 0,
                        },
                    );
                } else {
                    self.handle_request(ctx, txn);
                }
            }
            FlitPayload::Data { txn_id, .. } => {
                let done = {
                    let Some(r) = self.reassembly.get_mut(&txn_id) else {
                        return;
                    };
                    r.slots_got += 1;
                    r.slots_got >= r.slots_needed
                };
                if done {
                    if let Some(r) = self.reassembly.remove(&txn_id) {
                        self.handle_request(ctx, r.txn);
                    }
                }
            }
            _ => {}
        }
    }
}

impl Component for DirectoryNode {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<FlitMsg>() {
            Ok(fm) => {
                match self.port.receive(ctx, fm) {
                    PortEvent::Delivered(payload, _) => self.on_payload(ctx, payload),
                    PortEvent::CreditFreed
                    | PortEvent::VcCreditReturned { .. }
                    | PortEvent::Quiet => {}
                }
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<ResponseDue>() {
            Ok(due) => {
                self.send_txn(ctx, due.txn);
                let _ = due.slots;
            }
            Err(m) => panic!("directory node: unexpected message {}", m.type_name()),
        }
    }

    fn outstanding(&self, out: &mut Vec<PendingWork>) {
        let mut lines: Vec<u64> = self.inflight.keys().copied().collect();
        lines.sort_unstable();
        for line in lines {
            out.push(PendingWork {
                what: format!("line {line:#x} awaiting snoop responses"),
                waiting_on: self.port.peer_opt(),
            });
        }
        let mut lines: Vec<u64> = self.deferred.keys().copied().collect();
        lines.sort_unstable();
        for line in lines {
            let n = self.deferred[&line].len();
            if n > 0 {
                out.push(PendingWork {
                    what: format!("{n} request(s) deferred on busy line {line:#x}"),
                    waiting_on: None,
                });
            }
        }
        let mut ids: Vec<u64> = self.reassembly.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            out.push(PendingWork {
                what: format!("txn {id:#x} awaiting data slots"),
                waiting_on: self.port.peer_opt(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    use fcc_proto::addr::{AddrMap, AddrRange};
    use fcc_sim::Engine;

    use fcc_fabric::adapter::{Fha, HostCompletion, HostOp, HostRequest, SnoopMsg, SnoopReply};
    use fcc_fabric::switch::{FabricSwitch, SwitchConfig};

    use super::*;

    /// A host-side coherent agent: tracks which lines it holds dirty,
    /// answers snoops, records completions.
    struct Agent {
        fha: ComponentId,
        dirty: HashSet<u64>,
        completions: Vec<HostCompletion>,
        snoops_seen: Vec<CacheOpcode>,
    }

    impl Component for Agent {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let msg = match msg.downcast::<SnoopMsg>() {
                Ok(snoop) => {
                    let txn = snoop.txn;
                    let TransactionKind::Cache(op) = txn.kind else {
                        panic!("non-cache snoop");
                    };
                    self.snoops_seen.push(op);
                    let line = txn.addr & !63;
                    let was_dirty = self.dirty.remove(&line);
                    let (kind, bytes) = if was_dirty {
                        (CacheOpcode::RspIFwdM, 64)
                    } else if op == CacheOpcode::SnpInv {
                        (CacheOpcode::RspIHitI, 0)
                    } else {
                        (CacheOpcode::RspSHitSe, 0)
                    };
                    let rsp = txn.response(TransactionKind::Cache(kind), bytes);
                    ctx.send(self.fha, SimTime::from_ns(10.0), SnoopReply { txn: rsp });
                    return;
                }
                Err(m) => m,
            };
            match msg.downcast::<HostCompletion>() {
                Ok(c) => self.completions.push(c),
                Err(m) => panic!("agent: unexpected {}", m.type_name()),
            }
        }
    }

    struct Setup {
        engine: Engine,
        agents: Vec<ComponentId>,
        fhas: Vec<ComponentId>,
        dir_node: ComponentId,
        host_nodes: Vec<NodeId>,
    }

    /// Two hosts and a CC-NUMA node on one switch.
    fn setup() -> Setup {
        let mut engine = Engine::new(11);
        let phys = PhysConfig::omega_like();
        let credit = CreditConfig::default();
        let dir_nid = NodeId(10);
        let mut map = AddrMap::new();
        map.add_direct(AddrRange::new(0, 1 << 24), dir_nid);
        let sw = engine.add_component("fs", FabricSwitch::new(SwitchConfig::fabrex_like()));
        let mut fhas = Vec::new();
        let mut agents = Vec::new();
        let mut host_nodes = Vec::new();
        for h in 0..2u16 {
            let nid = NodeId(1 + h);
            host_nodes.push(nid);
            let fha = engine.add_component(
                format!("fha{h}"),
                Fha::new(nid, phys, credit, map.clone(), 8),
            );
            let agent = engine.add_component(
                format!("agent{h}"),
                Agent {
                    fha,
                    dirty: HashSet::new(),
                    completions: vec![],
                    snoops_seen: vec![],
                },
            );
            engine.component_mut::<Fha>(fha).set_snoop_handler(agent);
            let port = {
                let s = engine.component_mut::<FabricSwitch>(sw);
                let p = s.add_port();
                s.connect(p, fha);
                s.routing.add_pbr(nid, p);
                p
            };
            let _ = port;
            engine.component_mut::<Fha>(fha).connect(sw);
            fhas.push(fha);
            agents.push(agent);
        }
        let dn = engine.add_component(
            "ccnuma",
            DirectoryNode::new(dir_nid, phys, credit, DramTiming::default(), 1 << 24),
        );
        {
            let s = engine.component_mut::<FabricSwitch>(sw);
            let p = s.add_port();
            s.connect(p, dn);
            s.routing.add_pbr(dir_nid, p);
        }
        engine.component_mut::<DirectoryNode>(dn).connect(sw);
        Setup {
            engine,
            agents,
            fhas,
            dir_node: dn,
            host_nodes,
        }
    }

    fn cache_req(
        op: CacheOpcode,
        addr: u64,
        bytes: u32,
        tag: u64,
        agent: ComponentId,
    ) -> HostRequest {
        HostRequest {
            op: HostOp::Cache { op, addr, bytes },
            tag,
            reply_to: agent,
        }
    }

    #[test]
    fn cold_read_serves_from_memory_without_snoops() {
        let mut s = setup();
        s.engine.post(
            s.fhas[0],
            SimTime::ZERO,
            cache_req(CacheOpcode::RdShared, 0x1000, 64, 1, s.agents[0]),
        );
        s.engine.run_until_idle();
        let a0 = s.engine.component::<Agent>(s.agents[0]);
        assert_eq!(a0.completions.len(), 1);
        let dn = s.engine.component::<DirectoryNode>(s.dir_node);
        assert_eq!(dn.snoops_issued.get(), 0);
        assert_eq!(
            dn.dir.state(0x1000),
            crate::directory::LineState::Shared([s.host_nodes[0]].into())
        );
    }

    #[test]
    fn write_after_remote_write_snoops_the_owner() {
        let mut s = setup();
        // Host 0 takes the line exclusive and dirties it.
        s.engine.post(
            s.fhas[0],
            SimTime::ZERO,
            cache_req(CacheOpcode::RdOwn, 0x2000, 64, 1, s.agents[0]),
        );
        s.engine.run_until_idle();
        s.engine
            .component_mut::<Agent>(s.agents[0])
            .dirty
            .insert(0x2000);
        // Host 1 now wants it exclusive: directory must SnpInv host 0.
        let t1 = s.engine.now();
        s.engine.post(
            s.fhas[1],
            t1,
            cache_req(CacheOpcode::RdOwn, 0x2000, 64, 2, s.agents[1]),
        );
        s.engine.run_until_idle();
        let a0 = s.engine.component::<Agent>(s.agents[0]);
        assert_eq!(a0.snoops_seen, vec![CacheOpcode::SnpInv]);
        let a1 = s.engine.component::<Agent>(s.agents[1]);
        assert_eq!(a1.completions.len(), 1);
        let dn = s.engine.component::<DirectoryNode>(s.dir_node);
        assert_eq!(
            dn.dir.state(0x2000),
            crate::directory::LineState::Modified(s.host_nodes[1])
        );
        assert_eq!(dn.snoops_issued.get(), 1);
        // The snooped path costs two extra fabric crossings: the second
        // host's latency must exceed the first's.
        let lat0 = a0.completions[0].latency();
        let lat1 = a1.completions[0].latency();
        assert!(lat1 > lat0 + SimTime::from_ns(150.0), "{lat0} vs {lat1}");
    }

    #[test]
    fn read_of_dirty_line_downgrades_owner() {
        let mut s = setup();
        s.engine.post(
            s.fhas[0],
            SimTime::ZERO,
            cache_req(CacheOpcode::RdOwn, 0x3000, 64, 1, s.agents[0]),
        );
        s.engine.run_until_idle();
        s.engine
            .component_mut::<Agent>(s.agents[0])
            .dirty
            .insert(0x3000);
        let t1 = s.engine.now();
        s.engine.post(
            s.fhas[1],
            t1,
            cache_req(CacheOpcode::RdShared, 0x3000, 64, 2, s.agents[1]),
        );
        s.engine.run_until_idle();
        let a0 = s.engine.component::<Agent>(s.agents[0]);
        assert_eq!(a0.snoops_seen, vec![CacheOpcode::SnpData]);
        let dn = s.engine.component::<DirectoryNode>(s.dir_node);
        let state = dn.dir.state(0x3000);
        assert_eq!(
            state,
            crate::directory::LineState::Shared([s.host_nodes[0], s.host_nodes[1]].into())
        );
    }

    #[test]
    fn dirty_evict_writes_back() {
        let mut s = setup();
        s.engine.post(
            s.fhas[0],
            SimTime::ZERO,
            cache_req(CacheOpcode::RdOwn, 0x4000, 64, 1, s.agents[0]),
        );
        s.engine.run_until_idle();
        let t = s.engine.now();
        s.engine.post(
            s.fhas[0],
            t,
            cache_req(CacheOpcode::DirtyEvict, 0x4000, 64, 2, s.agents[0]),
        );
        s.engine.run_until_idle();
        let a0 = s.engine.component::<Agent>(s.agents[0]);
        assert_eq!(a0.completions.len(), 2);
        let dn = s.engine.component::<DirectoryNode>(s.dir_node);
        assert_eq!(dn.dir.state(0x4000), crate::directory::LineState::Uncached);
    }
}
