//! The COMA attraction-memory node (DDM lineage).
//!
//! "The Cache-Only Memory Architecture (COMA) [...] reduces the average
//! cache miss latency by dynamically migrating and replicating caching
//! objects within memory. Each node exposes a portion of the global
//! memory, augmented with a large cache and managed through a hierarchical
//! directory scheme" (§3 D#2).
//!
//! The protocol engine here is pure: a [`ComaDirectory`] tracks which
//! nodes hold each line and which copy is the *master* (the copy that must
//! never be lost), and per-node [`AttractionMemory`] caches hold the
//! copies under LRU replacement. Reads replicate toward the reader; writes
//! migrate the master and invalidate replicas; evicting the last copy
//! displaces it to another node rather than dropping it.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use fcc_proto::addr::NodeId;

/// Outcome of one access at a COMA node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComaEvent {
    /// The line was already present locally.
    Hit,
    /// The line was fetched (replicated or migrated) from another node.
    Fetched {
        /// Node the copy came from.
        from: NodeId,
        /// Replicas invalidated (writes only).
        invalidated: usize,
    },
    /// The line was loaded from backing memory (first touch).
    ColdLoad,
}

/// One node's attraction memory: an LRU cache of line copies.
#[derive(Debug)]
pub struct AttractionMemory {
    node: NodeId,
    capacity_lines: usize,
    /// Lines present; value = is this the master copy.
    lines: BTreeMap<u64, bool>,
    lru: VecDeque<u64>,
    /// Local hits.
    pub hits: u64,
    /// Misses (fetch or cold).
    pub misses: u64,
}

impl AttractionMemory {
    /// Creates an attraction memory holding `capacity_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero.
    pub fn new(node: NodeId, capacity_lines: usize) -> Self {
        assert!(capacity_lines > 0, "empty attraction memory");
        AttractionMemory {
            node,
            capacity_lines,
            lines: BTreeMap::new(),
            lru: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether the line is present.
    pub fn contains(&self, line: u64) -> bool {
        self.lines.contains_key(&line)
    }

    /// Lines currently held.
    pub fn occupancy(&self) -> usize {
        self.lines.len()
    }

    /// Whether this node holds the master copy of `line`.
    pub fn is_master(&self, line: u64) -> bool {
        self.lines.get(&line).copied().unwrap_or(false)
    }

    fn touch(&mut self, line: u64) {
        if let Some(pos) = self.lru.iter().position(|&l| l == line) {
            self.lru.remove(pos);
        }
        self.lru.push_back(line);
    }

    // The LRU list mirrors `lines` exactly and capacity >= 1, so a victim
    // distinct from the incoming line always exists when full.
    #[allow(clippy::expect_used)]
    fn insert(&mut self, line: u64, master: bool) -> Option<(u64, bool)> {
        let evicted = if !self.lines.contains_key(&line) && self.lines.len() >= self.capacity_lines
        {
            // Evict the least-recently-used *other* line.
            let victim = self
                .lru
                .iter()
                .copied()
                .find(|&l| l != line)
                .expect("capacity >= 1");
            let was_master = self.lines.remove(&victim).expect("present");
            self.lru.retain(|&l| l != victim);
            Some((victim, was_master))
        } else {
            None
        };
        self.lines.insert(line, master);
        self.touch(line);
        evicted
    }

    fn remove(&mut self, line: u64) -> Option<bool> {
        let was = self.lines.remove(&line);
        self.lru.retain(|&l| l != line);
        was
    }
}

/// The (logically hierarchical, here flattened) COMA directory plus all
/// node attraction memories.
#[derive(Debug)]
pub struct ComaDirectory {
    nodes: BTreeMap<NodeId, AttractionMemory>,
    /// line → copy holders.
    holders: BTreeMap<u64, BTreeSet<NodeId>>,
    /// line → master holder.
    master: BTreeMap<u64, NodeId>,
    /// Migrations performed (master moved).
    pub migrations: u64,
    /// Replications performed (read copies created).
    pub replications: u64,
    /// Last-copy displacements on eviction.
    pub displacements: u64,
    /// Masters written back to memory under global pressure.
    pub writebacks: u64,
}

impl ComaDirectory {
    /// Creates a directory over the given attraction memories.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or contains duplicate node ids.
    pub fn new(nodes: Vec<AttractionMemory>) -> Self {
        assert!(!nodes.is_empty(), "COMA needs at least one node");
        let mut map = BTreeMap::new();
        for am in nodes {
            let prev = map.insert(am.node(), am);
            assert!(prev.is_none(), "duplicate node id");
        }
        ComaDirectory {
            nodes: map,
            holders: BTreeMap::new(),
            master: BTreeMap::new(),
            migrations: 0,
            replications: 0,
            displacements: 0,
            writebacks: 0,
        }
    }

    /// The attraction memory of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node is unknown.
    pub fn node(&self, node: NodeId) -> &AttractionMemory {
        &self.nodes[&node]
    }

    /// Performs one access by `node` to `line`; returns what happened.
    ///
    /// # Panics
    ///
    /// Panics if the node is unknown.
    // Node existence is asserted on entry and holders/master stay
    // consistent with `nodes`, so the lookups below cannot miss.
    #[allow(clippy::expect_used)]
    pub fn access(&mut self, node: NodeId, line: u64, is_write: bool) -> ComaEvent {
        assert!(self.nodes.contains_key(&node), "unknown node {node}");
        let local_hit = self.nodes[&node].contains(line);
        if local_hit && (!is_write || self.holders[&line].len() == 1) {
            // Read hit anywhere, or write hit with no replicas elsewhere.
            let am = self.nodes.get_mut(&node).expect("known");
            am.hits += 1;
            am.touch(line);
            if is_write && self.master[&line] != node {
                // Sole copy but master tag elsewhere cannot happen; defensive.
                self.master.insert(line, node);
            }
            return ComaEvent::Hit;
        }
        self.nodes.get_mut(&node).expect("known").misses += 1;
        let holders = self.holders.entry(line).or_default().clone();
        let event = if holders.is_empty() {
            // First touch: load from backing memory; this copy is master.
            self.place(node, line, true);
            self.master.insert(line, node);
            ComaEvent::ColdLoad
        } else if is_write {
            // Migrate: invalidate every other copy, master moves here.
            let from = self.master[&line];
            let mut invalidated = 0;
            for holder in holders {
                if holder != node {
                    self.nodes.get_mut(&holder).expect("known").remove(line);
                    self.holders
                        .get_mut(&line)
                        .expect("present")
                        .remove(&holder);
                    invalidated += 1;
                }
            }
            self.place(node, line, true);
            self.master.insert(line, node);
            self.migrations += 1;
            ComaEvent::Fetched { from, invalidated }
        } else {
            // Replicate: copy from the master (or any holder).
            let from = self.master[&line];
            self.place(node, line, false);
            self.replications += 1;
            ComaEvent::Fetched {
                from,
                invalidated: 0,
            }
        };
        event
    }

    /// Inserts a copy at `node`, handling eviction fallout.
    // Callers pass nodes validated by `access`, and an evicted victim was
    // by construction held by the evicting node.
    #[allow(clippy::expect_used)]
    fn place(&mut self, node: NodeId, line: u64, master: bool) {
        let evicted = self
            .nodes
            .get_mut(&node)
            .expect("known")
            .insert(line, master);
        self.holders.entry(line).or_default().insert(node);
        if let Some((victim, was_master)) = evicted {
            self.holders
                .get_mut(&victim)
                .expect("evicted line was held")
                .remove(&node);
            let remaining = self.holders[&victim].clone();
            if remaining.is_empty() {
                if was_master {
                    // Last copy: displace to another node *with spare
                    // capacity* (displacing into a full node would evict
                    // another master and ping-pong forever). Under global
                    // memory pressure the master is written back to the
                    // backing store instead, like DDM's replacement to a
                    // lower directory level.
                    let target = self
                        .nodes
                        .values()
                        .filter(|am| am.node() != node && am.occupancy() < am.capacity_lines)
                        .min_by_key(|am| (am.occupancy(), am.node().0))
                        .map(|am| am.node());
                    match target {
                        Some(t) => {
                            self.displacements += 1;
                            self.place(t, victim, true);
                            self.master.insert(victim, t);
                        }
                        None => {
                            // Write back to memory: memory becomes the
                            // (implicit) holder; a future access cold-loads.
                            self.writebacks += 1;
                            self.master.remove(&victim);
                            self.holders.remove(&victim);
                        }
                    }
                } else {
                    self.master.remove(&victim);
                    self.holders.remove(&victim);
                }
            } else if was_master {
                // Promote a surviving replica to master.
                let heir = *remaining.iter().next().expect("non-empty");
                self.master.insert(victim, heir);
                if let Some(am) = self.nodes.get_mut(&heir) {
                    am.lines.insert(victim, true);
                }
            }
        }
    }

    /// Checks the no-lost-copy invariant: every line with holders has a
    /// master, and the master actually holds the line.
    pub fn check_master_invariant(&self) -> bool {
        self.holders.iter().all(|(line, holders)| {
            if holders.is_empty() {
                return true;
            }
            match self.master.get(line) {
                Some(m) => holders.contains(m) && self.nodes[m].contains(*line),
                None => false,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn dir(cap: usize, nodes: u16) -> ComaDirectory {
        ComaDirectory::new(
            (1..=nodes)
                .map(|i| AttractionMemory::new(n(i), cap))
                .collect(),
        )
    }

    #[test]
    fn first_touch_is_cold_then_hits() {
        let mut d = dir(8, 2);
        assert_eq!(d.access(n(1), 0x40, false), ComaEvent::ColdLoad);
        assert_eq!(d.access(n(1), 0x40, false), ComaEvent::Hit);
        assert!(d.node(n(1)).is_master(0x40));
    }

    #[test]
    fn remote_read_replicates() {
        let mut d = dir(8, 2);
        d.access(n(1), 0x40, false);
        let e = d.access(n(2), 0x40, false);
        assert_eq!(
            e,
            ComaEvent::Fetched {
                from: n(1),
                invalidated: 0
            }
        );
        assert!(d.node(n(1)).contains(0x40), "replica kept at source");
        assert!(d.node(n(2)).contains(0x40));
        assert_eq!(d.replications, 1);
        // Subsequent reads hit locally at both nodes.
        assert_eq!(d.access(n(1), 0x40, false), ComaEvent::Hit);
        assert_eq!(d.access(n(2), 0x40, false), ComaEvent::Hit);
    }

    #[test]
    fn remote_write_migrates_and_invalidates() {
        let mut d = dir(8, 3);
        d.access(n(1), 0x40, false);
        d.access(n(2), 0x40, false);
        d.access(n(3), 0x40, false);
        let e = d.access(n(2), 0x40, true);
        assert_eq!(
            e,
            ComaEvent::Fetched {
                from: n(1),
                invalidated: 2
            }
        );
        assert!(!d.node(n(1)).contains(0x40));
        assert!(!d.node(n(3)).contains(0x40));
        assert!(d.node(n(2)).is_master(0x40));
        assert_eq!(d.migrations, 1);
    }

    #[test]
    fn write_hit_on_sole_copy_is_free() {
        let mut d = dir(8, 2);
        d.access(n(1), 0x40, false);
        assert_eq!(d.access(n(1), 0x40, true), ComaEvent::Hit);
    }

    #[test]
    fn last_copy_eviction_displaces_not_drops() {
        let mut d = dir(2, 2);
        // Fill node 1 with masters, then overflow: evicted masters must
        // move to node 2.
        for i in 0..4u64 {
            d.access(n(1), i * 64, false);
        }
        assert!(d.displacements > 0);
        assert!(d.check_master_invariant());
        // All four lines still exist somewhere.
        for i in 0..4u64 {
            let line = i * 64;
            let held = d.node(n(1)).contains(line) || d.node(n(2)).contains(line);
            assert!(held, "line {line:#x} lost");
        }
    }

    #[test]
    fn migration_attracts_hot_lines() {
        let mut d = dir(64, 2);
        d.access(n(1), 0x40, true);
        // Node 2 becomes the frequent writer: first access migrates, the
        // rest are local hits — the paper's "reduces the average cache
        // miss latency by dynamically migrating".
        let mut hits = 0;
        for _ in 0..10 {
            if d.access(n(2), 0x40, true) == ComaEvent::Hit {
                hits += 1;
            }
        }
        assert_eq!(hits, 9);
    }

    /// The paper's COMA claim: migration/replication "reduces the average
    /// cache miss latency" — under a skewed shared workload, attraction
    /// memory converges to high local hit rates, far above a static
    /// home-placement baseline.
    #[test]
    fn attraction_beats_static_homes_under_skew() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0);
        let lines: Vec<u64> = (0..64u64).map(|i| i * 64).collect();
        // Zipf-ish: line i accessed with weight 1/(i+1).
        let weights: Vec<f64> = (0..lines.len()).map(|i| 1.0 / (i + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let draw = |rng: &mut StdRng| -> usize {
            let mut u = rng.gen_range(0.0..total);
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    return i;
                }
                u -= w;
            }
            weights.len() - 1
        };
        let mut d = dir(48, 2);
        let accesses = 20_000;
        for _ in 0..accesses {
            let node = n(1 + rng.gen_range(0..2) as u16);
            let line = lines[draw(&mut rng)];
            // 90% reads: read-shared hot lines replicate to both nodes.
            let write = rng.gen_bool(0.1);
            d.access(node, line, write);
        }
        let hits: u64 = d.node(n(1)).hits + d.node(n(2)).hits;
        let hit_rate = hits as f64 / accesses as f64;
        // Static home placement (half the lines per node, no migration)
        // would cap local hits near 50% for this uniform node choice.
        assert!(
            hit_rate > 0.7,
            "attraction memory should localize the hot set: {hit_rate}"
        );
        assert!(d.replications > 0);
        assert!(d.check_master_invariant());
    }

    proptest! {
        #[test]
        fn master_invariant_under_random_traffic(
            ops in prop::collection::vec((1u16..4, 0u64..32, any::<bool>()), 1..300),
        ) {
            let mut d = dir(4, 3);
            for (node, line, write) in ops {
                d.access(n(node), line * 64, write);
                prop_assert!(d.check_master_invariant());
            }
        }

        #[test]
        fn occupancy_never_exceeds_capacity(
            ops in prop::collection::vec((1u16..3, 0u64..64), 1..200),
        ) {
            let mut d = dir(8, 2);
            for (node, line) in ops {
                d.access(n(node), line * 64, false);
                prop_assert!(d.node(n(1)).occupancy() <= 8);
                prop_assert!(d.node(n(2)).occupancy() <= 8);
            }
        }
    }
}
