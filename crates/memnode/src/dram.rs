//! A banked DRAM device with open-page row-buffer timing.
//!
//! The FAM chassis of the Omega testbed encloses commodity DDR behind the
//! CXL controller; service time therefore depends on bank-level parallelism
//! and row-buffer locality, not a single constant. The model: an access
//! selects a bank by address; a row hit costs `t_cas`, a row miss costs
//! `t_rp + t_rcd + t_cas` (precharge, activate, column access); each bank
//! serializes its own accesses, different banks proceed in parallel behind
//! a shared data bus with per-access occupancy.

use fcc_proto::channel::{MemOpcode, Transaction, TransactionKind};
use fcc_sim::SimTime;
use fcc_telemetry::Track;

use fcc_fabric::endpoint::{Endpoint, EndpointResponse};

/// DRAM timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTiming {
    /// Column access (row hit).
    pub t_cas: SimTime,
    /// Row activate.
    pub t_rcd: SimTime,
    /// Precharge.
    pub t_rp: SimTime,
    /// Data-bus occupancy per 64 B beat.
    pub t_bus: SimTime,
    /// Number of banks.
    pub banks: usize,
    /// Row size in bytes (row-buffer granularity).
    pub row_bytes: u64,
}

impl Default for DramTiming {
    fn default() -> Self {
        // DDR4-2933-like: CAS ~14ns, RCD ~14ns, RP ~14ns; 16 banks; 8KiB rows.
        DramTiming {
            t_cas: SimTime::from_ns(14.0),
            t_rcd: SimTime::from_ns(14.0),
            t_rp: SimTime::from_ns(14.0),
            t_bus: SimTime::from_ns(2.2),
            banks: 16,
            row_bytes: 8192,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: SimTime,
}

/// A DRAM module behind an FEA.
#[derive(Debug, Clone)]
pub struct DramDevice {
    timing: DramTiming,
    capacity: u64,
    banks: Vec<Bank>,
    bus_free_at: SimTime,
    trace: Track,
    /// Row-buffer hits observed.
    pub row_hits: u64,
    /// Row-buffer misses observed.
    pub row_misses: u64,
}

impl DramDevice {
    /// Creates a DRAM device of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `timing.banks` is zero or `capacity` is zero.
    pub fn new(timing: DramTiming, capacity: u64) -> Self {
        assert!(timing.banks > 0, "need at least one bank");
        assert!(capacity > 0, "zero-capacity DRAM");
        DramDevice {
            timing,
            capacity,
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: SimTime::ZERO,
                };
                timing.banks
            ],
            bus_free_at: SimTime::ZERO,
            trace: Track::default(),
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// The time at which every bank and the data bus are free: the
    /// device's quiesce point for hot-remove (drain hooks poll
    /// [`Endpoint::is_idle`], which compares this against `now`).
    pub fn idle_at(&self) -> SimTime {
        self.banks
            .iter()
            .map(|b| b.busy_until)
            .fold(self.bus_free_at, SimTime::max)
    }

    /// Row-buffer hit rate so far (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let row = addr / self.timing.row_bytes;
        // Interleave rows across banks so sequential streams hit all banks.
        let bank = (row % self.banks.len() as u64) as usize;
        (bank, row)
    }

    /// Services one access of `bytes` at `addr`, returning the finish time.
    pub fn access(&mut self, addr: u64, bytes: u32, now: SimTime) -> SimTime {
        let (bank_idx, row) = self.bank_and_row(addr);
        let t = self.timing;
        let bank = &mut self.banks[bank_idx];
        let start = bank.busy_until.max(now);
        let access_done = if bank.open_row == Some(row) {
            self.row_hits += 1;
            start + t.t_cas
        } else {
            self.row_misses += 1;
            let cost = if bank.open_row.is_some() {
                t.t_rp + t.t_rcd + t.t_cas
            } else {
                t.t_rcd + t.t_cas
            };
            bank.open_row = Some(row);
            start + cost
        };
        bank.busy_until = access_done;
        // Data beats occupy the shared bus after the bank responds.
        let beats = (bytes as u64).div_ceil(64).max(1);
        let bus_start = self.bus_free_at.max(access_done);
        let done = bus_start + t.t_bus * beats;
        self.bus_free_at = done;
        done
    }
}

impl Endpoint for DramDevice {
    fn is_idle(&self, now: SimTime) -> bool {
        self.idle_at() <= now
    }

    fn service(&mut self, txn: &Transaction, now: SimTime) -> EndpointResponse {
        let bytes = txn.bytes.max(64);
        let hits_before = self.row_hits;
        let ready_at = self.access(txn.addr, bytes, now);
        if self.trace.is_enabled() {
            let name = if self.row_hits > hits_before {
                "dram.row_hit"
            } else {
                "dram.row_miss"
            };
            self.trace
                .span("dram", name, now, ready_at, txn.trace_ctx());
        }
        match txn.kind {
            TransactionKind::Mem(op) if op.carries_data() => EndpointResponse {
                kind: Some(TransactionKind::Mem(MemOpcode::Cmp)),
                bytes: 0,
                ready_at,
            },
            _ => EndpointResponse {
                kind: Some(TransactionKind::Mem(MemOpcode::MemData)),
                bytes,
                ready_at,
            },
        }
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn set_trace(&mut self, track: Track) {
        self.trace = track;
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    fn dev() -> DramDevice {
        DramDevice::new(DramTiming::default(), 1 << 30)
    }

    #[test]
    fn first_access_activates_then_hits() {
        let mut d = dev();
        let t = DramTiming::default();
        let first = d.access(0, 64, SimTime::ZERO);
        // Cold bank: RCD + CAS + bus.
        assert_eq!(first, t.t_rcd + t.t_cas + t.t_bus);
        let second = d.access(64, 64, first);
        // Same row: CAS + bus only.
        assert_eq!(second, first + t.t_cas + t.t_bus);
        assert_eq!(d.row_hits, 1);
        assert_eq!(d.row_misses, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = dev();
        let t = DramTiming::default();
        let row_stride = t.row_bytes * t.banks as u64; // same bank, next row.
        let first = d.access(0, 64, SimTime::ZERO);
        let second = d.access(row_stride, 64, first);
        assert_eq!(second, first + t.t_rp + t.t_rcd + t.t_cas + t.t_bus);
    }

    #[test]
    fn banks_overlap() {
        let mut d = dev();
        let t = DramTiming::default();
        // Two accesses to different banks issued at t=0 overlap their
        // activate+CAS; only the bus serializes.
        let a = d.access(0, 64, SimTime::ZERO);
        let b = d.access(t.row_bytes, 64, SimTime::ZERO);
        assert_eq!(a, t.t_rcd + t.t_cas + t.t_bus);
        assert_eq!(b, a + t.t_bus, "only bus time added");
    }

    #[test]
    fn sequential_stream_has_high_hit_rate() {
        let mut d = dev();
        let mut now = SimTime::ZERO;
        for i in 0..1024u64 {
            now = d.access(i * 64, 64, now);
        }
        assert!(d.hit_rate() > 0.95, "hit rate {}", d.hit_rate());
    }

    #[test]
    fn random_stream_has_low_hit_rate() {
        let mut d = dev();
        let mut now = SimTime::ZERO;
        // Stride by rows so every access opens a new row.
        let t = DramTiming::default();
        for i in 0..256u64 {
            now = d.access(i * t.row_bytes * 7919, 64, now);
        }
        assert!(d.hit_rate() < 0.05, "hit rate {}", d.hit_rate());
    }

    #[test]
    fn large_access_occupies_bus_per_beat() {
        let mut d = dev();
        let t = DramTiming::default();
        let done = d.access(0, 4096, SimTime::ZERO);
        assert_eq!(done, t.t_rcd + t.t_cas + t.t_bus * 64);
    }

    #[test]
    fn endpoint_read_and_write_shapes() {
        let mut d = dev();
        let read = Transaction {
            id: 1,
            kind: TransactionKind::Mem(MemOpcode::MemRd),
            addr: 0,
            bytes: 64,
            src: fcc_proto::addr::NodeId(1),
            dst: fcc_proto::addr::NodeId(2),
        };
        let r = d.service(&read, SimTime::ZERO);
        assert_eq!(r.kind, Some(TransactionKind::Mem(MemOpcode::MemData)));
        assert_eq!(r.bytes, 64);
        let write = Transaction {
            kind: TransactionKind::Mem(MemOpcode::MemWr),
            ..read
        };
        let w = d.service(&write, r.ready_at);
        assert_eq!(w.kind, Some(TransactionKind::Mem(MemOpcode::Cmp)));
        assert_eq!(w.bytes, 0);
    }

    proptest! {
        #[test]
        fn access_time_is_monotone_nondecreasing_per_bank(
            addrs in prop::collection::vec(0u64..(1 << 24), 1..100),
        ) {
            let mut d = dev();
            let mut now = SimTime::ZERO;
            let mut last_done = SimTime::ZERO;
            for addr in addrs {
                let done = d.access(addr, 64, now);
                // The bus serializes: completion times are strictly ordered.
                prop_assert!(done > last_done);
                last_done = done;
                now += SimTime::from_ns(1.0);
            }
        }

        #[test]
        fn hits_plus_misses_equals_accesses(n in 1usize..200) {
            let mut d = dev();
            let mut now = SimTime::ZERO;
            for i in 0..n {
                now = d.access((i as u64) * 4096, 64, now);
            }
            prop_assert_eq!(d.row_hits + d.row_misses, n as u64);
        }
    }
}
