#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fabric-attached memory node models (§3 Difference #2 of the paper).
//!
//! "The memory fabric enriches the memory node types based on how device
//! memory is exposed and architected." This crate implements the four node
//! types the paper enumerates, plus the DRAM substrate they share:
//!
//! * [`dram`] — a banked DRAM device with open-page row-buffer timing,
//!   used as the backing store of every node type.
//! * [`expander`] — the fabric-attached **CPU-less NUMA** node (CXL Type 3
//!   memory expander), exclusive or shared with device-side partitioning.
//! * [`directory`] + [`ccnuma`] — the **CC-NUMA** node: a full-map
//!   directory-based MESI write-invalidate protocol (DASH/FLASH lineage)
//!   running at the FEA, snooping host caches over the fabric.
//! * [`noncc`] — the **non-CC NUMA** node: shared without hardware
//!   coherence (SCC/Cell SPE lineage); software manages consistency and
//!   the device records write-write hazards it observes.
//! * [`coma`] — the **COMA** attraction-memory node (DDM lineage): lines
//!   migrate and replicate toward their users under a directory that
//!   preserves the last copy.
//! * [`profile`] — latency/capability profiles per node type, consumed by
//!   the UniFabric heap's placement policy.

pub mod ccnuma;
pub mod coma;
pub mod directory;
pub mod dram;
pub mod expander;
pub mod noncc;
pub mod profile;

pub use ccnuma::DirectoryNode;
pub use coma::{AttractionMemory, ComaDirectory};
pub use directory::{CanonicalLine, DirOutcome, Directory, Grant, LineState, SnoopKind};
pub use dram::{DramDevice, DramTiming};
pub use expander::ExpanderDevice;
pub use noncc::NonCoherentShared;
pub use profile::{MemNodeKind, MemNodeProfile};
