//! The downlink pipeline: MAC bits in, time samples out.
//!
//! The transmit-side counterpart of [`crate::pipeline::UplinkPipeline`]:
//! encode (rate-1/2 K=7), modulate, precode across spatial streams, and
//! IFFT into per-antenna time samples. "It encompasses multiple
//! uplink/downlink handling pipelines" (§5) — the downlink's kernels
//! (encode, modulation, IFFT, precoding) are the computational mirror of
//! the uplink's, with data flowing MAC → radio.

use fcc_core::task::{Half, TaskId, TaskSpec};
use fcc_proto::addr::AddrRange;
use fcc_sim::SimTime;

use crate::coding::ConvCode;
use crate::cplx::Cplx;
use crate::fft::ifft_inplace;
use crate::modulation::Modulation;

/// Downlink pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct DownlinkPipeline {
    /// OFDM size (power of two).
    pub fft_size: usize,
    /// Transmit antennas (one stream per antenna in this simple precoder).
    pub antennas: usize,
    /// Constellation.
    pub modulation: Modulation,
    /// OFDM symbols per frame.
    pub symbols_per_frame: usize,
}

impl Default for DownlinkPipeline {
    fn default() -> Self {
        DownlinkPipeline {
            fft_size: 64,
            antennas: 2,
            modulation: Modulation::Qam16,
            symbols_per_frame: 4,
        }
    }
}

/// A downlink frame ready for the radios.
pub struct DownlinkFrame {
    /// `samples[symbol][antenna][sample]` time-domain output.
    pub samples: Vec<Vec<Vec<Cplx>>>,
    /// The coded bits per antenna (for loopback verification).
    pub coded: Vec<Vec<u8>>,
}

impl DownlinkPipeline {
    /// Information bits per antenna per frame.
    pub fn payload_bits_per_antenna(&self) -> usize {
        let coded = self.fft_size * self.modulation.bits_per_symbol() * self.symbols_per_frame;
        coded / 2 - 6
    }

    /// Builds a frame from MAC bits (one slice per antenna).
    ///
    /// # Panics
    ///
    /// Panics if the number of bit streams does not match the antenna
    /// count or a stream exceeds the per-frame payload.
    pub fn transmit(&self, mac_bits: &[Vec<u8>]) -> DownlinkFrame {
        assert_eq!(mac_bits.len(), self.antennas, "one stream per antenna");
        let code = ConvCode::new();
        let capacity = self.payload_bits_per_antenna();
        let coded: Vec<Vec<u8>> = mac_bits
            .iter()
            .map(|bits| {
                assert!(bits.len() <= capacity, "payload exceeds frame capacity");
                let mut padded = bits.clone();
                padded.resize(capacity, 0);
                code.encode(&padded)
            })
            .collect();
        let symbols: Vec<Vec<Cplx>> = coded
            .iter()
            .map(|c| self.modulation.map_stream(c))
            .collect();
        let mut samples = Vec::with_capacity(self.symbols_per_frame);
        for sym in 0..self.symbols_per_frame {
            let mut antenna_time = Vec::with_capacity(self.antennas);
            for ant_syms in &symbols {
                let mut grid: Vec<Cplx> = (0..self.fft_size)
                    .map(|k| {
                        ant_syms
                            .get(sym * self.fft_size + k)
                            .copied()
                            .unwrap_or(Cplx::ZERO)
                    })
                    .collect();
                ifft_inplace(&mut grid);
                antenna_time.push(grid);
            }
            samples.push(antenna_time);
        }
        DownlinkFrame { samples, coded }
    }

    /// Loopback check: demodulate + decode the time samples back to bits
    /// (no channel), returning the recovered MAC bits per antenna.
    pub fn loopback(&self, frame: &DownlinkFrame) -> Vec<Vec<u8>> {
        let code = ConvCode::new();
        let mut per_antenna: Vec<Vec<u8>> = vec![Vec::new(); self.antennas];
        for antenna_time in &frame.samples {
            for (a, time) in antenna_time.iter().enumerate() {
                let mut freq = time.clone();
                crate::fft::fft_inplace(&mut freq);
                for &s in freq.iter() {
                    per_antenna[a].extend(self.modulation.demap(s));
                }
            }
        }
        per_antenna
            .iter()
            .map(|c| {
                let want = (self.payload_bits_per_antenna() + 6) * 2;
                code.decode(&c[..want.min(c.len())])
            })
            .collect()
    }

    /// The downlink's UniFabric task graph: per-antenna encode+modulate
    /// tasks feeding per-symbol IFFT tasks.
    pub fn build_tasks(
        &self,
        bits_base: u64,
        out_base: u64,
        kernel_cost: SimTime,
    ) -> Vec<TaskSpec> {
        let mut tasks = Vec::new();
        let cost = |samples: usize| SimTime::from_ns(kernel_cost.as_ns() * samples as f64 / 1000.0);
        let mut next_id = 0u32;
        let mut id = || {
            next_id += 1;
            next_id - 1
        };
        let coded_bytes =
            (self.fft_size * self.modulation.bits_per_symbol() * self.symbols_per_frame / 8) as u64;
        let mut encode_ids = Vec::new();
        for a in 0..self.antennas {
            let enc = id();
            tasks.push(TaskSpec {
                id: TaskId(enc),
                reads: vec![AddrRange::new(bits_base + a as u64 * 8192, 8192)],
                writes: vec![AddrRange::new(
                    out_base + a as u64 * coded_bytes,
                    coded_bytes,
                )],
                compute: cost(self.fft_size * self.symbols_per_frame * 4),
                deps: vec![],
                half: Half::Bottom,
            });
            encode_ids.push(enc);
        }
        let sym_bytes = self.fft_size as u64 * 16 * self.antennas as u64;
        for sym in 0..self.symbols_per_frame {
            let ifft = id();
            tasks.push(TaskSpec {
                id: TaskId(ifft),
                reads: encode_ids
                    .iter()
                    .enumerate()
                    .map(|(a, _)| AddrRange::new(out_base + a as u64 * coded_bytes, coded_bytes))
                    .collect(),
                writes: vec![AddrRange::new(
                    out_base + (16 << 10) + sym as u64 * sym_bytes,
                    sym_bytes,
                )],
                compute: cost(self.fft_size * self.antennas),
                deps: encode_ids.iter().map(|&e| TaskId(e)).collect(),
                half: Half::Bottom,
            });
        }
        tasks
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use fcc_core::task::analyze_idempotence;

    use super::*;

    #[test]
    fn transmit_loopback_recovers_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = DownlinkPipeline::default();
        let bits: Vec<Vec<u8>> = (0..p.antennas)
            .map(|_| {
                (0..p.payload_bits_per_antenna())
                    .map(|_| rng.gen_range(0..2))
                    .collect()
            })
            .collect();
        let frame = p.transmit(&bits);
        let back = p.loopback(&frame);
        assert_eq!(back, bits);
    }

    #[test]
    fn short_payloads_are_padded() {
        let p = DownlinkPipeline::default();
        let bits = vec![vec![1, 0, 1], vec![0, 1, 1]];
        let frame = p.transmit(&bits);
        let back = p.loopback(&frame);
        assert_eq!(&back[0][..3], &[1, 0, 1]);
        assert!(back[0][3..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "one stream per antenna")]
    fn stream_count_must_match() {
        let p = DownlinkPipeline::default();
        p.transmit(&[vec![1]]);
    }

    #[test]
    fn downlink_task_graph_is_idempotent() {
        let p = DownlinkPipeline::default();
        let tasks = p.build_tasks(0x1000_0000, 0x2000_0000, SimTime::from_us(1.0));
        assert_eq!(tasks.len(), p.antennas + p.symbols_per_frame);
        for t in &tasks {
            assert!(analyze_idempotence(t).is_idempotent());
        }
        // IFFT tasks depend on all encodes.
        let ifft = tasks.last().expect("non-empty");
        assert_eq!(ifft.deps.len(), p.antennas);
    }

    #[test]
    fn sample_energy_is_nonzero() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = DownlinkPipeline::default();
        let bits: Vec<Vec<u8>> = (0..p.antennas)
            .map(|_| {
                (0..p.payload_bits_per_antenna())
                    .map(|_| rng.gen_range(0..2))
                    .collect()
            })
            .collect();
        let frame = p.transmit(&bits);
        let energy: f64 = frame
            .samples
            .iter()
            .flatten()
            .flatten()
            .map(|s| s.norm_sq())
            .sum();
        assert!(energy > 0.0);
    }
}
