//! Rate-1/2 convolutional coding with Viterbi decoding.
//!
//! The industry-standard K=7 code with generator polynomials 171/133
//! (octal) — the code Agora's LTE-like pipelines use for control data —
//! encoded non-recursively and decoded with a hard-decision Viterbi
//! decoder over the full trellis (terminated with K−1 tail zeros).

/// Constraint length.
const K: usize = 7;
/// Number of trellis states.
const STATES: usize = 1 << (K - 1);
/// Generators (octal 171, 133).
const G0: u32 = 0o171;
const G1: u32 = 0o133;

/// The rate-1/2, K=7 convolutional code.
///
/// # Examples
///
/// ```
/// use fcc_baseband::coding::ConvCode;
///
/// let code = ConvCode::new();
/// let bits = vec![1, 0, 1, 1, 0, 1];
/// let mut coded = code.encode(&bits);
/// coded[5] ^= 1; // a channel error
/// assert_eq!(code.decode(&coded), bits);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvCode;

impl ConvCode {
    /// Creates the codec.
    pub fn new() -> Self {
        ConvCode
    }

    /// Encodes `bits`, appending K−1 tail zeros; output length is
    /// `2 * (bits.len() + K - 1)`.
    pub fn encode(&self, bits: &[u8]) -> Vec<u8> {
        let mut state: u32 = 0;
        let mut out = Vec::with_capacity(2 * (bits.len() + K - 1));
        for &b in bits.iter().chain(std::iter::repeat_n(&0u8, K - 1)) {
            let reg = ((b as u32) << (K - 1)) | state;
            out.push(((reg & G0).count_ones() & 1) as u8);
            out.push(((reg & G1).count_ones() & 1) as u8);
            state = reg >> 1;
        }
        out
    }

    /// Branch outputs for (state, input) — `(out0, out1, next_state)`.
    fn branch(state: usize, input: u32) -> (u8, u8, usize) {
        let reg = (input << (K - 1)) | state as u32;
        let o0 = ((reg & G0).count_ones() & 1) as u8;
        let o1 = ((reg & G1).count_ones() & 1) as u8;
        ((o0), (o1), (reg >> 1) as usize)
    }

    /// Hard-decision Viterbi decode of a terminated codeword.
    ///
    /// Returns the information bits (tail removed). The decoder tolerates
    /// scattered bit errors up to the code's correction capability
    /// (free distance 10 → ~4 errors per constraint span).
    ///
    /// # Panics
    ///
    /// Panics if the input length is odd or shorter than the tail.
    pub fn decode(&self, coded: &[u8]) -> Vec<u8> {
        assert!(
            coded.len().is_multiple_of(2),
            "codeword must be even-length"
        );
        let steps = coded.len() / 2;
        assert!(steps >= K - 1, "codeword shorter than the tail");
        const INF: u32 = u32::MAX / 2;
        let mut metric = vec![INF; STATES];
        metric[0] = 0;
        // survivors[t][state] = (prev_state, input_bit).
        let mut survivors: Vec<Vec<(u16, u8)>> = Vec::with_capacity(steps);
        for t in 0..steps {
            let r0 = coded[2 * t];
            let r1 = coded[2 * t + 1];
            let mut next = vec![INF; STATES];
            let mut surv = vec![(0u16, 0u8); STATES];
            for (state, &m) in metric.iter().enumerate() {
                if m >= INF {
                    continue;
                }
                for input in 0..2u32 {
                    let (o0, o1, ns) = Self::branch(state, input);
                    let cost = m + u32::from(o0 != r0) + u32::from(o1 != r1);
                    if cost < next[ns] {
                        next[ns] = cost;
                        surv[ns] = (state as u16, input as u8);
                    }
                }
            }
            metric = next;
            survivors.push(surv);
        }
        // Terminated: trace back from state 0.
        let mut state = 0usize;
        let mut bits_rev = Vec::with_capacity(steps);
        for t in (0..steps).rev() {
            let (prev, input) = survivors[t][state];
            bits_rev.push(input);
            state = prev as usize;
        }
        bits_rev.reverse();
        bits_rev.truncate(steps - (K - 1));
        bits_rev
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use super::*;

    #[test]
    fn encode_rate_and_tail() {
        let c = ConvCode::new();
        let coded = c.encode(&[1, 0, 1, 1]);
        assert_eq!(coded.len(), 2 * (4 + 6));
    }

    #[test]
    fn clean_round_trip() {
        let c = ConvCode::new();
        let bits = vec![1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0];
        let coded = c.encode(&bits);
        assert_eq!(c.decode(&coded), bits);
    }

    #[test]
    fn corrects_scattered_errors() {
        let c = ConvCode::new();
        let mut rng = StdRng::seed_from_u64(7);
        let bits: Vec<u8> = (0..200).map(|_| rng.gen_range(0..2)).collect();
        let mut coded = c.encode(&bits);
        // Flip ~2% of coded bits, spaced apart.
        let mut flips = 0;
        let mut i = 3;
        while i < coded.len() {
            coded[i] ^= 1;
            flips += 1;
            i += 50;
        }
        assert!(flips >= 8);
        assert_eq!(c.decode(&coded), bits, "decoder must fix {flips} errors");
    }

    #[test]
    fn burst_beyond_capability_fails_gracefully() {
        let c = ConvCode::new();
        let bits = vec![1; 40];
        let mut coded = c.encode(&bits);
        // Dense 12-bit burst exceeds free distance.
        for b in coded.iter_mut().take(12) {
            *b ^= 1;
        }
        let decoded = c.decode(&coded);
        assert_eq!(decoded.len(), bits.len(), "length preserved");
        // Correctness not guaranteed, but no panic.
    }

    #[test]
    fn all_zero_input_gives_all_zero_codeword() {
        let c = ConvCode::new();
        let coded = c.encode(&[0; 16]);
        assert!(coded.iter().all(|&b| b == 0));
    }

    proptest! {
        #[test]
        fn random_payloads_round_trip(bits in prop::collection::vec(0u8..2, 1..150)) {
            let c = ConvCode::new();
            let coded = c.encode(&bits);
            prop_assert_eq!(c.decode(&coded), bits);
        }

        #[test]
        fn up_to_two_spaced_errors_always_corrected(
            bits in prop::collection::vec(0u8..2, 30..60),
            e1 in 0usize..40,
            gap in 20usize..40,
        ) {
            let c = ConvCode::new();
            let mut coded = c.encode(&bits);
            let n = coded.len();
            coded[e1 % n] ^= 1;
            coded[(e1 + gap) % n] ^= 1;
            prop_assert_eq!(c.decode(&coded), bits);
        }
    }
}
