//! Zero-forcing MIMO equalization.
//!
//! Solves the least-squares problem `min ‖y − Hx‖²` via the normal
//! equations `(HᴴH) x = Hᴴy`, using complex Gaussian elimination with
//! partial pivoting. For square well-conditioned `H` this inverts the
//! channel exactly (zero-forcing).

use crate::cplx::Cplx;

/// Solves `A x = b` for complex `A` (n×n, row-major), in place.
///
/// Returns `None` if `A` is singular to working precision.
pub fn solve(a: &mut [Cplx], b: &mut [Cplx], n: usize) -> Option<Vec<Cplx>> {
    assert_eq!(a.len(), n * n, "matrix shape");
    assert_eq!(b.len(), n, "rhs shape");
    for col in 0..n {
        // Partial pivot.
        // `col < n`, so the candidate range is never empty.
        #[allow(clippy::expect_used)]
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| a[r1 * n + col].abs().total_cmp(&a[r2 * n + col].abs()))
            .expect("non-empty range");
        if a[pivot_row * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[col * n + col];
        for row in col + 1..n {
            let factor = a[row * n + col] / pivot;
            for k in col..n {
                let v = a[col * n + k];
                a[row * n + k] = a[row * n + k] - factor * v;
            }
            let bv = b[col];
            b[row] = b[row] - factor * bv;
        }
    }
    // Back substitution.
    let mut x = vec![Cplx::ZERO; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc = acc - a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Some(x)
}

/// Zero-forcing equalization: recovers the `tx` transmitted symbols from
/// `rx` observations given the CSI matrix `h` (row-major, rx×tx).
///
/// Returns `None` when the channel is singular.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn zf_equalize(h: &[Cplx], y: &[Cplx], rx: usize, tx: usize) -> Option<Vec<Cplx>> {
    assert_eq!(h.len(), rx * tx, "CSI shape");
    assert_eq!(y.len(), rx, "observation shape");
    assert!(rx >= tx, "underdetermined");
    // Normal equations: (HᴴH) x = Hᴴ y.
    let mut a = vec![Cplx::ZERO; tx * tx];
    for i in 0..tx {
        for j in 0..tx {
            let mut acc = Cplx::ZERO;
            for r in 0..rx {
                acc += h[r * tx + i].conj() * h[r * tx + j];
            }
            a[i * tx + j] = acc;
        }
    }
    let mut b = vec![Cplx::ZERO; tx];
    for (i, bi) in b.iter_mut().enumerate() {
        let mut acc = Cplx::ZERO;
        for r in 0..rx {
            acc += h[r * tx + i].conj() * y[r];
        }
        *bi = acc;
    }
    solve(&mut a, &mut b, tx)
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::channel::{randn_c, MimoChannel};

    use super::*;

    #[test]
    fn solves_known_system() {
        // [1 i; 0 2] x = [1+i, 4i] → x = [1, 2i]... verify by construction.
        let x_true = vec![Cplx::new(1.0, 0.0), Cplx::new(0.0, 2.0)];
        let a_orig = vec![
            Cplx::new(1.0, 0.0),
            Cplx::new(0.0, 1.0),
            Cplx::new(0.0, 0.0),
            Cplx::new(2.0, 0.0),
        ];
        let mut b = vec![
            a_orig[0] * x_true[0] + a_orig[1] * x_true[1],
            a_orig[2] * x_true[0] + a_orig[3] * x_true[1],
        ];
        let mut a = a_orig.clone();
        let x = solve(&mut a, &mut b, 2).expect("non-singular");
        for (got, want) in x.iter().zip(&x_true) {
            assert!((*got - *want).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_matrix_reported() {
        let mut a = vec![
            Cplx::new(1.0, 0.0),
            Cplx::new(2.0, 0.0),
            Cplx::new(2.0, 0.0),
            Cplx::new(4.0, 0.0),
        ];
        let mut b = vec![Cplx::ONE, Cplx::ONE];
        assert!(solve(&mut a, &mut b, 2).is_none());
    }

    #[test]
    fn zf_recovers_noiseless_transmission() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let ch = MimoChannel::rayleigh(4, 4, 200.0, &mut rng);
            let x: Vec<Cplx> = (0..4).map(|_| randn_c(&mut rng)).collect();
            let y = ch.apply(&x, &mut rng);
            let xhat = zf_equalize(ch.csi(), &y, 4, 4).expect("well-conditioned");
            for (got, want) in xhat.iter().zip(&x) {
                assert!(
                    (*got - *want).abs() < 1e-6,
                    "trial {trial}: {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn zf_with_more_antennas_is_least_squares() {
        let mut rng = StdRng::seed_from_u64(12);
        let ch = MimoChannel::rayleigh(8, 2, 200.0, &mut rng);
        let x: Vec<Cplx> = (0..2).map(|_| randn_c(&mut rng)).collect();
        let y = ch.apply(&x, &mut rng);
        let xhat = zf_equalize(ch.csi(), &y, 8, 2).expect("full rank");
        for (got, want) in xhat.iter().zip(&x) {
            assert!((*got - *want).abs() < 1e-6);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // First pivot is zero; partial pivoting must recover.
        let mut a = vec![
            Cplx::ZERO,
            Cplx::new(1.0, 0.0),
            Cplx::new(1.0, 0.0),
            Cplx::ZERO,
        ];
        let mut b = vec![Cplx::new(3.0, 0.0), Cplx::new(5.0, 0.0)];
        let x = solve(&mut a, &mut b, 2).expect("permutation matrix");
        assert!((x[0] - Cplx::new(5.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - Cplx::new(3.0, 0.0)).abs() < 1e-12);
    }
}
