//! Complex arithmetic for the DSP kernels.

use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number (f64 components).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cplx {
    /// Zero.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };

    /// Creates `re + im·i`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Cplx { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Cplx {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Cplx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics (debug) on division by zero magnitude.
    #[inline]
    pub fn inv(self) -> Self {
        let n = self.norm_sq();
        debug_assert!(n > 0.0, "inverse of zero");
        Cplx {
            re: self.re / n,
            im: -self.im / n,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Cplx {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Cplx {
    type Output = Cplx;

    #[inline]
    fn add(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Cplx {
    #[inline]
    fn add_assign(&mut self, rhs: Cplx) {
        *self = *self + rhs;
    }
}

impl Sub for Cplx {
    type Output = Cplx;

    #[inline]
    fn sub(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Cplx {
    type Output = Cplx;

    #[inline]
    fn mul(self, rhs: Cplx) -> Cplx {
        Cplx::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Cplx {
    type Output = Cplx;

    // Division via the multiplicative inverse is intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Cplx) -> Cplx {
        self * rhs.inv()
    }
}

impl Neg for Cplx {
    type Output = Cplx;

    #[inline]
    fn neg(self) -> Cplx {
        Cplx::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cplx, b: Cplx) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_ops() {
        let a = Cplx::new(1.0, 2.0);
        let b = Cplx::new(3.0, -1.0);
        assert!(close(a + b, Cplx::new(4.0, 1.0)));
        assert!(close(a - b, Cplx::new(-2.0, 3.0)));
        assert!(close(a * b, Cplx::new(5.0, 5.0)));
        assert!(close((a / b) * b, a));
        assert!(close(-a + a, Cplx::ZERO));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Cplx::new(3.0, 4.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!(close(a * a.conj(), Cplx::new(25.0, 0.0)));
    }

    #[test]
    fn polar_unit_circle() {
        let q = Cplx::from_polar(1.0, std::f64::consts::FRAC_PI_2);
        assert!(close(q, Cplx::new(0.0, 1.0)));
        let full = Cplx::from_polar(2.0, std::f64::consts::TAU);
        assert!(close(full, Cplx::new(2.0, 0.0)));
    }

    #[test]
    fn inverse() {
        let a = Cplx::new(0.5, -0.25);
        assert!(close(a * a.inv(), Cplx::ONE));
    }
}
