#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! The §5 case study: a software MIMO baseband processing engine.
//!
//! "The engine resides between radios and the MAC, converting time-domain
//! samples received from radios to bits used by the MAC and vice versa. It
//! encompasses multiple uplink/downlink handling pipelines, further
//! including a series of computing kernels, such as FFT/IFFT,
//! equalization, (de)modulation, and encoding/decoding" (§5, after
//! Agora \[42\]). Every kernel here is a real implementation — the pipeline
//! computes actual bits — so porting it onto UniFabric exercises genuine
//! data objects (symbol frames, CSI matrices) and genuine compute.
//!
//! * [`cplx`] — complex arithmetic.
//! * [`fft`] — iterative radix-2 FFT/IFFT.
//! * [`modulation`] — QPSK / 16-QAM / 64-QAM mapping and hard demapping.
//! * [`channel`] — Rayleigh block-fading MIMO channel with AWGN.
//! * [`equalizer`] — zero-forcing MIMO equalization (complex solver).
//! * [`coding`] — rate-1/2 K=7 convolutional code with Viterbi decoding.
//! * [`pipeline`] — the uplink pipeline: frame in, bits out, plus its
//!   decomposition into UniFabric idempotent tasks for experiment E8.

pub mod channel;
pub mod coding;
pub mod cplx;
pub mod downlink;
pub mod equalizer;
pub mod fft;
pub mod modulation;
pub mod pipeline;

pub use channel::MimoChannel;
pub use coding::ConvCode;
pub use cplx::Cplx;
pub use downlink::{DownlinkFrame, DownlinkPipeline};
pub use equalizer::zf_equalize;
pub use fft::{fft_inplace, ifft_inplace};
pub use modulation::Modulation;
pub use pipeline::{PipelineReport, UplinkFrame, UplinkPipeline};
