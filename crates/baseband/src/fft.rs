//! Iterative radix-2 decimation-in-time FFT/IFFT.

use crate::cplx::Cplx;

/// In-place FFT of a power-of-two-length buffer.
///
/// # Examples
///
/// ```
/// use fcc_baseband::cplx::Cplx;
/// use fcc_baseband::fft::{fft_inplace, ifft_inplace};
///
/// let mut data = vec![Cplx::new(1.0, 0.0); 8];
/// fft_inplace(&mut data);
/// // A constant signal concentrates in bin 0.
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// assert!(data[1].abs() < 1e-12);
/// ifft_inplace(&mut data);
/// assert!((data[3].re - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the length is not a power of two (or is zero).
pub fn fft_inplace(data: &mut [Cplx]) {
    transform(data, -1.0);
}

/// In-place inverse FFT (normalized by `1/N`).
///
/// # Panics
///
/// Panics if the length is not a power of two (or is zero).
pub fn ifft_inplace(data: &mut [Cplx]) {
    transform(data, 1.0);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(1.0 / n);
    }
}

fn transform(data: &mut [Cplx], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two() && n > 0, "FFT length must be 2^k");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Cplx::from_polar(1.0, ang);
        for start in (0..n).step_by(len) {
            let mut w = Cplx::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Reference O(n²) DFT, for testing.
pub fn dft_naive(data: &[Cplx]) -> Vec<Cplx> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Cplx::ZERO;
            for (t, &x) in data.iter().enumerate() {
                let ang = -std::f64::consts::TAU * (k * t) as f64 / n as f64;
                acc += x * Cplx::from_polar(1.0, ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    fn close(a: Cplx, b: Cplx) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn matches_naive_dft() {
        let data: Vec<Cplx> = (0..16)
            .map(|i| Cplx::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut fast = data.clone();
        fft_inplace(&mut fast);
        let slow = dft_naive(&data);
        for (a, b) in fast.iter().zip(&slow) {
            assert!(close(*a, *b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Cplx::ZERO; 8];
        data[0] = Cplx::ONE;
        fft_inplace(&mut data);
        for v in &data {
            assert!(close(*v, Cplx::ONE));
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let mut data: Vec<Cplx> = (0..n)
            .map(|t| Cplx::from_polar(1.0, std::f64::consts::TAU * (k * t) as f64 / n as f64))
            .collect();
        fft_inplace(&mut data);
        for (bin, v) in data.iter().enumerate() {
            if bin == k {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leak in bin {bin}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Cplx::ZERO; 12];
        fft_inplace(&mut data);
    }

    proptest! {
        #[test]
        fn fft_ifft_round_trips(values in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..5)) {
            // Pad to 64 for a fixed power-of-two length.
            let mut data = vec![Cplx::ZERO; 64];
            for (i, (re, im)) in values.iter().enumerate() {
                data[i] = Cplx::new(*re, *im);
            }
            let original = data.clone();
            fft_inplace(&mut data);
            ifft_inplace(&mut data);
            for (a, b) in data.iter().zip(&original) {
                prop_assert!((*a - *b).abs() < 1e-9);
            }
        }

        #[test]
        fn parseval_energy_conserved(seed_vals in prop::collection::vec(-1.0f64..1.0, 32)) {
            let data: Vec<Cplx> = seed_vals
                .chunks(2)
                .map(|c| Cplx::new(c[0], *c.get(1).unwrap_or(&0.0)))
                .collect();
            let mut padded = vec![Cplx::ZERO; 16];
            padded[..data.len().min(16)].copy_from_slice(&data[..data.len().min(16)]);
            let time_energy: f64 = padded.iter().map(|v| v.norm_sq()).sum();
            let mut freq = padded.clone();
            fft_inplace(&mut freq);
            let freq_energy: f64 = freq.iter().map(|v| v.norm_sq()).sum();
            prop_assert!((freq_energy / 16.0 - time_energy).abs() < 1e-9);
        }
    }
}
