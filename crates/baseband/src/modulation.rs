//! Digital modulation: QPSK, 16-QAM, 64-QAM with Gray mapping.

use crate::cplx::Cplx;

/// Supported constellations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modulation {
    /// 2 bits/symbol.
    Qpsk,
    /// 4 bits/symbol.
    Qam16,
    /// 6 bits/symbol.
    Qam64,
}

impl Modulation {
    /// Bits per symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    fn levels(self) -> &'static [f64] {
        match self {
            Modulation::Qpsk => &[-1.0, 1.0],
            Modulation::Qam16 => &[-3.0, -1.0, 1.0, 3.0],
            Modulation::Qam64 => &[-7.0, -5.0, -3.0, -1.0, 1.0, 3.0, 5.0, 7.0],
        }
    }

    /// Average-power normalization factor.
    fn norm(self) -> f64 {
        match self {
            Modulation::Qpsk => (2.0f64).sqrt().recip(),
            Modulation::Qam16 => (10.0f64).sqrt().recip(),
            Modulation::Qam64 => (42.0f64).sqrt().recip(),
        }
    }

    /// Gray-encodes `bits_per_axis` bits into an amplitude-level index.
    fn gray_to_level(bits: u32, n_bits: usize) -> usize {
        // Gray decode: binary = gray ^ (gray >> 1) ^ (gray >> 2) ...
        let mut b = bits;
        let mut shift = 1;
        while shift < n_bits as u32 {
            b ^= b >> shift;
            shift <<= 1;
        }
        b as usize
    }

    fn level_to_gray(level: usize) -> u32 {
        let b = level as u32;
        b ^ (b >> 1)
    }

    /// Maps a bit slice onto one symbol (MSB first; I bits then Q bits).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != bits_per_symbol()`.
    pub fn map(self, bits: &[u8]) -> Cplx {
        let per = self.bits_per_symbol();
        assert_eq!(bits.len(), per, "need exactly {per} bits");
        let half = per / 2;
        let to_val = |chunk: &[u8]| -> u32 {
            chunk
                .iter()
                .fold(0u32, |acc, &b| (acc << 1) | (b & 1) as u32)
        };
        let levels = self.levels();
        let i_level = Self::gray_to_level(to_val(&bits[..half]), half);
        let q_level = Self::gray_to_level(to_val(&bits[half..]), half);
        Cplx::new(levels[i_level], levels[q_level]).scale(self.norm())
    }

    /// Hard-decision demapping of one symbol back to bits.
    pub fn demap(self, symbol: Cplx) -> Vec<u8> {
        let per = self.bits_per_symbol();
        let half = per / 2;
        let levels = self.levels();
        let unscaled = symbol.scale(1.0 / self.norm());
        let nearest = |v: f64| -> usize {
            // Every constellation has at least two amplitude levels.
            #[allow(clippy::expect_used)]
            levels
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| (v - **a).abs().total_cmp(&(v - **b).abs()))
                .map(|(i, _)| i)
                .expect("non-empty levels")
        };
        let i_gray = Self::level_to_gray(nearest(unscaled.re));
        let q_gray = Self::level_to_gray(nearest(unscaled.im));
        let mut out = Vec::with_capacity(per);
        for k in (0..half).rev() {
            out.push(((i_gray >> k) & 1) as u8);
        }
        for k in (0..half).rev() {
            out.push(((q_gray >> k) & 1) as u8);
        }
        out
    }

    /// Maps a bit stream to symbols (stream length must be a multiple of
    /// bits-per-symbol; the tail is zero-padded).
    pub fn map_stream(self, bits: &[u8]) -> Vec<Cplx> {
        let per = self.bits_per_symbol();
        bits.chunks(per)
            .map(|chunk| {
                if chunk.len() == per {
                    self.map(chunk)
                } else {
                    let mut padded = chunk.to_vec();
                    padded.resize(per, 0);
                    self.map(&padded)
                }
            })
            .collect()
    }

    /// Demaps a symbol stream to bits.
    pub fn demap_stream(self, symbols: &[Cplx]) -> Vec<u8> {
        symbols.iter().flat_map(|&s| self.demap(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    #[test]
    fn qpsk_constellation_points() {
        let s = Modulation::Qpsk.map(&[0, 0]);
        let r = (2.0f64).sqrt().recip();
        assert!((s.re + r).abs() < 1e-12 && (s.im + r).abs() < 1e-12);
        assert!((Modulation::Qpsk.map(&[1, 1]).re - r).abs() < 1e-12);
    }

    #[test]
    fn average_power_is_unity() {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let per = m.bits_per_symbol();
            let count = 1usize << per;
            let mut power = 0.0;
            for v in 0..count {
                let bits: Vec<u8> = (0..per).rev().map(|k| ((v >> k) & 1) as u8).collect();
                power += m.map(&bits).norm_sq();
            }
            let avg = power / count as f64;
            assert!((avg - 1.0).abs() < 1e-12, "{m:?} avg power {avg}");
        }
    }

    #[test]
    fn all_symbols_round_trip() {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let per = m.bits_per_symbol();
            for v in 0..(1usize << per) {
                let bits: Vec<u8> = (0..per).rev().map(|k| ((v >> k) & 1) as u8).collect();
                let sym = m.map(&bits);
                assert_eq!(m.demap(sym), bits, "{m:?} value {v}");
            }
        }
    }

    #[test]
    fn gray_neighbors_differ_by_one_bit() {
        // Adjacent 16-QAM I-levels must differ in exactly one bit.
        for lvl in 0..3usize {
            let a = Modulation::level_to_gray(lvl);
            let b = Modulation::level_to_gray(lvl + 1);
            assert_eq!((a ^ b).count_ones(), 1);
        }
    }

    #[test]
    fn small_noise_does_not_flip_bits() {
        let m = Modulation::Qam16;
        let bits = [1, 0, 1, 1];
        let sym = m.map(&bits) + Cplx::new(0.05, -0.05);
        assert_eq!(m.demap(sym), bits.to_vec());
    }

    proptest! {
        #[test]
        fn streams_round_trip(bits in prop::collection::vec(0u8..2, 0..120)) {
            for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
                let per = m.bits_per_symbol();
                let symbols = m.map_stream(&bits);
                let out = m.demap_stream(&symbols);
                // Output is the input zero-padded to a symbol boundary.
                prop_assert_eq!(&out[..bits.len()], &bits[..]);
                prop_assert!(out.len() - bits.len() < per);
                prop_assert!(out[bits.len()..].iter().all(|&b| b == 0));
            }
        }
    }
}
