//! The uplink pipeline: frame in, MAC bits out.
//!
//! The §5 flow: the transmitter encodes MAC bits (convolutional),
//! modulates them, spreads them across spatial streams and OFDM
//! subcarriers (IFFT → time samples). The receiver — the part the case
//! study ports to UniFabric — FFTs each received symbol, zero-forcing
//! equalizes with the CSI matrix, demodulates and Viterbi-decodes.
//!
//! [`UplinkPipeline::process`] really computes all of it; the kernel
//! boundaries also export as UniFabric [`TaskSpec`]s with the data
//! objects (symbol frame, CSI matrix) sized for the unified heap (E8).

use rand::Rng;

use fcc_core::task::{Half, TaskId, TaskSpec};
use fcc_proto::addr::AddrRange;
use fcc_sim::SimTime;

use crate::channel::MimoChannel;
use crate::coding::ConvCode;
use crate::cplx::Cplx;
use crate::equalizer::zf_equalize;
use crate::fft::{fft_inplace, ifft_inplace};
use crate::modulation::Modulation;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct UplinkPipeline {
    /// OFDM size (power of two).
    pub fft_size: usize,
    /// Spatial streams (= users in the uplink).
    pub streams: usize,
    /// Receive antennas (≥ streams).
    pub antennas: usize,
    /// Constellation.
    pub modulation: Modulation,
    /// OFDM symbols per frame.
    pub symbols_per_frame: usize,
}

impl Default for UplinkPipeline {
    fn default() -> Self {
        UplinkPipeline {
            fft_size: 64,
            streams: 2,
            antennas: 4,
            modulation: Modulation::Qam16,
            symbols_per_frame: 4,
        }
    }
}

/// One uplink frame as received: time-domain samples per antenna per
/// OFDM symbol, plus the block-fading CSI.
pub struct UplinkFrame {
    /// `samples[symbol][antenna][sample]`.
    pub samples: Vec<Vec<Vec<Cplx>>>,
    /// The channel used (CSI assumed perfectly estimated).
    pub channel: MimoChannel,
    /// Ground-truth MAC bits per stream (for BER accounting).
    pub truth: Vec<Vec<u8>>,
}

/// Result of processing one frame.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Decoded MAC bits per stream.
    pub bits: Vec<Vec<u8>>,
    /// Bit errors against the ground truth.
    pub bit_errors: usize,
    /// Total ground-truth bits.
    pub total_bits: usize,
}

impl PipelineReport {
    /// Bit error rate.
    pub fn ber(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.total_bits as f64
        }
    }
}

impl UplinkPipeline {
    /// Information bits carried per stream per frame (after coding).
    pub fn payload_bits_per_stream(&self) -> usize {
        let coded = self.fft_size * self.modulation.bits_per_symbol() * self.symbols_per_frame;
        // Rate 1/2 with 6 tail bits.
        coded / 2 - 6
    }

    /// Generates a frame: random MAC bits, encoded, modulated, IFFT'd,
    /// and passed through a Rayleigh channel at `snr_db`.
    pub fn generate_frame(&self, snr_db: f64, rng: &mut impl Rng) -> UplinkFrame {
        let code = ConvCode::new();
        let bits_per_stream = self.payload_bits_per_stream();
        let truth: Vec<Vec<u8>> = (0..self.streams)
            .map(|_| (0..bits_per_stream).map(|_| rng.gen_range(0..2)).collect())
            .collect();
        // Per stream: encode then modulate into a flat symbol list.
        let tx_symbols: Vec<Vec<Cplx>> = truth
            .iter()
            .map(|bits| self.modulation.map_stream(&code.encode(bits)))
            .collect();
        let channel = MimoChannel::rayleigh(self.antennas, self.streams, snr_db, rng);
        let mut samples = Vec::with_capacity(self.symbols_per_frame);
        for sym in 0..self.symbols_per_frame {
            // Frequency-domain grid per stream for this OFDM symbol.
            let grids: Vec<Vec<Cplx>> = (0..self.streams)
                .map(|s| {
                    (0..self.fft_size)
                        .map(|k| {
                            tx_symbols[s]
                                .get(sym * self.fft_size + k)
                                .copied()
                                .unwrap_or(Cplx::ZERO)
                        })
                        .collect()
                })
                .collect();
            // Mix through the channel per subcarrier, then IFFT per
            // antenna to produce time samples (the radio's view).
            let mut antenna_freq: Vec<Vec<Cplx>> =
                vec![vec![Cplx::ZERO; self.fft_size]; self.antennas];
            #[allow(clippy::needless_range_loop)] // `k` indexes two arrays.
            for k in 0..self.fft_size {
                let x: Vec<Cplx> = (0..self.streams).map(|s| grids[s][k]).collect();
                let y = channel.apply(&x, rng);
                for (a, &ya) in y.iter().enumerate() {
                    antenna_freq[a][k] = ya;
                }
            }
            let mut antenna_time = Vec::with_capacity(self.antennas);
            for freq in antenna_freq {
                let mut t = freq;
                ifft_inplace(&mut t);
                antenna_time.push(t);
            }
            samples.push(antenna_time);
        }
        UplinkFrame {
            samples,
            channel,
            truth,
        }
    }

    /// Runs the receive pipeline: FFT → ZF equalize → demap → decode.
    pub fn process(&self, frame: &UplinkFrame) -> PipelineReport {
        let code = ConvCode::new();
        // Per-stream coded-bit accumulators.
        let mut coded: Vec<Vec<u8>> = vec![Vec::new(); self.streams];
        for antenna_time in &frame.samples {
            // FFT per antenna back to the frequency grid.
            let antenna_freq: Vec<Vec<Cplx>> = antenna_time
                .iter()
                .map(|t| {
                    let mut f = t.clone();
                    fft_inplace(&mut f);
                    f
                })
                .collect();
            // Equalize each subcarrier.
            #[allow(clippy::needless_range_loop)] // `k` indexes a 2-D grid.
            for k in 0..self.fft_size {
                let y: Vec<Cplx> = (0..self.antennas).map(|a| antenna_freq[a][k]).collect();
                let x = zf_equalize(frame.channel.csi(), &y, self.antennas, self.streams)
                    .unwrap_or_else(|| vec![Cplx::ZERO; self.streams]);
                for (s, &xs) in x.iter().enumerate() {
                    coded[s].extend(self.modulation.demap(xs));
                }
            }
        }
        // Decode per stream.
        let bits: Vec<Vec<u8>> = coded
            .iter()
            .map(|c| {
                // Trim to the exact codeword length.
                let want = (self.payload_bits_per_stream() + 6) * 2;
                code.decode(&c[..want.min(c.len())])
            })
            .collect();
        let mut bit_errors = 0;
        let mut total_bits = 0;
        for (got, want) in bits.iter().zip(&frame.truth) {
            total_bits += want.len();
            bit_errors += got.iter().zip(want).filter(|(a, b)| a != b).count();
            bit_errors += want.len().saturating_sub(got.len());
        }
        PipelineReport {
            bits,
            bit_errors,
            total_bits,
        }
    }

    /// Decomposes one frame's receive processing into UniFabric tasks:
    /// per-symbol FFT tasks feed an equalize+demod task per symbol, which
    /// feed one decode task per stream — with real data-object footprints
    /// (the paper's "symbol frame" and "CSI matrix" objects).
    ///
    /// `frame_base`/`csi_base` locate the objects in (heap-managed)
    /// memory; `kernel_cost` scales compute times (per 1k samples).
    pub fn build_tasks(
        &self,
        frame_base: u64,
        csi_base: u64,
        out_base: u64,
        kernel_cost: SimTime,
    ) -> Vec<TaskSpec> {
        let mut tasks = Vec::new();
        let sample_bytes = 16u64; // one Cplx (2×f64).
        let symbol_bytes = self.fft_size as u64 * sample_bytes;
        let frame_sym_bytes = symbol_bytes * self.antennas as u64;
        let csi_bytes = (self.antennas * self.streams) as u64 * sample_bytes;
        let cost = |samples: usize| SimTime::from_ns(kernel_cost.as_ns() * samples as f64 / 1000.0);
        let mut next_id = 0u32;
        let mut id = || {
            next_id += 1;
            next_id - 1
        };
        let mut eq_ids = Vec::new();
        for sym in 0..self.symbols_per_frame {
            let fft_id = id();
            let in_range =
                AddrRange::new(frame_base + sym as u64 * frame_sym_bytes, frame_sym_bytes);
            let fft_out = AddrRange::new(out_base + sym as u64 * frame_sym_bytes, frame_sym_bytes);
            tasks.push(TaskSpec {
                id: TaskId(fft_id),
                reads: vec![in_range],
                writes: vec![fft_out],
                compute: cost(self.fft_size * self.antennas),
                deps: vec![],
                half: Half::Bottom,
            });
            let eq_id = id();
            let eq_out = AddrRange::new(
                out_base + (self.symbols_per_frame + sym) as u64 * frame_sym_bytes,
                symbol_bytes * self.streams as u64,
            );
            tasks.push(TaskSpec {
                id: TaskId(eq_id),
                reads: vec![fft_out, AddrRange::new(csi_base, csi_bytes)],
                writes: vec![eq_out],
                compute: cost(self.fft_size * self.streams * self.antennas),
                deps: vec![TaskId(fft_id)],
                half: Half::Bottom,
            });
            eq_ids.push((eq_id, eq_out));
        }
        for s in 0..self.streams {
            let dec_id = id();
            tasks.push(TaskSpec {
                id: TaskId(dec_id),
                reads: eq_ids.iter().map(|&(_, r)| r).collect(),
                writes: vec![AddrRange::new(
                    out_base + 64 * frame_sym_bytes + s as u64 * 4096,
                    4096,
                )],
                // Viterbi is the heavyweight kernel.
                compute: cost(self.fft_size * self.symbols_per_frame * 8),
                deps: eq_ids.iter().map(|&(i, _)| TaskId(i)).collect(),
                half: Half::Bottom,
            });
        }
        tasks
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use fcc_core::task::analyze_idempotence;

    use super::*;

    #[test]
    fn clean_channel_decodes_perfectly() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = UplinkPipeline::default();
        let frame = p.generate_frame(40.0, &mut rng);
        let report = p.process(&frame);
        assert_eq!(report.bit_errors, 0, "BER {}", report.ber());
        assert_eq!(report.total_bits, 2 * p.payload_bits_per_stream());
    }

    #[test]
    fn low_snr_produces_errors_high_snr_does_not() {
        let mut rng = StdRng::seed_from_u64(43);
        let p = UplinkPipeline::default();
        let mut low_errors = 0;
        let mut high_errors = 0;
        for _ in 0..5 {
            let low = p.generate_frame(-5.0, &mut rng);
            low_errors += p.process(&low).bit_errors;
            let high = p.generate_frame(35.0, &mut rng);
            high_errors += p.process(&high).bit_errors;
        }
        assert!(low_errors > 0, "-5 dB must corrupt");
        assert_eq!(high_errors, 0, "35 dB must be clean");
    }

    #[test]
    fn qpsk_survives_lower_snr_than_qam64() {
        let mut rng = StdRng::seed_from_u64(44);
        let at_snr = |m: Modulation, snr: f64, rng: &mut StdRng| -> f64 {
            let p = UplinkPipeline {
                modulation: m,
                ..UplinkPipeline::default()
            };
            let mut errs = 0;
            let mut total = 0;
            for _ in 0..4 {
                let frame = p.generate_frame(snr, rng);
                let r = p.process(&frame);
                errs += r.bit_errors;
                total += r.total_bits;
            }
            errs as f64 / total as f64
        };
        let qpsk = at_snr(Modulation::Qpsk, 12.0, &mut rng);
        let qam64 = at_snr(Modulation::Qam64, 12.0, &mut rng);
        assert!(
            qpsk < qam64,
            "QPSK ({qpsk}) must beat 64-QAM ({qam64}) at 12 dB"
        );
    }

    #[test]
    fn task_graph_is_idempotent_and_well_formed() {
        let p = UplinkPipeline::default();
        let tasks = p.build_tasks(0x1000_0000, 0x2000_0000, 0x3000_0000, SimTime::from_us(1.0));
        // symbols FFT + symbols EQ + streams decode.
        assert_eq!(tasks.len(), p.symbols_per_frame * 2 + p.streams);
        for t in &tasks {
            assert!(
                analyze_idempotence(t).is_idempotent(),
                "kernel task {:?} must be idempotent",
                t.id
            );
        }
        // Decode depends on all equalize tasks.
        let decode = tasks.last().expect("non-empty");
        assert_eq!(decode.deps.len(), p.symbols_per_frame);
    }
}
