//! Rayleigh block-fading MIMO channel with AWGN.

use rand::Rng;

use crate::cplx::Cplx;

/// Draws a standard complex Gaussian (unit variance) via Box–Muller.
pub fn randn_c(rng: &mut impl Rng) -> Cplx {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    // Each component has variance 1/2 so |z|² has mean 1.
    Cplx::new(r * theta.cos(), r * theta.sin()).scale((0.5f64).sqrt())
}

/// A MIMO channel: `rx_antennas × tx_streams` complex gains, constant for
/// a block (frame), plus per-sample AWGN at a configured SNR.
#[derive(Debug, Clone)]
pub struct MimoChannel {
    /// Row-major channel matrix `H`, `rx × tx`.
    pub h: Vec<Cplx>,
    /// Receive antennas.
    pub rx: usize,
    /// Transmit streams.
    pub tx: usize,
    noise_std: f64,
}

impl MimoChannel {
    /// Draws a block-fading channel with the given SNR in dB.
    ///
    /// # Panics
    ///
    /// Panics if `rx < tx` (ZF needs at least as many receive antennas)
    /// or either dimension is zero.
    pub fn rayleigh(rx: usize, tx: usize, snr_db: f64, rng: &mut impl Rng) -> Self {
        assert!(tx > 0 && rx >= tx, "need rx >= tx > 0");
        let h = (0..rx * tx).map(|_| randn_c(rng)).collect();
        let snr = 10f64.powf(snr_db / 10.0);
        // Unit-power symbols per stream; noise per receive antenna.
        let noise_std = (tx as f64 / snr).sqrt();
        MimoChannel {
            h,
            rx,
            tx,
            noise_std,
        }
    }

    /// An identity (noiseless, unit-gain) channel for tests.
    pub fn identity(n: usize) -> Self {
        let mut h = vec![Cplx::ZERO; n * n];
        for i in 0..n {
            h[i * n + i] = Cplx::ONE;
        }
        MimoChannel {
            h,
            rx: n,
            tx: n,
            noise_std: 0.0,
        }
    }

    /// Applies the channel to one vector of `tx` symbols, producing `rx`
    /// observations: `y = Hx + n`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != tx`.
    pub fn apply(&self, x: &[Cplx], rng: &mut impl Rng) -> Vec<Cplx> {
        assert_eq!(x.len(), self.tx, "stream count mismatch");
        (0..self.rx)
            .map(|r| {
                let mut acc = Cplx::ZERO;
                for (t, &xt) in x.iter().enumerate() {
                    acc += self.h[r * self.tx + t] * xt;
                }
                if self.noise_std > 0.0 {
                    acc += randn_c(rng).scale(self.noise_std);
                }
                acc
            })
            .collect()
    }

    /// The channel-state-information matrix (what the paper's case study
    /// calls the "channel state information matrix" data object).
    pub fn csi(&self) -> &[Cplx] {
        &self.h
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn randn_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mut mean = Cplx::ZERO;
        let mut power = 0.0;
        for _ in 0..n {
            let z = randn_c(&mut rng);
            mean += z;
            power += z.norm_sq();
        }
        mean = mean.scale(1.0 / n as f64);
        power /= n as f64;
        assert!(mean.abs() < 0.02, "mean {mean:?}");
        assert!((power - 1.0).abs() < 0.03, "power {power}");
    }

    #[test]
    fn identity_channel_is_transparent() {
        let mut rng = StdRng::seed_from_u64(2);
        let ch = MimoChannel::identity(4);
        let x = vec![
            Cplx::new(1.0, 0.0),
            Cplx::new(0.0, 1.0),
            Cplx::new(-1.0, 0.0),
            Cplx::new(0.5, 0.5),
        ];
        let y = ch.apply(&x, &mut rng);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn snr_controls_noise_power() {
        let mut rng = StdRng::seed_from_u64(3);
        let measure = |snr_db: f64, rng: &mut StdRng| -> f64 {
            let ch = MimoChannel::rayleigh(2, 2, snr_db, rng);
            let x = vec![Cplx::ZERO; 2]; // zero signal → output is noise.
            let mut p = 0.0;
            let n = 5000;
            for _ in 0..n {
                for y in ch.apply(&x, rng) {
                    p += y.norm_sq();
                }
            }
            p / (2 * n) as f64
        };
        let loud = measure(0.0, &mut rng);
        let quiet = measure(20.0, &mut rng);
        // 20 dB → 100x less noise power.
        let ratio = loud / quiet;
        assert!(ratio > 60.0 && ratio < 160.0, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "rx >= tx")]
    fn undetermined_system_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = MimoChannel::rayleigh(2, 4, 10.0, &mut rng);
    }
}
