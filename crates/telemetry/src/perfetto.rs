//! Chrome trace-event (Perfetto-loadable) JSON export.
//!
//! Emits the JSON Object Format: `{"traceEvents": [...]}` with `M`
//! metadata events naming processes and tracks, `X` complete events for
//! duration spans, and `i` instants. Timestamps are microseconds; the
//! writer formats picoseconds with six fixed decimal places via integer
//! math, so output is byte-deterministic for a deterministic simulation.
//! Load the file in <https://ui.perfetto.dev> or `chrome://tracing`.

use crate::trace::{SpanKind, TraceSink};

/// Formats picoseconds as a fixed-point microsecond literal.
fn ps_as_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

impl TraceSink {
    /// Serializes the recorded trace as Chrome trace-event JSON. Returns
    /// an empty document (no events) for a disabled sink.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        let mut first = true;
        let mut push = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };
        self.with_buf(|buf| {
            for (pid, name) in buf.processes.iter().enumerate() {
                push(
                    format!(
                        "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"name\": \"process_name\", \
                         \"args\": {{\"name\": \"{}\"}}}}",
                        crate::json::escape(name)
                    ),
                    &mut out,
                );
            }
            for (tid, (pid, name)) in buf.tracks.iter().enumerate() {
                push(
                    format!(
                        "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
                         \"name\": \"thread_name\", \"args\": {{\"name\": \"{}\"}}}}",
                        crate::json::escape(name)
                    ),
                    &mut out,
                );
            }
            for span in &buf.spans {
                let args = if span.trace_id != 0 {
                    format!(", \"args\": {{\"txn\": \"{:#x}\"}}", span.trace_id)
                } else {
                    String::new()
                };
                let line = match span.kind {
                    SpanKind::Complete => format!(
                        "{{\"ph\": \"X\", \"pid\": {}, \"tid\": {}, \"ts\": {}, \"dur\": {}, \
                         \"cat\": \"{}\", \"name\": \"{}\"{args}}}",
                        span.pid,
                        span.tid,
                        ps_as_us(span.begin_ps),
                        ps_as_us(span.end_ps - span.begin_ps),
                        crate::json::escape(span.cat),
                        crate::json::escape(buf.labels.get(span.name.0 as usize).map_or("", |s| s)),
                    ),
                    SpanKind::Instant => format!(
                        "{{\"ph\": \"i\", \"pid\": {}, \"tid\": {}, \"ts\": {}, \"s\": \"t\", \
                         \"cat\": \"{}\", \"name\": \"{}\"{args}}}",
                        span.pid,
                        span.tid,
                        ps_as_us(span.begin_ps),
                        crate::json::escape(span.cat),
                        crate::json::escape(buf.labels.get(span.name.0 as usize).map_or("", |s| s)),
                    ),
                };
                push(line, &mut out);
            }
        });
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use fcc_sim::SimTime;

    use crate::json;
    use crate::trace::TraceCtx;

    use super::*;

    fn sample_sink() -> TraceSink {
        let sink = TraceSink::recording();
        sink.begin_process("scenario-a");
        let t = sink.track("fha1");
        t.span(
            "fha",
            "rtt-wr64B",
            SimTime::from_ns(10.0),
            SimTime::from_ns(1260.5),
            TraceCtx::new(0x0001_0000_0000_0002),
        );
        t.instant(
            "link",
            "link.retransmit",
            SimTime::from_ns(500.0),
            TraceCtx::NONE,
        );
        sink
    }

    #[test]
    fn fixed_point_microseconds() {
        assert_eq!(ps_as_us(0), "0.000000");
        assert_eq!(ps_as_us(1), "0.000001");
        assert_eq!(ps_as_us(1_250_500), "1.250500");
        assert_eq!(ps_as_us(3_000_000_000), "3000.000000");
    }

    #[test]
    fn export_has_chrome_trace_shape() {
        let json_text = sample_sink().to_chrome_json();
        let doc = json::parse(&json_text).expect("exporter writes valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("top-level traceEvents array");
        // 1 process_name + 1 thread_name + 2 spans.
        assert_eq!(events.len(), 4);
        for ev in events {
            let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph present");
            assert!(matches!(ph, "M" | "X" | "i"), "unknown phase {ph}");
            assert!(ev.get("pid").and_then(|p| p.as_u64()).is_some());
            assert!(ev.get("tid").and_then(|t| t.as_u64()).is_some());
            assert!(ev.get("name").and_then(|n| n.as_str()).is_some());
            match ph {
                "X" => {
                    assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some());
                    assert!(ev.get("dur").and_then(|d| d.as_f64()).is_some());
                    assert!(ev.get("cat").and_then(|c| c.as_str()).is_some());
                }
                "i" => {
                    assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some());
                    assert_eq!(ev.get("s").and_then(|s| s.as_str()), Some("t"));
                }
                _ => {
                    assert!(ev.get("args").and_then(|a| a.get("name")).is_some());
                }
            }
        }
        // The complete span carries its causal id and µs timestamps.
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("one X event");
        assert_eq!(
            x.get("args")
                .and_then(|a| a.get("txn"))
                .and_then(|t| t.as_str()),
            Some("0x1000000000002")
        );
        let ts = x.get("ts").and_then(|t| t.as_f64()).expect("ts");
        assert!((ts - 0.01).abs() < 1e-9, "10 ns = 0.01 µs, got {ts}");
    }

    #[test]
    fn export_is_deterministic() {
        let a = sample_sink().to_chrome_json();
        let b = sample_sink().to_chrome_json();
        assert_eq!(a, b);
    }

    #[test]
    fn disabled_sink_exports_empty_document() {
        let json_text = TraceSink::disabled().to_chrome_json();
        let doc = json::parse(&json_text).expect("valid");
        assert_eq!(
            doc.get("traceEvents")
                .and_then(|e| e.as_arr())
                .map(<[_]>::len),
            Some(0)
        );
    }
}
