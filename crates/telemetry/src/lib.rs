#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Observability for the FCC simulation stack: causal tracing, a labeled
//! metrics registry, and Chrome trace-event (Perfetto-loadable) export.
//!
//! The paper's §3 arguments are claims about *where time goes inside the
//! fabric* — serialization vs. credit-wait vs. switch arbitration vs.
//! device service. This crate provides the three pieces needed to attribute
//! latency per hop rather than only at the endpoints:
//!
//! * [`trace`] — a [`TraceSink`] collecting span records
//!   (begin/end in simulated picoseconds, category, track, labels). The
//!   default sink is a no-op that compiles down to an `Option` check, so
//!   instrumented components cost nothing when tracing is disabled.
//!   Causality is carried by [`TraceCtx`]: the
//!   fabric-unique transaction id (`(node << 48) | seq`, allocated by the
//!   FHA) doubles as the trace id, so every hop that sees a transaction or
//!   one of its data slots tags its span with the same id — no protocol
//!   struct grows a field.
//! * [`metrics`] — a [`MetricsRegistry`]
//!   aggregating the `fcc-sim` `Counter`/`Gauge`/`Histogram` primitives
//!   under hierarchical dotted names, with merge and JSON snapshot export.
//! * [`perfetto`] — a deterministic Chrome trace-event JSON writer; load
//!   the output in `ui.perfetto.dev` or `chrome://tracing`.
//! * [`report`] — parses an exported trace back and computes per-hop
//!   breakdowns, credit-wait congestion attribution, and RTT tail
//!   statistics (the `trace-report` binary's engine).
//! * [`slo`] — per-tenant SLO accounting for serving workloads: exact
//!   attainment counts plus replay-stable log-bucketed latency
//!   histograms (p50/p99/p999), mergeable across shards.
//! * [`json`] — the minimal hand-rolled JSON writer/parser both sides use
//!   (the build environment has no `serde_json`).

pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod report;
pub mod slo;
pub mod trace;

pub use metrics::{tenant_metric, MetricValue, MetricsRegistry};
pub use report::TraceData;
pub use slo::SloAccountant;
pub use trace::{
    record_deadlock, LabelId, SpanKind, SpanRecord, TraceCtx, TraceDump, TraceSink, Track,
};
