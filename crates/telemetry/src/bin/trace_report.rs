//! `trace-report` — analyze an exported fcc trace.
//!
//! Usage: `trace-report <trace.json> [--txn 0xID]`
//!
//! Prints per-category time totals, credit-wait congestion attribution,
//! RTT tail statistics per scenario, tail-inflation factors across
//! scenarios, the slowest transactions with a per-hop breakdown, and any
//! deadlock events — all recomputed from the trace file alone.

use std::io::Write;
use std::process::ExitCode;

use fcc_telemetry::TraceData;

/// Writes `text` to stdout; a closed pipe (`report | head`) is a clean
/// exit, not a panic.
fn emit(text: &str) -> ExitCode {
    let mut out = std::io::stdout().lock();
    match out.write_all(text.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cannot write report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut txn: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--txn" => {
                let Some(raw) = args.get(i + 1) else {
                    eprintln!("--txn needs a value");
                    return ExitCode::FAILURE;
                };
                match u64::from_str_radix(raw.trim_start_matches("0x"), 16) {
                    Ok(id) => txn = Some(id),
                    Err(e) => {
                        eprintln!("bad --txn value '{raw}': {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--help" | "-h" => {
                println!("usage: trace-report <trace.json> [--txn 0xID]");
                return ExitCode::SUCCESS;
            }
            p if path.is_none() => {
                path = Some(p);
                i += 1;
            }
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace-report <trace.json> [--txn 0xID]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let data = match TraceData::from_json(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(id) = txn {
        // FHA txn ids restart per scenario, so scope each breakdown to
        // one process rather than interleaving unrelated accesses.
        let pids = data.processes_of(id);
        if pids.is_empty() {
            eprintln!("no spans for txn {id:#x}");
            return ExitCode::FAILURE;
        }
        let mut text = String::new();
        for pid in pids {
            text.push_str(&format!(
                "-- per-hop breakdown of txn {id:#x} in {} --\n",
                data.process_name(pid)
            ));
            text.push_str(&format!(
                "{:>12} {:>10} {:<24} {:<10} {}\n",
                "ts (ns)", "dur (ns)", "component", "category", "span"
            ));
            for hop in data.hop_breakdown(id, Some(pid)) {
                text.push_str(&format!(
                    "{:>12.1} {:>10.1} {:<24} {:<10} {}\n",
                    hop.ts_ps as f64 / 1e3,
                    hop.dur_ps as f64 / 1e3,
                    data.track_name(hop.pid, hop.tid),
                    hop.cat,
                    hop.name
                ));
            }
            text.push('\n');
        }
        emit(&text)
    } else {
        emit(&data.render_report())
    }
}
