//! A labeled metrics registry over the `fcc-sim` stats primitives.
//!
//! Components across the workspace already keep `Counter`s, `Gauge`s and
//! `Histogram`s; the registry collects snapshots of them under
//! hierarchical dotted names (`e3b.bulk.fs0.forwarded`), merges repeated
//! recordings (counters sum, histograms merge, gauges keep the peak), and
//! exports a deterministic JSON snapshot.

use std::collections::BTreeMap;

use fcc_sim::{Counter, Gauge, Histogram, SimTime, Summary};

use crate::json::escape;

/// One aggregated metric.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// A monotonic count (repeated recordings sum).
    Counter(u64),
    /// A sampled level (repeated recordings keep the latest level and the
    /// overall peak).
    Gauge {
        /// Last recorded level.
        level: f64,
        /// Highest level across recordings.
        peak: f64,
        /// Last recorded time-weighted mean.
        mean: f64,
    },
    /// A distribution (repeated recordings merge).
    Histogram(Histogram),
}

/// A named collection of aggregated metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

/// Builds the canonical dotted metric name for a per-tenant series:
/// `{prefix}tenant{NNN}.{name}`. Tenant ids are zero-padded to three
/// digits so lexicographic registry order matches numeric tenant order
/// in exports.
pub fn tenant_metric(prefix: &str, tenant: u32, name: &str) -> String {
    format!("{prefix}tenant{tenant:03}.{name}")
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the named counter (creating it at zero).
    pub fn add_counter(&mut self, name: &str, n: u64) {
        match self.metrics.get_mut(name) {
            Some(MetricValue::Counter(v)) => *v += n,
            Some(_) => {} // type clash: first recording wins the type.
            None => {
                self.metrics
                    .insert(name.to_string(), MetricValue::Counter(n));
            }
        }
    }

    /// Records a [`Counter`] snapshot under `name`.
    pub fn record_counter(&mut self, name: &str, c: &Counter) {
        self.add_counter(name, c.get());
    }

    /// Records a [`Gauge`] snapshot under `name` (`now` resolves the
    /// time-weighted mean).
    pub fn record_gauge(&mut self, name: &str, g: &Gauge, now: SimTime) {
        let (level, peak, mean) = (g.level(), g.peak(), g.mean(now));
        match self.metrics.get_mut(name) {
            Some(MetricValue::Gauge {
                level: l,
                peak: p,
                mean: m,
            }) => {
                *l = level;
                *p = p.max(peak);
                *m = mean;
            }
            Some(_) => {}
            None => {
                self.metrics
                    .insert(name.to_string(), MetricValue::Gauge { level, peak, mean });
            }
        }
    }

    /// Merges a [`Histogram`] snapshot into `name`.
    pub fn record_histogram(&mut self, name: &str, h: &Histogram) {
        match self.metrics.get_mut(name) {
            Some(MetricValue::Histogram(existing)) => existing.merge(h),
            Some(_) => {}
            None => {
                self.metrics
                    .insert(name.to_string(), MetricValue::Histogram(h.clone()));
            }
        }
    }

    /// Merges another registry into this one (counters sum, histograms
    /// merge, gauges keep the peak).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.metrics {
            match value {
                MetricValue::Counter(n) => self.add_counter(name, *n),
                MetricValue::Gauge { level, peak, mean } => match self.metrics.get_mut(name) {
                    Some(MetricValue::Gauge {
                        level: l,
                        peak: p,
                        mean: m,
                    }) => {
                        *l = *level;
                        *p = p.max(*peak);
                        *m = *mean;
                    }
                    Some(_) => {}
                    None => {
                        self.metrics.insert(name.clone(), value.clone());
                    }
                },
                MetricValue::Histogram(h) => self.record_histogram(name, h),
            }
        }
    }

    /// The named counter's value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The named histogram's digest, if present.
    pub fn histogram_summary(&self, name: &str) -> Option<Summary> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.summary()),
            _ => None,
        }
    }

    /// Iterates `(name, value)` pairs in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics recorded.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// A deterministic JSON snapshot: an object keyed by metric name.
    /// Counters render as numbers, gauges as `{level, peak, mean}`,
    /// histograms as their digest (values in picoseconds).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (name, value) in &self.metrics {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("  \"");
            out.push_str(&escape(name));
            out.push_str("\": ");
            match value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge { level, peak, mean } => {
                    out.push_str(&format!(
                        "{{\"level\": {}, \"peak\": {}, \"mean\": {}}}",
                        fmt_f64(*level),
                        fmt_f64(*peak),
                        fmt_f64(*mean)
                    ));
                }
                MetricValue::Histogram(h) => {
                    let s = h.summary();
                    out.push_str(&format!(
                        "{{\"count\": {}, \"mean\": {}, \"min\": {}, \"p50\": {}, \
                         \"p90\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
                        s.count,
                        fmt_f64(s.mean),
                        s.min,
                        s.p50,
                        s.p90,
                        s.p99,
                        s.p999,
                        s.max
                    ));
                }
            }
        }
        out.push_str("\n}\n");
        out
    }
}

/// Formats an `f64` deterministically for JSON (fixed 3 decimal places;
/// non-finite values degrade to 0 since JSON has no NaN/Inf).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_recordings() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("a.b", 3);
        reg.add_counter("a.b", 4);
        assert_eq!(reg.counter("a.b"), Some(7));
    }

    #[test]
    fn tenant_metric_names_sort_numerically() {
        assert_eq!(tenant_metric("e12.", 7, "lat"), "e12.tenant007.lat");
        assert!(tenant_metric("e12.", 9, "lat") < tenant_metric("e12.", 10, "lat"));
    }

    #[test]
    fn histogram_snapshots_merge() {
        let mut h1 = Histogram::new();
        h1.record(100);
        h1.record(200);
        let mut h2 = Histogram::new();
        h2.record(1000);
        let mut reg = MetricsRegistry::new();
        reg.record_histogram("lat", &h1);
        reg.record_histogram("lat", &h2);
        let s = reg.histogram_summary("lat").expect("present");
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 100);
        assert!(s.max >= 1000);
    }

    #[test]
    fn registry_merge_combines_all_kinds() {
        let mut a = MetricsRegistry::new();
        a.add_counter("c", 1);
        let mut h = Histogram::new();
        h.record(50);
        a.record_histogram("h", &h);
        let mut g = Gauge::new();
        g.set(SimTime::ZERO, 2.0);
        g.set(SimTime::from_ns(10.0), 1.0);
        a.record_gauge("g", &g, SimTime::from_ns(10.0));

        let mut b = MetricsRegistry::new();
        b.add_counter("c", 10);
        let mut h2 = Histogram::new();
        h2.record(60);
        b.record_histogram("h", &h2);

        a.merge(&b);
        assert_eq!(a.counter("c"), Some(11));
        assert_eq!(a.histogram_summary("h").map(|s| s.count), Some(2));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn json_snapshot_is_deterministic_and_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("z.last", 1);
        reg.add_counter("a.first", 2);
        let json = reg.to_json();
        assert_eq!(json, reg.to_json());
        let a = json.find("a.first").expect("a present");
        let z = json.find("z.last").expect("z present");
        assert!(a < z, "BTreeMap ordering");
        // Round-trips through our own parser.
        let parsed = crate::json::parse(&json).expect("valid json");
        assert_eq!(parsed.get("a.first").and_then(|v| v.as_u64()), Some(2));
    }
}
