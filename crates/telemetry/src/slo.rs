//! Per-tenant SLO accounting for serving-tier experiments (E13).
//!
//! An [`SloAccountant`] keeps one exact log-bucketed latency
//! [`Histogram`] per tenant plus an *exact* count of requests that met
//! the SLO target. The split matters for determinism and fidelity:
//!
//! * **Attainment is exact.** Every latency is compared against the
//!   target *before* it is bucketed, so `attainment()` is a precise
//!   ratio, not a read-out of a quantized distribution.
//! * **Quantiles are replay-stable.** The histogram is the `fcc-sim`
//!   log-linear design — integer counts in fixed buckets, no sampling,
//!   no reservoir, no randomized sketch. Merging per-shard accountants
//!   in a fixed (domain) order is integer addition, so p50/p99/p999 are
//!   byte-identical across `--jobs`/`--shards` decompositions; the only
//!   error is the fixed ≤1.6% bucket resolution, identical on every
//!   run.

use std::collections::BTreeMap;

use fcc_sim::{Histogram, SimTime, Summary};

use crate::metrics::tenant_metric;
use crate::MetricsRegistry;

/// Per-tenant latency bookkeeping for one SLO target.
#[derive(Debug, Clone)]
pub struct SloAccountant {
    target_ps: u64,
    tenants: BTreeMap<u32, TenantSlo>,
}

#[derive(Debug, Clone, Default)]
struct TenantSlo {
    hist: Histogram,
    within: u64,
}

impl SloAccountant {
    /// Creates an accountant holding every tenant to `target`.
    pub fn new(target: SimTime) -> Self {
        SloAccountant {
            target_ps: target.as_ps(),
            tenants: BTreeMap::new(),
        }
    }

    /// The SLO target.
    pub fn target(&self) -> SimTime {
        SimTime::from_ps(self.target_ps)
    }

    /// Records one request latency for `tenant`.
    pub fn record(&mut self, tenant: u32, latency: SimTime) {
        let slot = self.tenants.entry(tenant).or_default();
        // Exact comparison first; bucketing below only affects quantiles.
        if latency.as_ps() <= self.target_ps {
            slot.within += 1;
        }
        slot.hist.record_time(latency);
    }

    /// Fraction of `tenant`'s requests that met the target (1.0 when the
    /// tenant recorded nothing — an idle tenant has not missed its SLO).
    pub fn attainment(&self, tenant: u32) -> f64 {
        match self.tenants.get(&tenant) {
            Some(t) if t.hist.count() > 0 => t.within as f64 / t.hist.count() as f64,
            _ => 1.0,
        }
    }

    /// Total requests recorded for `tenant`.
    pub fn count(&self, tenant: u32) -> u64 {
        self.tenants.get(&tenant).map_or(0, |t| t.hist.count())
    }

    /// The latency digest for `tenant`, if it recorded anything.
    pub fn summary(&self, tenant: u32) -> Option<Summary> {
        self.tenants
            .get(&tenant)
            .filter(|t| t.hist.count() > 0)
            .map(|t| t.hist.summary())
    }

    /// Tenant ids seen, ascending.
    pub fn tenants(&self) -> impl Iterator<Item = u32> + '_ {
        self.tenants.keys().copied()
    }

    /// Folds another accountant in (per-tenant histogram merge + exact
    /// within-count addition). Deterministic: merge shards in a fixed
    /// order and the result is independent of the decomposition.
    pub fn merge(&mut self, other: &SloAccountant) {
        debug_assert_eq!(self.target_ps, other.target_ps, "mismatched SLO targets");
        for (&tenant, slot) in &other.tenants {
            let mine = self.tenants.entry(tenant).or_default();
            mine.hist.merge(&slot.hist);
            mine.within += slot.within;
        }
    }

    /// All tenants' latencies merged into one distribution.
    pub fn merged(&self) -> Histogram {
        let mut all = Histogram::new();
        for slot in self.tenants.values() {
            all.merge(&slot.hist);
        }
        all
    }

    /// Exact attainment across every tenant (1.0 when empty).
    pub fn overall_attainment(&self) -> f64 {
        let (mut within, mut total) = (0u64, 0u64);
        for slot in self.tenants.values() {
            within += slot.within;
            total += slot.hist.count();
        }
        if total == 0 {
            1.0
        } else {
            within as f64 / total as f64
        }
    }

    /// Exports per-tenant series into `reg` under
    /// `{prefix}tenant{NNN}.{latency_ps,slo_within,slo_total}`.
    pub fn export(&self, prefix: &str, reg: &mut MetricsRegistry) {
        for (&tenant, slot) in &self.tenants {
            reg.record_histogram(&tenant_metric(prefix, tenant, "latency_ps"), &slot.hist);
            reg.add_counter(&tenant_metric(prefix, tenant, "slo_within"), slot.within);
            reg.add_counter(
                &tenant_metric(prefix, tenant, "slo_total"),
                slot.hist.count(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: f64) -> SimTime {
        SimTime::from_ns(v)
    }

    #[test]
    fn attainment_is_exact_not_bucketed() {
        let mut a = SloAccountant::new(ns(1000.0));
        // 1000ns and 1001ns land in the same log bucket, but attainment
        // still tells them apart because the comparison precedes bucketing.
        a.record(3, ns(1000.0));
        a.record(3, ns(1001.0));
        assert!((a.attainment(3) - 0.5).abs() < 1e-12);
        assert_eq!(a.count(3), 2);
    }

    #[test]
    fn idle_tenant_attains_trivially() {
        let a = SloAccountant::new(ns(500.0));
        assert!((a.attainment(9) - 1.0).abs() < 1e-12);
        assert!(a.summary(9).is_none());
    }

    #[test]
    fn merge_matches_single_accountant() {
        let mut whole = SloAccountant::new(ns(800.0));
        let mut left = SloAccountant::new(ns(800.0));
        let mut right = SloAccountant::new(ns(800.0));
        for i in 0..100u64 {
            let lat = ns(100.0 + 17.0 * i as f64);
            let tenant = (i % 4) as u32;
            whole.record(tenant, lat);
            if i % 2 == 0 {
                left.record(tenant, lat);
            } else {
                right.record(tenant, lat);
            }
        }
        left.merge(&right);
        for t in 0..4 {
            assert_eq!(left.count(t), whole.count(t));
            assert!((left.attainment(t) - whole.attainment(t)).abs() < 1e-12);
            assert_eq!(
                left.summary(t).map(|s| s.p99),
                whole.summary(t).map(|s| s.p99)
            );
        }
        assert_eq!(left.merged().summary().p999, whole.merged().summary().p999);
    }

    #[test]
    fn export_writes_per_tenant_series() {
        let mut a = SloAccountant::new(ns(1000.0));
        a.record(7, ns(200.0));
        a.record(7, ns(2000.0));
        let mut reg = MetricsRegistry::new();
        a.export("e13.", &mut reg);
        assert_eq!(reg.counter("e13.tenant007.slo_within"), Some(1));
        assert_eq!(reg.counter("e13.tenant007.slo_total"), Some(2));
        assert_eq!(
            reg.histogram_summary("e13.tenant007.latency_ps")
                .map(|s| s.count),
            Some(2)
        );
    }

    #[test]
    fn overall_attainment_pools_tenants() {
        let mut a = SloAccountant::new(ns(1000.0));
        a.record(0, ns(100.0));
        a.record(1, ns(5000.0));
        a.record(1, ns(100.0));
        assert!((a.overall_attainment() - 2.0 / 3.0).abs() < 1e-12);
    }
}
