//! A minimal JSON writer and parser.
//!
//! The build environment vendors API-stubs only (no `serde_json`), so the
//! trace/metrics exporters hand-write their JSON and `trace-report` reads
//! it back with this recursive-descent parser. The subset is exactly what
//! the exporters emit: objects, arrays, strings with standard escapes,
//! finite numbers, booleans, and null.

/// Escapes a string for embedding in a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Objects preserve key order (lookup is linear —
/// the documents here are small and mostly arrays).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload rounded to `u64`, if this is a non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 => Some(n.round() as u64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Obj(members)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Arr(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number '{s}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes() {
        let original = "a\"b\\c\nd\te\u{1}f";
        let json = format!("\"{}\"", escape(original));
        let parsed = parse(&json).expect("valid");
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"traceEvents":[{"ph":"X","ts":1.5,"args":{"txn":"0x10"}},{"ph":"i","ok":true,"n":null}],"k":-2e3}"#;
        let v = parse(doc).expect("valid");
        let events = v.get("traceEvents").and_then(|e| e.as_arr()).expect("arr");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(|p| p.as_str()), Some("X"));
        assert_eq!(events[0].get("ts").and_then(|t| t.as_f64()), Some(1.5));
        assert_eq!(
            events[0]
                .get("args")
                .and_then(|a| a.get("txn"))
                .and_then(|t| t.as_str()),
            Some("0x10")
        );
        assert_eq!(events[1].get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(events[1].get("n"), Some(&JsonValue::Null));
        assert_eq!(v.get("k").and_then(|k| k.as_f64()), Some(-2000.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_unicode_strings() {
        let v = parse("\"héllo \\u00e9\"").expect("valid");
        assert_eq!(v.as_str(), Some("héllo é"));
    }
}
