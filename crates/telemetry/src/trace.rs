//! The trace core: spans, tracks, and the shared [`TraceSink`].
//!
//! A sink is either *disabled* (the default — every emit is an `Option`
//! check and an immediate return) or *recording* (an `Arc<Mutex<…>>`
//! buffer shared by every [`Track`] handle cloned from it). Each engine
//! dispatches on one thread and a sink is only shared within one engine's
//! component graph, so the mutex is uncontended; it exists so sinks (and
//! the components holding [`Track`] handles) are `Send` and whole engines
//! can move onto the sharded executor's worker threads. Emit methods take
//! `&self`, letting components hold a handle without threading `&mut`
//! access through the engine.
//!
//! Spans are grouped two ways for display: by *process* (one per
//! experiment scenario, e.g. `e3b-alone` vs `e3b-bulk`) and by *track*
//! (one per component, e.g. `fha2` or `fs0.p1`). Trace ids tie the spans
//! of one transaction together across tracks.

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use fcc_sim::{DeadlockReport, SimTime};

use crate::metrics::MetricsRegistry;

/// Causal trace context carried alongside a transaction.
///
/// The id is the fabric-unique transaction id (`(node << 48) | seq`);
/// `0` marks untracked work (control flits, background chatter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceCtx {
    /// The trace id; `0` when untracked.
    pub id: u64,
}

impl TraceCtx {
    /// The untracked context.
    pub const NONE: TraceCtx = TraceCtx { id: 0 };

    /// Wraps a transaction id as a trace context.
    pub fn new(id: u64) -> Self {
        TraceCtx { id }
    }

    /// Whether this context tracks a real transaction.
    pub fn is_tracked(self) -> bool {
        self.id != 0
    }
}

/// How a [`SpanRecord`] renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A duration (`ph: "X"` in the Chrome trace format).
    Complete,
    /// A point event (`ph: "i"`).
    Instant,
}

/// An interned span label: an index into the sink's label table.
///
/// Emitting a span stores this `u32` instead of cloning the label
/// `String`; the human-readable text is resolved at export time via
/// [`TraceSink::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelId(pub u32);

/// One recorded span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Process group (scenario) the span belongs to.
    pub pid: u32,
    /// Track (component) the span belongs to.
    pub tid: u32,
    /// Category (`"credit"`, `"link"`, `"switch"`, `"fha"`, …).
    pub cat: &'static str,
    /// Interned human-readable label; resolve with [`TraceSink::label`].
    pub name: LabelId,
    /// Begin time in simulated picoseconds.
    pub begin_ps: u64,
    /// End time in simulated picoseconds (equals `begin_ps` for instants).
    pub end_ps: u64,
    /// Duration vs. point event.
    pub kind: SpanKind,
    /// The causal trace id (`0` = untracked).
    pub trace_id: u64,
}

#[derive(Default)]
pub(crate) struct TraceBuf {
    /// Process names; pid = index.
    pub(crate) processes: Vec<String>,
    /// Track registry: tid = index, value = (pid, track name). Tids are
    /// global (not per process) so a `Track` handle is a single integer.
    pub(crate) tracks: Vec<(u32, String)>,
    pub(crate) spans: Vec<SpanRecord>,
    /// Label table; `LabelId` = index. Labels are interned in first-use
    /// order, so the table's order is itself deterministic.
    pub(crate) labels: Vec<String>,
    /// Reverse map for interning (label text → id).
    label_index: std::collections::HashMap<String, u32>,
    /// Index of the last span pushed per `(track, category)`, for
    /// coalesced emission. Keyed by category so alternating emissions on
    /// one track (a credit wait between two serialize slots) don't break
    /// a burst's merge chain.
    last_by_tid: std::collections::HashMap<(u32, &'static str), usize>,
}

impl TraceBuf {
    fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.label_index.get(name) {
            return LabelId(id);
        }
        let id = self.labels.len() as u32;
        self.labels.push(name.to_string());
        self.label_index.insert(name.to_string(), id);
        LabelId(id)
    }
}

/// A shared trace buffer handle. Cloning is cheap (an `Arc` bump); all
/// clones append to the same buffer.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Mutex<TraceBuf>>>,
}

/// Locks a trace buffer, recovering from poisoning: the buffer holds no
/// invariants a panicked emitter could break (appends only), so the data
/// recorded before the panic is still worth exporting.
fn lock(inner: &Mutex<TraceBuf>) -> MutexGuard<'_, TraceBuf> {
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TraceSink({})",
            if self.inner.is_some() {
                "recording"
            } else {
                "disabled"
            }
        )
    }
}

impl TraceSink {
    /// The no-op sink: every emit returns immediately.
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// A recording sink with an empty buffer.
    pub fn recording() -> Self {
        TraceSink {
            inner: Some(Arc::new(Mutex::new(TraceBuf::default()))),
        }
    }

    /// Whether spans are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a new process group (scenario); tracks created afterwards
    /// belong to it. Returns the pid (0 on a disabled sink).
    pub fn begin_process(&self, name: &str) -> u32 {
        let Some(inner) = &self.inner else {
            return 0;
        };
        let mut buf = lock(inner);
        buf.processes.push(name.to_string());
        (buf.processes.len() - 1) as u32
    }

    /// Creates (or reuses) the named track under the current process.
    /// On a disabled sink this returns a no-op [`Track`].
    pub fn track(&self, name: &str) -> Track {
        let Some(inner) = &self.inner else {
            return Track::default();
        };
        let mut buf = lock(inner);
        if buf.processes.is_empty() {
            buf.processes.push("sim".to_string());
        }
        let pid = (buf.processes.len() - 1) as u32;
        if let Some(tid) = buf.tracks.iter().position(|(p, n)| *p == pid && n == name) {
            return Track {
                sink: self.clone(),
                tid: tid as u32,
            };
        }
        buf.tracks.push((pid, name.to_string()));
        Track {
            sink: self.clone(),
            tid: (buf.tracks.len() - 1) as u32,
        }
    }

    /// Number of spans recorded so far (0 on a disabled sink).
    pub fn span_count(&self) -> usize {
        self.with_buf(|b| b.spans.len()).unwrap_or(0)
    }

    /// A copy of every recorded span, in emission order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.with_buf(|b| b.spans.clone()).unwrap_or_default()
    }

    /// Resolves an interned label to its text (empty on a disabled sink
    /// or an unknown id).
    pub fn label(&self, id: LabelId) -> String {
        self.with_buf(|b| b.labels.get(id.0 as usize).cloned())
            .flatten()
            .unwrap_or_default()
    }

    /// Interns a span label, returning its id. Hot emitters that build a
    /// label with `format!` may intern it once and reuse the id.
    pub(crate) fn intern(&self, name: &str) -> LabelId {
        self.inner
            .as_ref()
            .map(|inner| lock(inner).intern(name))
            .unwrap_or(LabelId(0))
    }

    /// Consumes this handle and extracts the recorded buffer as a
    /// [`TraceDump`] that can cross threads. Returns `None` on a disabled
    /// sink. The caller must have dropped every other handle (tracks,
    /// clones) first; otherwise the buffer contents are cloned.
    pub fn into_dump(self) -> Option<TraceDump> {
        let inner = self.inner?;
        let buf = match Arc::try_unwrap(inner) {
            Ok(mutex) => mutex.into_inner().unwrap_or_else(|e| e.into_inner()),
            // A stray Track still holds the buffer: fall back to cloning.
            Err(arc) => {
                let b = lock(&arc);
                TraceBuf {
                    processes: b.processes.clone(),
                    tracks: b.tracks.clone(),
                    spans: b.spans.clone(),
                    labels: b.labels.clone(),
                    label_index: Default::default(),
                    last_by_tid: Default::default(),
                }
            }
        };
        Some(TraceDump {
            processes: buf.processes,
            tracks: buf.tracks,
            spans: buf.spans,
            labels: buf.labels,
        })
    }

    /// Appends a [`TraceDump`] to this sink, renumbering its pids, tids,
    /// and label ids after the sink's own. Absorbing per-scenario dumps
    /// in scenario order reproduces exactly the buffer a single shared
    /// sink would have recorded serially — the determinism hinge of the
    /// parallel experiment harness. No-op on a disabled sink.
    pub fn absorb(&self, dump: TraceDump) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut buf = lock(inner);
        let pid_off = buf.processes.len() as u32;
        buf.processes.extend(dump.processes);
        let tid_off = buf.tracks.len() as u32;
        buf.tracks
            .extend(dump.tracks.into_iter().map(|(p, n)| (p + pid_off, n)));
        // Interning the dump's labels in table order reproduces the
        // first-use order a serial run would have produced.
        let label_map: Vec<LabelId> = dump.labels.iter().map(|l| buf.intern(l)).collect();
        buf.spans.extend(dump.spans.into_iter().map(|mut s| {
            s.pid += pid_off;
            s.tid += tid_off;
            s.name = label_map[s.name.0 as usize];
            s
        }));
    }

    pub(crate) fn with_buf<R>(&self, f: impl FnOnce(&TraceBuf) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| f(&lock(inner)))
    }

    fn push(&self, span: SpanRecord) {
        if let Some(inner) = &self.inner {
            let mut buf = lock(inner);
            let key = (span.tid, span.cat);
            buf.spans.push(span);
            let idx = buf.spans.len() - 1;
            buf.last_by_tid.insert(key, idx);
        }
    }

    /// Pushes a complete span, coalescing it into the track's previous
    /// span when both describe the same work (same name, category, and
    /// trace id) and they touch (`span.begin <= prev.end`). Per-flit
    /// emitters (wire serialization, credit waits) use this so a bulk
    /// transfer's burst of near-identical micro-spans collapses into one
    /// span per transaction instead of one per flit.
    fn push_merged(&self, span: SpanRecord) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut buf = lock(inner);
        if let Some(&idx) = buf.last_by_tid.get(&(span.tid, span.cat)) {
            let prev = &mut buf.spans[idx];
            if prev.kind == SpanKind::Complete
                && prev.trace_id == span.trace_id
                && prev.name == span.name
                && span.begin_ps >= prev.begin_ps
                && span.begin_ps <= prev.end_ps
            {
                prev.end_ps = prev.end_ps.max(span.end_ps);
                return;
            }
        }
        let key = (span.tid, span.cat);
        buf.spans.push(span);
        let idx = buf.spans.len() - 1;
        buf.last_by_tid.insert(key, idx);
    }
}

/// An owned, thread-transferable snapshot of a recording sink's buffer.
///
/// Produced by [`TraceSink::into_dump`] on a worker thread and re-attached
/// to a main-thread sink with [`TraceSink::absorb`]. All ids (pids, tids,
/// label ids) are local to the dump; `absorb` renumbers them.
#[derive(Debug)]
pub struct TraceDump {
    /// Process names; dump-local pid = index.
    pub processes: Vec<String>,
    /// Track registry (dump-local pid, name); dump-local tid = index.
    pub tracks: Vec<(u32, String)>,
    /// Recorded spans with dump-local ids.
    pub spans: Vec<SpanRecord>,
    /// Label table; dump-local `LabelId` = index.
    pub labels: Vec<String>,
}

/// A component's handle onto one track of a [`TraceSink`].
///
/// The default value is permanently disabled, so components can hold a
/// `Track` field unconditionally and only pay an `Option` check per emit
/// until tracing is wired up.
#[derive(Clone, Default)]
pub struct Track {
    sink: TraceSink,
    tid: u32,
}

impl fmt::Debug for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Track(tid={}, {:?})", self.tid, self.sink)
    }
}

impl Track {
    /// Whether emits on this track are collected. Check before building
    /// span names that would allocate.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_enabled()
    }

    fn pid(&self) -> u32 {
        self.sink
            .with_buf(|b| b.tracks.get(self.tid as usize).map(|(p, _)| *p))
            .flatten()
            .unwrap_or(0)
    }

    /// Records a duration span `[begin, end]`.
    pub fn span(&self, cat: &'static str, name: &str, begin: SimTime, end: SimTime, ctx: TraceCtx) {
        if !self.is_enabled() {
            return;
        }
        self.sink.push(SpanRecord {
            pid: self.pid(),
            tid: self.tid,
            cat,
            name: self.sink.intern(name),
            begin_ps: begin.as_ps(),
            end_ps: end.as_ps().max(begin.as_ps()),
            kind: SpanKind::Complete,
            trace_id: ctx.id,
        });
    }

    /// Records a duration span, coalescing it with the immediately
    /// preceding span on this track when both have the same name,
    /// category, and trace id and overlap or touch in time. Use for
    /// per-flit emissions where a burst means one logical occupancy.
    pub fn span_merged(
        &self,
        cat: &'static str,
        name: &str,
        begin: SimTime,
        end: SimTime,
        ctx: TraceCtx,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.sink.push_merged(SpanRecord {
            pid: self.pid(),
            tid: self.tid,
            cat,
            name: self.sink.intern(name),
            begin_ps: begin.as_ps(),
            end_ps: end.as_ps().max(begin.as_ps()),
            kind: SpanKind::Complete,
            trace_id: ctx.id,
        });
    }

    /// [`Track::span_merged`] for waits: degenerate spans (`end <=
    /// begin`) are dropped instead of recorded.
    pub fn span_nonzero_merged(
        &self,
        cat: &'static str,
        name: &str,
        begin: SimTime,
        end: SimTime,
        ctx: TraceCtx,
    ) {
        if end > begin {
            self.span_merged(cat, name, begin, end, ctx);
        }
    }

    /// Records a duration span only when it is non-degenerate
    /// (`end > begin`); zero-length waits stay out of the trace.
    pub fn span_nonzero(
        &self,
        cat: &'static str,
        name: &str,
        begin: SimTime,
        end: SimTime,
        ctx: TraceCtx,
    ) {
        if end > begin {
            self.span(cat, name, begin, end, ctx);
        }
    }

    /// Records a point event.
    pub fn instant(&self, cat: &'static str, name: &str, at: SimTime, ctx: TraceCtx) {
        if !self.is_enabled() {
            return;
        }
        self.sink.push(SpanRecord {
            pid: self.pid(),
            tid: self.tid,
            cat,
            name: self.sink.intern(name),
            begin_ps: at.as_ps(),
            end_ps: at.as_ps(),
            kind: SpanKind::Instant,
            trace_id: ctx.id,
        });
    }
}

/// Lands a [`DeadlockReport`] in both observability streams: one instant
/// event per stuck component (plus one per wait-for cycle) on a dedicated
/// `deadlock` track, and counters in the metrics registry.
///
/// `Engine::deadlock_report` only *returns* its findings; harnesses that
/// export traces must call this so a wedged run is visible in the trace
/// file itself, not just on stderr.
pub fn record_deadlock(
    sink: &TraceSink,
    metrics: &mut MetricsRegistry,
    report: &DeadlockReport,
    now: SimTime,
) {
    let track = sink.track("deadlock");
    for s in &report.stuck {
        let name = match &s.waiting_on {
            Some(target) => format!("deadlock: {} [{}] waiting on {target}", s.component, s.what),
            None => format!("deadlock: {} [{}]", s.component, s.what),
        };
        track.instant("deadlock", &name, now, TraceCtx::NONE);
    }
    for cycle in &report.cycles {
        track.instant(
            "deadlock",
            &format!("wait-for cycle: {}", cycle.join(" -> ")),
            now,
            TraceCtx::NONE,
        );
    }
    metrics.add_counter("sim.deadlock.stuck_components", report.stuck.len() as u64);
    metrics.add_counter("sim.deadlock.cycles", report.cycles.len() as u64);
}

#[cfg(test)]
mod tests {
    use fcc_sim::StuckComponent;

    use super::*;

    #[test]
    fn disabled_sink_collects_nothing() {
        let sink = TraceSink::disabled();
        let track = sink.track("t");
        assert!(!track.is_enabled());
        track.span(
            "cat",
            "name",
            SimTime::ZERO,
            SimTime::from_ns(5.0),
            TraceCtx::new(1),
        );
        track.instant("cat", "p", SimTime::ZERO, TraceCtx::NONE);
        assert_eq!(sink.span_count(), 0);
        assert!(sink.spans().is_empty());
    }

    #[test]
    fn default_track_is_disabled() {
        let track = Track::default();
        assert!(!track.is_enabled());
        track.span(
            "c",
            "n",
            SimTime::ZERO,
            SimTime::from_ns(1.0),
            TraceCtx::NONE,
        );
    }

    #[test]
    fn spans_nest_and_interleave_across_tracks() {
        let sink = TraceSink::recording();
        let outer = sink.track("component-a");
        let inner = sink.track("component-b");
        let id = TraceCtx::new(0x1_0000_0000_0001);
        // Outer covers [0, 100]; inner child covers [20, 60] on another
        // track — the classic per-hop nesting an RTT span contains.
        outer.span("fha", "rtt", SimTime::ZERO, SimTime::from_ns(100.0), id);
        inner.span(
            "device",
            "service",
            SimTime::from_ns(20.0),
            SimTime::from_ns(60.0),
            id,
        );
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].tid, 0);
        assert_eq!(spans[1].tid, 1);
        assert_eq!(spans[0].trace_id, spans[1].trace_id);
        // The child nests strictly inside the parent.
        assert!(spans[1].begin_ps >= spans[0].begin_ps);
        assert!(spans[1].end_ps <= spans[0].end_ps);
    }

    #[test]
    fn track_is_reused_by_name_within_a_process() {
        let sink = TraceSink::recording();
        let a = sink.track("x");
        let b = sink.track("x");
        a.instant("c", "1", SimTime::ZERO, TraceCtx::NONE);
        b.instant("c", "2", SimTime::ZERO, TraceCtx::NONE);
        let spans = sink.spans();
        assert_eq!(spans[0].tid, spans[1].tid);
    }

    #[test]
    fn processes_partition_tracks() {
        let sink = TraceSink::recording();
        let p0 = sink.begin_process("alone");
        let t0 = sink.track("fha1");
        let p1 = sink.begin_process("bulk");
        let t1 = sink.track("fha1");
        assert_ne!(p0, p1);
        t0.instant("c", "a", SimTime::ZERO, TraceCtx::NONE);
        t1.instant("c", "b", SimTime::ZERO, TraceCtx::NONE);
        let spans = sink.spans();
        assert_eq!(spans[0].pid, p0);
        assert_eq!(spans[1].pid, p1);
        assert_ne!(spans[0].tid, spans[1].tid, "same name, distinct process");
    }

    #[test]
    fn span_merged_coalesces_flit_bursts() {
        let sink = TraceSink::recording();
        let t = sink.track("port");
        let id = TraceCtx::new(7);
        // Three contiguous serialize micro-spans of one transaction.
        t.span_merged(
            "link",
            "link.serialize",
            SimTime::ZERO,
            SimTime::from_ns(2.0),
            id,
        );
        t.span_merged(
            "link",
            "link.serialize",
            SimTime::from_ns(2.0),
            SimTime::from_ns(4.0),
            id,
        );
        t.span_merged(
            "link",
            "link.serialize",
            SimTime::from_ns(4.0),
            SimTime::from_ns(6.0),
            id,
        );
        // A different transaction must NOT merge, even when contiguous.
        t.span_merged(
            "link",
            "link.serialize",
            SimTime::from_ns(6.0),
            SimTime::from_ns(8.0),
            TraceCtx::new(8),
        );
        // A gap on the wire must not merge either.
        t.span_merged(
            "link",
            "link.serialize",
            SimTime::from_ns(50.0),
            SimTime::from_ns(52.0),
            TraceCtx::new(8),
        );
        let spans = sink.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].begin_ps, 0);
        assert_eq!(spans[0].end_ps, SimTime::from_ns(6.0).as_ps());
        assert_eq!(spans[1].trace_id, 8);
        assert_eq!(spans[2].begin_ps, SimTime::from_ns(50.0).as_ps());
    }

    #[test]
    fn span_merged_same_origin_waits_collapse() {
        let sink = TraceSink::recording();
        let t = sink.track("port");
        let id = TraceCtx::new(9);
        // Credit waits of one payload burst: same begin, growing ends.
        for end in [10.0, 20.0, 30.0] {
            t.span_nonzero_merged(
                "credit",
                "link.credit_wait",
                SimTime::ZERO,
                SimTime::from_ns(end),
                id,
            );
        }
        let spans = sink.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].end_ps, SimTime::from_ns(30.0).as_ps());
        // An interleaved span on another track does not break the chain
        // of the first track's merges.
        let other = sink.track("other");
        other.span(
            "c",
            "x",
            SimTime::ZERO,
            SimTime::from_ns(1.0),
            TraceCtx::NONE,
        );
        t.span_nonzero_merged(
            "credit",
            "link.credit_wait",
            SimTime::from_ns(15.0),
            SimTime::from_ns(40.0),
            id,
        );
        assert_eq!(sink.span_count(), 2, "overlap still merges per track");
    }

    #[test]
    fn span_nonzero_drops_degenerate_waits() {
        let sink = TraceSink::recording();
        let t = sink.track("t");
        t.span_nonzero(
            "c",
            "wait",
            SimTime::from_ns(5.0),
            SimTime::from_ns(5.0),
            TraceCtx::NONE,
        );
        assert_eq!(sink.span_count(), 0);
        t.span_nonzero(
            "c",
            "wait",
            SimTime::from_ns(5.0),
            SimTime::from_ns(6.0),
            TraceCtx::NONE,
        );
        assert_eq!(sink.span_count(), 1);
    }

    /// Emits a small scenario's worth of spans into `sink` under the
    /// given process name, with labels shared across scenarios.
    fn emit_scenario(sink: &TraceSink, process: &str, salt: u64) {
        sink.begin_process(process);
        let t = sink.track("fha1");
        t.span(
            "fha",
            "rtt",
            SimTime::from_ns(salt as f64),
            SimTime::from_ns(salt as f64 + 10.0),
            TraceCtx::new(salt + 1),
        );
        let u = sink.track("port");
        u.instant(
            "link",
            &format!("evt-{process}"),
            SimTime::ZERO,
            TraceCtx::NONE,
        );
        u.instant("link", "shared-label", SimTime::ZERO, TraceCtx::NONE);
    }

    #[test]
    fn absorbed_dumps_reproduce_the_serial_buffer_byte_for_byte() {
        // Serial reference: one sink records both scenarios directly.
        let serial = TraceSink::recording();
        emit_scenario(&serial, "s0", 100);
        emit_scenario(&serial, "s1", 200);

        // Parallel shape: each scenario records into its own sink; the
        // dumps are absorbed in scenario order.
        let merged = TraceSink::recording();
        for (process, salt) in [("s0", 100), ("s1", 200)] {
            let local = TraceSink::recording();
            emit_scenario(&local, process, salt);
            let dump = local.into_dump().expect("recording sink dumps");
            merged.absorb(dump);
        }

        assert_eq!(serial.to_chrome_json(), merged.to_chrome_json());
    }

    #[test]
    fn into_dump_with_live_track_falls_back_to_clone() {
        let sink = TraceSink::recording();
        let t = sink.track("t");
        t.instant("c", "x", SimTime::ZERO, TraceCtx::NONE);
        // `t` still holds an Rc clone of the buffer.
        let dump = sink.clone().into_dump().expect("dump");
        assert_eq!(dump.spans.len(), 1);
        assert_eq!(dump.labels, vec!["x".to_string()]);
    }

    #[test]
    fn deadlock_report_lands_in_trace_and_metrics() {
        let report = DeadlockReport {
            stuck: vec![StuckComponent {
                component: "fha1".to_string(),
                what: "txn 0x1 awaiting fabric response".to_string(),
                waiting_on: Some("fs0".to_string()),
            }],
            cycles: vec![vec!["fha1".to_string(), "fs0".to_string()]],
        };
        let sink = TraceSink::recording();
        let mut metrics = MetricsRegistry::new();
        record_deadlock(&sink, &mut metrics, &report, SimTime::from_ns(500.0));
        let spans = sink.spans();
        assert_eq!(spans.len(), 2, "one stuck component + one cycle");
        assert!(spans.iter().all(|s| s.cat == "deadlock"));
        assert!(sink.label(spans[0].name).contains("fha1"));
        assert!(sink.label(spans[0].name).contains("waiting on fs0"));
        assert!(sink.label(spans[1].name).contains("wait-for cycle"));
        assert_eq!(metrics.counter("sim.deadlock.stuck_components"), Some(1));
        assert_eq!(metrics.counter("sim.deadlock.cycles"), Some(1));
    }
}
