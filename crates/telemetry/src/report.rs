//! Post-hoc trace analysis: reads an exported Chrome trace-event file
//! back and computes per-hop latency breakdowns, credit-wait congestion
//! attribution, and RTT tail statistics.
//!
//! This is the engine behind the `trace-report` binary: everything here
//! works from the JSON alone, so the acceptance claim "the tail inflation
//! is reproducible from the trace" does not depend on simulator state.

use std::collections::BTreeMap;

use crate::json::{self, JsonValue};

/// One event read back from a trace file (times in picoseconds).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Process group (scenario).
    pub pid: u32,
    /// Track (component).
    pub tid: u32,
    /// Chrome phase: `X` (complete) or `i` (instant).
    pub ph: char,
    /// Category.
    pub cat: String,
    /// Label.
    pub name: String,
    /// Start time (ps).
    pub ts_ps: u64,
    /// Duration (ps; zero for instants).
    pub dur_ps: u64,
    /// Causal transaction id (0 = untracked).
    pub trace_id: u64,
}

/// A parsed trace: metadata plus payload events.
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// Process names by pid.
    pub processes: BTreeMap<u32, String>,
    /// Track names by (pid, tid).
    pub tracks: BTreeMap<(u32, u32), String>,
    /// Payload events in file order.
    pub events: Vec<TraceEvent>,
}

/// RTT statistics for one (process, operation) group.
#[derive(Debug, Clone)]
pub struct RttGroup {
    /// Scenario name.
    pub process: String,
    /// Operation label (e.g. `rtt-wr64B`).
    pub name: String,
    /// Completed operations.
    pub count: u64,
    /// Mean latency (ns).
    pub mean_ns: f64,
    /// Median latency (ns).
    pub p50_ns: f64,
    /// 99th percentile latency (ns).
    pub p99_ns: f64,
    /// Maximum latency (ns).
    pub max_ns: f64,
}

/// Serving request latency statistics for one (process, tenant) group.
#[derive(Debug, Clone)]
pub struct ServeSloGroup {
    /// Scenario name.
    pub process: String,
    /// Tenant span label (e.g. `req-t007`).
    pub tenant: String,
    /// Completed requests.
    pub count: u64,
    /// Median latency (ns).
    pub p50_ns: f64,
    /// 99th percentile latency (ns).
    pub p99_ns: f64,
    /// 99.9th percentile latency (ns).
    pub p999_ns: f64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn us_to_ps(us: f64) -> u64 {
    (us * 1_000_000.0).round() as u64
}

impl TraceData {
    /// Parses an exported Chrome trace-event JSON document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let events_json = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| "missing top-level traceEvents array".to_string())?;
        let mut data = TraceData::default();
        for ev in events_json {
            let ph = ev
                .get("ph")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "event without ph".to_string())?;
            let pid = ev.get("pid").and_then(JsonValue::as_u64).unwrap_or(0) as u32;
            let tid = ev.get("tid").and_then(JsonValue::as_u64).unwrap_or(0) as u32;
            let name = ev
                .get("name")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string();
            match ph {
                "M" => {
                    let label = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(JsonValue::as_str)
                        .unwrap_or("")
                        .to_string();
                    match name.as_str() {
                        "process_name" => {
                            data.processes.insert(pid, label);
                        }
                        "thread_name" => {
                            data.tracks.insert((pid, tid), label);
                        }
                        _ => {}
                    }
                }
                "X" | "i" => {
                    let ts_ps = us_to_ps(ev.get("ts").and_then(JsonValue::as_f64).unwrap_or(0.0));
                    let dur_ps = us_to_ps(ev.get("dur").and_then(JsonValue::as_f64).unwrap_or(0.0));
                    let trace_id = ev
                        .get("args")
                        .and_then(|a| a.get("txn"))
                        .and_then(JsonValue::as_str)
                        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
                        .unwrap_or(0);
                    data.events.push(TraceEvent {
                        pid,
                        tid,
                        ph: if ph == "X" { 'X' } else { 'i' },
                        cat: ev
                            .get("cat")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("")
                            .to_string(),
                        name,
                        ts_ps,
                        dur_ps,
                        trace_id,
                    });
                }
                _ => {}
            }
        }
        Ok(data)
    }

    /// The scenario name of a pid (falls back to `pid<N>`).
    pub fn process_name(&self, pid: u32) -> String {
        self.processes
            .get(&pid)
            .cloned()
            .unwrap_or_else(|| format!("pid{pid}"))
    }

    /// The component name of a track (falls back to `tid<N>`).
    pub fn track_name(&self, pid: u32, tid: u32) -> String {
        self.tracks
            .get(&(pid, tid))
            .cloned()
            .unwrap_or_else(|| format!("tid{tid}"))
    }

    /// Total duration and event count per category, sorted by category.
    pub fn category_totals(&self) -> Vec<(String, u64, u64)> {
        let mut map: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for ev in &self.events {
            let slot = map.entry(&ev.cat).or_default();
            slot.0 += 1;
            slot.1 += ev.dur_ps;
        }
        map.into_iter()
            .map(|(cat, (count, dur))| (cat.to_string(), count, dur))
            .collect()
    }

    /// Time blocked on credits per `process/track`, descending — the §3
    /// D#3 congestion attribution (which ports camp on credits).
    pub fn credit_wait_by_track(&self) -> Vec<(String, u64, u64)> {
        let mut map: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();
        for ev in &self.events {
            if ev.cat == "credit" && ev.ph == 'X' {
                let slot = map.entry((ev.pid, ev.tid)).or_default();
                slot.0 += 1;
                slot.1 += ev.dur_ps;
            }
        }
        let mut rows: Vec<(String, u64, u64)> = map
            .into_iter()
            .map(|((pid, tid), (count, dur))| {
                (
                    format!("{}/{}", self.process_name(pid), self.track_name(pid, tid)),
                    count,
                    dur,
                )
            })
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        rows
    }

    /// Total credit-blocked time (ps) within one process group.
    pub fn credit_wait_total(&self, pid: u32) -> u64 {
        self.events
            .iter()
            .filter(|e| e.pid == pid && e.cat == "credit" && e.ph == 'X')
            .map(|e| e.dur_ps)
            .sum()
    }

    /// End-to-end RTT statistics grouped by (process, operation label).
    /// RTT spans are the `fha` category spans named `rtt-*`.
    pub fn rtt_groups(&self) -> Vec<RttGroup> {
        let mut map: BTreeMap<(u32, &str), Vec<u64>> = BTreeMap::new();
        for ev in &self.events {
            if ev.cat == "fha" && ev.name.starts_with("rtt") && ev.ph == 'X' {
                map.entry((ev.pid, &ev.name)).or_default().push(ev.dur_ps);
            }
        }
        map.into_iter()
            .map(|((pid, name), mut durs)| {
                durs.sort_unstable();
                let count = durs.len() as u64;
                let sum: u128 = durs.iter().map(|&d| d as u128).sum();
                RttGroup {
                    process: self.process_name(pid),
                    name: name.to_string(),
                    count,
                    mean_ns: sum as f64 / count as f64 / 1000.0,
                    p50_ns: percentile(&durs, 0.50) as f64 / 1000.0,
                    p99_ns: percentile(&durs, 0.99) as f64 / 1000.0,
                    max_ns: *durs.last().unwrap_or(&0) as f64 / 1000.0,
                }
            })
            .collect()
    }

    /// Serving-tier request latency statistics grouped by
    /// (process, tenant span label). Serving spans are the `serve`
    /// category spans the E13 clients emit (one per completed request,
    /// named `req-t{NNN}`); unlike [`rtt_groups`](Self::rtt_groups) the
    /// tail here reaches to p999 — the serving SLO family.
    pub fn serve_slo_groups(&self) -> Vec<ServeSloGroup> {
        let mut map: BTreeMap<(u32, &str), Vec<u64>> = BTreeMap::new();
        for ev in &self.events {
            if ev.cat == "serve" && ev.ph == 'X' {
                map.entry((ev.pid, &ev.name)).or_default().push(ev.dur_ps);
            }
        }
        map.into_iter()
            .map(|((pid, name), mut durs)| {
                durs.sort_unstable();
                let count = durs.len() as u64;
                ServeSloGroup {
                    process: self.process_name(pid),
                    tenant: name.to_string(),
                    count,
                    p50_ns: percentile(&durs, 0.50) as f64 / 1000.0,
                    p99_ns: percentile(&durs, 0.99) as f64 / 1000.0,
                    p999_ns: percentile(&durs, 0.999) as f64 / 1000.0,
                }
            })
            .collect()
    }

    /// Every span of one transaction, ordered by start time — the per-hop
    /// breakdown of a single remote access. `pid` restricts the breakdown
    /// to one scenario: FHA transaction ids are per-adapter sequence
    /// numbers, so distinct scenarios reuse them and an unscoped query
    /// would interleave unrelated accesses.
    pub fn hop_breakdown(&self, trace_id: u64, pid: Option<u32>) -> Vec<&TraceEvent> {
        let mut hops: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.trace_id == trace_id && pid.is_none_or(|p| e.pid == p))
            .collect();
        hops.sort_by_key(|e| (e.ts_ps, std::cmp::Reverse(e.dur_ps)));
        hops
    }

    /// The processes (scenarios) in which `trace_id` appears, ascending.
    pub fn processes_of(&self, trace_id: u64) -> Vec<u32> {
        let mut pids: Vec<u32> = self
            .events
            .iter()
            .filter(|e| e.trace_id == trace_id)
            .map(|e| e.pid)
            .collect();
        pids.sort_unstable();
        pids.dedup();
        pids
    }

    /// The `n` slowest RTT spans, descending.
    pub fn slowest_rtts(&self, n: usize) -> Vec<&TraceEvent> {
        let mut rtts: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.cat == "fha" && e.name.starts_with("rtt") && e.ph == 'X')
            .collect();
        rtts.sort_by_key(|e| std::cmp::Reverse(e.dur_ps));
        rtts.truncate(n);
        rtts
    }

    /// Tail-inflation factors: for each RTT label observed in several
    /// processes, the ratio of worst to best p99 (and mean). This is how
    /// `trace-report` reproduces the E3b claim from the trace alone.
    pub fn tail_inflation(&self) -> Vec<(String, f64, f64)> {
        let groups = self.rtt_groups();
        let mut by_name: BTreeMap<&str, Vec<&RttGroup>> = BTreeMap::new();
        for g in &groups {
            by_name.entry(&g.name).or_default().push(g);
        }
        by_name
            .into_iter()
            .filter(|(_, gs)| gs.len() >= 2)
            .map(|(name, gs)| {
                let (mut p99_min, mut p99_max) = (f64::MAX, 0.0f64);
                let (mut mean_min, mut mean_max) = (f64::MAX, 0.0f64);
                for g in gs {
                    p99_min = p99_min.min(g.p99_ns);
                    p99_max = p99_max.max(g.p99_ns);
                    mean_min = mean_min.min(g.mean_ns);
                    mean_max = mean_max.max(g.mean_ns);
                }
                (
                    name.to_string(),
                    p99_max / p99_min.max(1e-9),
                    mean_max / mean_min.max(1e-9),
                )
            })
            .collect()
    }

    /// Deadlock events recorded in the trace, if any.
    pub fn deadlock_events(&self) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.cat == "deadlock").collect()
    }

    /// Renders the full human-readable report.
    pub fn render_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // `write!` to a String cannot fail; drop the Results.
        let _ = writeln!(
            out,
            "trace: {} event(s), {} process(es), {} track(s)",
            self.events.len(),
            self.processes.len(),
            self.tracks.len()
        );
        let _ = writeln!(out, "\n-- time by category --");
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>14}",
            "category", "events", "total (us)"
        );
        for (cat, count, dur) in self.category_totals() {
            let _ = writeln!(out, "{:<12} {:>10} {:>14.3}", cat, count, dur as f64 / 1e6);
        }
        let credit = self.credit_wait_by_track();
        if !credit.is_empty() {
            let _ = writeln!(out, "\n-- time blocked on credits, by component --");
            let _ = writeln!(
                out,
                "{:<32} {:>8} {:>14}",
                "component", "waits", "total (us)"
            );
            for (track, count, dur) in credit.iter().take(12) {
                let _ = writeln!(
                    out,
                    "{:<32} {:>8} {:>14.3}",
                    track,
                    count,
                    *dur as f64 / 1e6
                );
            }
        }
        let groups = self.rtt_groups();
        if !groups.is_empty() {
            let _ = writeln!(out, "\n-- round-trip latency by scenario and op --");
            let _ = writeln!(
                out,
                "{:<20} {:<14} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "scenario", "op", "count", "mean(ns)", "p50(ns)", "p99(ns)", "max(ns)"
            );
            for g in &groups {
                let _ = writeln!(
                    out,
                    "{:<20} {:<14} {:>8} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
                    g.process, g.name, g.count, g.mean_ns, g.p50_ns, g.p99_ns, g.max_ns
                );
            }
        }
        let serve = self.serve_slo_groups();
        if !serve.is_empty() {
            let _ = writeln!(out, "\n-- serving SLO by tenant --");
            let _ = writeln!(
                out,
                "{:<20} {:<12} {:>8} {:>10} {:>10} {:>10}",
                "scenario", "tenant", "count", "p50(ns)", "p99(ns)", "p999(ns)"
            );
            for g in &serve {
                let _ = writeln!(
                    out,
                    "{:<20} {:<12} {:>8} {:>10.0} {:>10.0} {:>10.0}",
                    g.process, g.tenant, g.count, g.p50_ns, g.p99_ns, g.p999_ns
                );
            }
        }
        for (name, p99x, meanx) in self.tail_inflation() {
            let _ = writeln!(
                out,
                "tail inflation for {name}: p99 {p99x:.1}x, mean {meanx:.1}x across scenarios"
            );
        }
        let slowest = self.slowest_rtts(5);
        if !slowest.is_empty() {
            let _ = writeln!(out, "\n-- slowest transactions (critical paths) --");
            for rtt in &slowest {
                let _ = writeln!(
                    out,
                    "txn {:#x}: rtt {:.0} ns in {}/{}",
                    rtt.trace_id,
                    rtt.dur_ps as f64 / 1e3,
                    self.process_name(rtt.pid),
                    self.track_name(rtt.pid, rtt.tid)
                );
            }
            // Per-hop breakdown of the single slowest transaction.
            if let Some(worst) = slowest.first().filter(|w| w.trace_id != 0) {
                let _ = writeln!(
                    out,
                    "\n-- per-hop breakdown of txn {:#x} in {} --",
                    worst.trace_id,
                    self.process_name(worst.pid)
                );
                let _ = writeln!(
                    out,
                    "{:>12} {:>10} {:<24} {:<10} span",
                    "ts (ns)", "dur (ns)", "component", "category"
                );
                for hop in self.hop_breakdown(worst.trace_id, Some(worst.pid)) {
                    let _ = writeln!(
                        out,
                        "{:>12.1} {:>10.1} {:<24} {:<10} {}",
                        hop.ts_ps as f64 / 1e3,
                        hop.dur_ps as f64 / 1e3,
                        self.track_name(hop.pid, hop.tid),
                        hop.cat,
                        hop.name
                    );
                }
            }
        }
        let deadlocks = self.deadlock_events();
        if !deadlocks.is_empty() {
            let _ = writeln!(out, "\n-- deadlock events --");
            for d in deadlocks {
                let _ = writeln!(out, "at {:.1} ns: {}", d.ts_ps as f64 / 1e3, d.name);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use fcc_sim::SimTime;

    use crate::trace::{TraceCtx, TraceSink};

    use super::*;

    fn synthetic_trace() -> TraceData {
        let sink = TraceSink::recording();
        sink.begin_process("alone");
        let fha_a = sink.track("fha1");
        for i in 0..100u64 {
            let id = TraceCtx::new(0x1_0000_0000_0000 + i);
            fha_a.span(
                "fha",
                "rtt-wr64B",
                SimTime::from_ns((i * 10) as f64),
                SimTime::from_ns((i * 10 + 500) as f64),
                id,
            );
        }
        sink.begin_process("bulk");
        let fha_b = sink.track("fha1");
        let port = sink.track("fs0.p1");
        for i in 0..100u64 {
            let id = TraceCtx::new(0x2_0000_0000_0000 + i);
            let begin = SimTime::from_ns((i * 10) as f64);
            // 10x slower under interference; half the time is credit-wait.
            fha_b.span(
                "fha",
                "rtt-wr64B",
                begin,
                begin + SimTime::from_ns(5000.0),
                id,
            );
            port.span(
                "credit",
                "link.credit_wait",
                begin,
                begin + SimTime::from_ns(2500.0),
                id,
            );
        }
        TraceData::from_json(&sink.to_chrome_json()).expect("round trip")
    }

    #[test]
    fn round_trip_preserves_counts_and_names() {
        let data = synthetic_trace();
        assert_eq!(data.processes.len(), 2);
        assert_eq!(data.events.len(), 300);
        assert_eq!(data.process_name(0), "alone");
        assert_eq!(data.process_name(1), "bulk");
        assert_eq!(data.track_name(1, 2), "fs0.p1");
    }

    #[test]
    fn tail_inflation_is_recovered_from_the_trace_alone() {
        let data = synthetic_trace();
        let inflation = data.tail_inflation();
        assert_eq!(inflation.len(), 1);
        let (name, p99x, meanx) = &inflation[0];
        assert_eq!(name, "rtt-wr64B");
        assert!((*p99x - 10.0).abs() < 0.5, "p99 inflation {p99x}");
        assert!((*meanx - 10.0).abs() < 0.5, "mean inflation {meanx}");
    }

    #[test]
    fn credit_attribution_points_at_the_congested_port() {
        let data = synthetic_trace();
        let credit = data.credit_wait_by_track();
        assert_eq!(credit.len(), 1);
        assert_eq!(credit[0].0, "bulk/fs0.p1");
        assert_eq!(credit[0].1, 100);
        assert_eq!(data.credit_wait_total(1), 100 * 2_500_000);
        assert_eq!(data.credit_wait_total(0), 0);
    }

    #[test]
    fn hop_breakdown_collects_all_spans_of_a_txn() {
        let data = synthetic_trace();
        let hops = data.hop_breakdown(0x2_0000_0000_0000, None);
        assert_eq!(hops.len(), 2, "rtt + credit wait");
        assert!(hops.iter().any(|h| h.cat == "credit"));
        let pid = hops[0].pid;
        assert_eq!(data.processes_of(0x2_0000_0000_0000), vec![pid]);
        assert_eq!(data.hop_breakdown(0x2_0000_0000_0000, Some(pid)).len(), 2);
        assert!(data
            .hop_breakdown(0x2_0000_0000_0000, Some(pid + 1))
            .is_empty());
    }

    #[test]
    fn serve_slo_groups_report_the_tail() {
        let sink = TraceSink::recording();
        sink.begin_process("e13-on");
        let client = sink.track("client0");
        for i in 0..1000u64 {
            let begin = SimTime::from_ns((i * 50) as f64);
            // Two slow requests in a thousand: p99 stays low, p999 sees them.
            let lat = if i >= 998 { 50_000.0 } else { 400.0 };
            client.span(
                "serve",
                "req-t003",
                begin,
                begin + SimTime::from_ns(lat),
                TraceCtx::new(i + 1),
            );
        }
        let data = TraceData::from_json(&sink.to_chrome_json()).expect("round trip");
        let groups = data.serve_slo_groups();
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(
            (g.process.as_str(), g.tenant.as_str()),
            ("e13-on", "req-t003")
        );
        assert_eq!(g.count, 1000);
        assert!((g.p50_ns - 400.0).abs() < 1.0, "p50 {}", g.p50_ns);
        assert!(g.p99_ns < 500.0, "p99 {}", g.p99_ns);
        assert!(g.p999_ns > 10_000.0, "p999 {}", g.p999_ns);
        let text = data.render_report();
        assert!(text.contains("serving SLO by tenant"));
        assert!(text.contains("req-t003"));
    }

    #[test]
    fn report_renders_every_section() {
        let data = synthetic_trace();
        let text = data.render_report();
        assert!(text.contains("time by category"));
        assert!(text.contains("blocked on credits"));
        assert!(text.contains("rtt-wr64B"));
        assert!(text.contains("tail inflation"));
        assert!(text.contains("per-hop breakdown"));
    }
}
