//! Deadlock-freedom gate for the wormhole switch core, run in CI.
//!
//! Sweeps every small-K pod plan ([`fcc_verify::routing::standard_plans`])
//! and proves the escape-VC channel dependency graph acyclic, then
//! explores the real `VcLink` credit ledger through every bounded
//! interleaving of dispatches and credit returns. Exits 0 when all
//! checks pass; on a violation, prints the counterexample and exits 1.
//!
//! `--report <path>` additionally writes a JSON verdict — including the
//! counterexample cycle or operation trace on failure — for the CI
//! artifact.

use std::process::ExitCode;
use std::time::Instant;

use fcc_fabric::wormhole::VcConfig;
use fcc_verify::routing::{
    check_credit_ledger, check_escape_acyclic, standard_plans, RoutingViolation,
};

struct Outcome {
    checks: usize,
    routes: usize,
    states: usize,
    failure: Option<(String, RoutingViolation)>,
}

fn run() -> Outcome {
    let mut out = Outcome {
        checks: 0,
        routes: 0,
        states: 0,
        failure: None,
    };
    for (label, plan) in standard_plans() {
        let start = Instant::now();
        out.checks += 1;
        match check_escape_acyclic(&plan) {
            Ok(stats) => {
                out.routes += stats.routes;
                println!(
                    "ok   {label}: {} routes over {} channels, {} deps acyclic ({:.2?})",
                    stats.routes,
                    stats.channels,
                    stats.deps,
                    start.elapsed()
                );
            }
            Err(v) => {
                println!("FAIL {label}:\n{v}");
                out.failure = Some((label, v));
                return out;
            }
        }
    }
    for (vcs, buf, worms, depth) in [(2u8, 1u32, 2u32, 10usize), (2, 2, 2, 8), (3, 2, 3, 6)] {
        let label = format!("vc ledger {vcs} lanes x {buf} flits, {worms} worms, depth {depth}");
        let start = Instant::now();
        out.checks += 1;
        match check_credit_ledger(
            VcConfig {
                vcs,
                buf_flits: buf,
            },
            worms,
            depth,
        ) {
            Ok(stats) => {
                out.states += stats.states;
                println!(
                    "ok   {label}: {} states, {} transitions conserved ({:.2?})",
                    stats.states,
                    stats.transitions,
                    start.elapsed()
                );
            }
            Err(v) => {
                println!("FAIL {label}:\n{v}");
                out.failure = Some((label, v));
                return out;
            }
        }
    }
    out
}

fn report_json(out: &Outcome) -> String {
    match &out.failure {
        None => format!(
            "{{\"status\":\"ok\",\"checks\":{},\"routes\":{},\"ledger_states\":{}}}",
            out.checks, out.routes, out.states
        ),
        Some((label, v)) => format!(
            "{{\"status\":\"fail\",\"check\":\"{label}\",\"counterexample\":{}}}",
            v.to_json()
        ),
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut report: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--report" => report = args.next(),
            other => {
                eprintln!("unknown argument: {other} (usage: check-routing [--report <path>])");
                return ExitCode::FAILURE;
            }
        }
    }
    let out = run();
    if let Some(path) = report {
        if let Err(e) = std::fs::write(&path, report_json(&out) + "\n") {
            eprintln!("cannot write report {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("report written to {path}");
    }
    if out.failure.is_none() {
        println!("escape routing is deadlock-free at small K; credit ledgers conserve");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
