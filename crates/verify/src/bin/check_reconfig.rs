//! Exhaustive reconfiguration-protocol check, run as a CI gate.
//!
//! Explores every interleaving of the epoch-based hot-add and
//! hot-remove plans ([`fcc_elastic::epoch`]) against in-flight fabric
//! traffic on 1–3 switch chains, asserting no flit is ever dropped at a
//! missing route or delivered to a detached port. Exits 0 when all
//! invariants hold; on a violation, prints the minimal counterexample
//! trace and exits 1.
//!
//! `--inject naive-add` or `--inject naive-yank` runs the deliberately
//! broken plan variants to demonstrate the failure path (the run is
//! then *expected* to report a violation and exit non-zero).

use std::process::ExitCode;
use std::time::Instant;

use fcc_elastic::epoch::{hot_add_naive, hot_add_plan, hot_remove_naive, hot_remove_plan};
use fcc_verify::reconfig::{check, Config, Direction};

fn run(label: &str, plan: &fcc_elastic::epoch::ReconfigPlan, dir: Direction, cfg: &Config) -> bool {
    let start = Instant::now();
    match check(plan, dir, cfg) {
        Ok(report) => {
            println!(
                "ok   {label}: {} reachable states, {} transitions, depth {} ({:.2?})",
                report.states,
                report.transitions,
                report.depth,
                start.elapsed()
            );
            true
        }
        Err(violation) => {
            println!("FAIL {label}:");
            println!("{violation}");
            false
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inject = match args.as_slice() {
        [] => None,
        [flag, which] if flag == "--inject" => match which.as_str() {
            "naive-add" => Some(Direction::Add),
            "naive-yank" => Some(Direction::Remove),
            other => {
                eprintln!("unknown mutation {other:?} (naive-add | naive-yank)");
                return ExitCode::from(2);
            }
        },
        _ => {
            eprintln!("usage: check-reconfig [--inject naive-add|naive-yank]");
            return ExitCode::from(2);
        }
    };

    if let Some(dir) = inject {
        println!("injecting {dir:?}: a violation report below is the expected outcome");
        let cfg = Config::new(2, 2);
        let ok = match dir {
            Direction::Add => run("naive add, 2 switches", &hot_add_naive(2), dir, &cfg),
            Direction::Remove => run("naive yank, 2 switches", &hot_remove_naive(2), dir, &cfg),
        };
        // A clean run under injection means the checker missed the bug.
        return if ok {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let mut ok = true;
    for switches in 1..=3 {
        let cfg = Config::new(switches, 3);
        ok &= run(
            &format!("two-phase hot-add, {switches} switch(es) x 3 flits"),
            &hot_add_plan(switches),
            Direction::Add,
            &cfg,
        );
        ok &= run(
            &format!("guarded hot-remove, {switches} switch(es) x 3 flits"),
            &hot_remove_plan(switches),
            Direction::Remove,
            &cfg,
        );
    }

    // The naive variants must be *caught* — a clean pass there means the
    // checker has lost its teeth.
    let cfg = Config::new(2, 2);
    let naive_add_caught = !run(
        "naive add (expected FAIL)",
        &hot_add_naive(2),
        Direction::Add,
        &cfg,
    );
    let naive_yank_caught = !run(
        "naive yank (expected FAIL)",
        &hot_remove_naive(2),
        Direction::Remove,
        &cfg,
    );
    if naive_add_caught && naive_yank_caught {
        println!("naive plans correctly rejected (the FAIL reports above are expected)");
    } else {
        println!("ERROR: a naive plan passed the checker");
        ok = false;
    }

    if ok {
        println!("all reconfiguration invariants hold");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
