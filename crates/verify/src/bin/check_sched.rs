//! Exhaustive scheduler-isolation check, run as a CI gate.
//!
//! Explores every per-window demand schedule (`2^(K*W)`) of the standard
//! small-K tenant configurations against the real
//! [`fcc_sched::CreditPartition`] ledger, asserting ledger soundness,
//! guaranteed floor service under saturating hogs, and work conservation
//! (see [`fcc_verify::sched`]). Exits 0 when all invariants hold; on a
//! violation, prints the counterexample demand schedule and exits 1.

use std::process::ExitCode;
use std::time::Instant;

use fcc_verify::sched::{check, Config};

fn run(label: &str, cfg: &Config) -> bool {
    let start = Instant::now();
    match check(cfg) {
        Ok(report) => {
            println!(
                "ok   {label}: {} schedules, {} credit spends ({:.2?})",
                report.schedules,
                report.spends,
                start.elapsed()
            );
            true
        }
        Err(violation) => {
            println!("FAIL {label}:");
            println!("{violation}");
            false
        }
    }
}

fn main() -> ExitCode {
    let mut ok = true;
    ok &= run(
        "hog vs floor-holding victim, 2 tenants x 4 windows",
        &Config::hog_pair(),
    );
    ok &= run(
        "victim/bulk/hog across 2 groups, 3 tenants x 3 windows",
        &Config::hog_triple(),
    );
    ok &= run("exact-sum rounding, 4 tenants x 2 windows", &Config::quad());
    if ok {
        println!("all scheduler isolation invariants hold");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
