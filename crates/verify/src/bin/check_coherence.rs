//! Exhaustive coherence-protocol check, run as a CI gate.
//!
//! Enumerates every reachable state of small host/line configurations
//! of the real CC-NUMA protocol engines and checks coherence safety
//! and deadlock freedom. Exits 0 when all invariants hold; on a
//! violation, prints the full counterexample message trace and exits 1.
//!
//! `--inject drop-invalidate` or `--inject lose-grant` deliberately
//! breaks the protocol to demonstrate the failure path (the run is
//! then *expected* to report a violation and exit non-zero).

use std::process::ExitCode;
use std::time::Instant;

use fcc_verify::coherence::{check, Config, Mutation};

fn run(label: &str, cfg: &Config) -> bool {
    let start = Instant::now();
    match check(cfg) {
        Ok(report) => {
            println!(
                "ok   {label}: {} reachable states, {} transitions, depth {} ({:.2?})",
                report.states,
                report.transitions,
                report.depth,
                start.elapsed()
            );
            true
        }
        Err(violation) => {
            println!("FAIL {label}:");
            println!("{violation}");
            false
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mutation = match args.as_slice() {
        [] => None,
        [flag, which] if flag == "--inject" => match which.as_str() {
            "drop-invalidate" => Some(Mutation::DropInvalidate),
            "lose-grant" => Some(Mutation::LoseGrant),
            other => {
                eprintln!("unknown mutation {other:?} (drop-invalidate | lose-grant)");
                return ExitCode::from(2);
            }
        },
        _ => {
            eprintln!("usage: check-coherence [--inject drop-invalidate|lose-grant]");
            return ExitCode::from(2);
        }
    };

    let mut configs = vec![
        ("2 hosts x 1 line x 3 ops", Config::new(2, 1, 3)),
        ("2 hosts x 2 lines x 2 ops", Config::new(2, 2, 2)),
        ("3 hosts x 1 line x 2 ops", Config::new(3, 1, 2)),
    ];
    if mutation.is_some() {
        // One small config is enough to demonstrate detection.
        configs.truncate(1);
        for (_, cfg) in &mut configs {
            cfg.mutation = mutation;
        }
        println!("injecting {mutation:?}: a violation report below is the expected outcome");
    }

    let mut ok = true;
    for (label, cfg) in &configs {
        ok &= run(label, cfg);
    }
    if ok {
        println!("all coherence invariants hold");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
