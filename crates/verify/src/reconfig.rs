//! Explicit-state model checking of the epoch-based reconfiguration
//! protocol.
//!
//! The checker explores, breadth-first, every interleaving of a
//! [`ReconfigPlan`]'s control-plane steps against in-flight data-plane
//! traffic on an abstract fabric: a chain of `switches` switches a flit
//! must traverse in order to reach the node being added or removed.
//! The model keeps exactly what the simulator's switch keeps — a
//! per-switch route entry for the node — and applies the simulator's
//! admission rule: a flit arriving at a switch with no route entry is
//! **dropped** (routing in the real switch is exact-match per node, so a
//! missing entry can only drop, never misroute; a present entry can only
//! point at the node's port, so delivery to the wrong place is
//! unreachable by construction — drop-freedom is therefore the whole
//! safety obligation).
//!
//! Transitions from each state:
//!
//! - apply the plan's next step ([`UpdateStep`]); a
//!   [`UpdateStep::PruneRoute`] with `require_quiescent` is only enabled
//!   while no flit is in flight (the composer's ledger-verified drain
//!   condition),
//! - inject a new flit toward the node, if the node is currently
//!   *exposed* (announced and not retracted) and the flit budget allows,
//! - advance one in-flight flit by one switch hop.
//!
//! Invariants on every reachable state:
//!
//! 1. **No drop** — no flit ever reaches a switch without a route entry.
//! 2. **No post-detach delivery** — no flit completes its traversal
//!    after [`UpdateStep::Detach`].
//!
//! A violation carries the complete transition trace from the initial
//! state (BFS order makes it minimal). The naive plan variants
//! ([`fcc_elastic::epoch::hot_add_naive`],
//! [`fcc_elastic::epoch::hot_remove_naive`]) are the deliberate faults
//! proving the checker catches both failure modes.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use fcc_elastic::epoch::{ReconfigPlan, UpdateStep};

/// Which lifecycle the plan performs, fixing the initial fabric state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Hot-add: no routes installed, node not yet exposed to traffic.
    Add,
    /// Hot-remove: all routes installed, node exposed and serving.
    Remove,
}

/// Checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Switches a flit traverses to reach the node (1–3 is exhaustive
    /// in milliseconds).
    pub switches: usize,
    /// In-flight flit budget per execution.
    pub max_flits: u8,
}

impl Config {
    /// A named configuration.
    pub fn new(switches: usize, max_flits: u8) -> Self {
        Config {
            switches,
            max_flits,
        }
    }
}

/// Summary of a clean exhaustive run.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Distinct reachable states.
    pub states: usize,
    /// Transitions executed.
    pub transitions: u64,
    /// Longest BFS depth.
    pub depth: usize,
}

/// An invariant violation with its counterexample trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: String,
    /// Dump of the violating state.
    pub state: String,
    /// Every transition from the initial state to the violation.
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.invariant)?;
        writeln!(f, "trace ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:3}. {step}", i + 1)?;
        }
        write!(f, "state: {}", self.state)
    }
}

impl std::error::Error for Violation {}

/// The abstract fabric state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    /// Next plan step to apply.
    pc: usize,
    /// Per-switch route entry for the node.
    routes: Vec<bool>,
    /// Whether initiators may currently start traffic toward the node.
    exposed: bool,
    /// Whether the port has been physically detached.
    detached: bool,
    /// In-flight flits, each at the switch it will traverse next
    /// (kept sorted: flits are interchangeable).
    flits: Vec<u8>,
    /// Flits injected so far.
    injected: u8,
    /// Flits delivered so far.
    delivered: u8,
}

impl State {
    fn initial(cfg: &Config, direction: Direction) -> State {
        let (routed, exposed) = match direction {
            Direction::Add => (false, false),
            Direction::Remove => (true, true),
        };
        State {
            pc: 0,
            routes: vec![routed; cfg.switches],
            exposed,
            detached: false,
            flits: Vec::new(),
            injected: 0,
            delivered: 0,
        }
    }

    fn dump(&self) -> String {
        format!(
            "\n  pc={} routes={:?} exposed={} detached={}\
             \n  flits at switches {:?}, injected {}, delivered {}",
            self.pc,
            self.routes,
            self.exposed,
            self.detached,
            self.flits,
            self.injected,
            self.delivered
        )
    }
}

/// One enabled transition.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Apply the plan step at `pc`.
    Control(UpdateStep),
    /// Start a new flit toward the node.
    Inject,
    /// Advance the flit currently at switch `at` by one hop.
    Advance { at: u8 },
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Control(UpdateStep::InstallRoute { switch }) => {
                write!(f, "install route on switch {switch}")
            }
            Step::Control(UpdateStep::Announce) => write!(f, "announce node"),
            Step::Control(UpdateStep::Retract) => write!(f, "retract node"),
            Step::Control(UpdateStep::PruneRoute {
                switch,
                require_quiescent,
            }) => write!(
                f,
                "prune route on switch {switch} ({})",
                if *require_quiescent {
                    "quiescence-guarded"
                } else {
                    "unguarded"
                }
            ),
            Step::Control(UpdateStep::Detach) => write!(f, "detach port"),
            Step::Inject => write!(f, "initiator injects a flit toward the node"),
            Step::Advance { at } => write!(f, "flit traverses switch {at}"),
        }
    }
}

fn enabled(plan: &ReconfigPlan, cfg: &Config, s: &State) -> Vec<Step> {
    let mut steps = Vec::new();
    if let Some(&step) = plan.steps.get(s.pc) {
        let blocked = matches!(
            step,
            UpdateStep::PruneRoute {
                require_quiescent: true,
                ..
            }
        ) && !s.flits.is_empty();
        if !blocked {
            steps.push(Step::Control(step));
        }
    }
    if s.exposed && s.injected < cfg.max_flits {
        steps.push(Step::Inject);
    }
    let mut seen_pos: Option<u8> = None;
    for &at in &s.flits {
        // Flits at the same switch are interchangeable; advance one.
        if seen_pos != Some(at) {
            steps.push(Step::Advance { at });
            seen_pos = Some(at);
        }
    }
    steps
}

/// Applies `step`; `Err` is an invariant violation message.
fn apply(cfg: &Config, s: &mut State, step: Step) -> Result<(), String> {
    match step {
        Step::Control(c) => {
            s.pc += 1;
            match c {
                UpdateStep::InstallRoute { switch } => s.routes[switch] = true,
                UpdateStep::Announce => s.exposed = true,
                UpdateStep::Retract => s.exposed = false,
                UpdateStep::PruneRoute { switch, .. } => s.routes[switch] = false,
                UpdateStep::Detach => s.detached = true,
            }
        }
        Step::Inject => {
            s.injected += 1;
            s.flits.push(0);
            s.flits.sort_unstable();
        }
        Step::Advance { at } => {
            // Present by construction of `enabled`.
            let i = match s.flits.iter().position(|&p| p == at) {
                Some(i) => i,
                None => return Err(format!("advance of absent flit at switch {at}")),
            };
            if !s.routes[at as usize] {
                return Err(format!(
                    "flit dropped: switch {at} has no route entry for the node"
                ));
            }
            s.flits.remove(i);
            if (at as usize) + 1 == cfg.switches {
                if s.detached {
                    return Err("flit delivered to a detached port".into());
                }
                s.delivered += 1;
            } else {
                s.flits.push(at + 1);
                s.flits.sort_unstable();
            }
        }
    }
    Ok(())
}

fn violation(
    invariant: String,
    state: &State,
    key: &State,
    parents: &HashMap<State, (State, String)>,
) -> Box<Violation> {
    let mut trace = Vec::new();
    let mut cur = key.clone();
    while let Some((prev, step)) = parents.get(&cur) {
        trace.push(step.clone());
        cur = prev.clone();
    }
    trace.reverse();
    Box::new(Violation {
        invariant,
        state: state.dump(),
        trace,
    })
}

/// Exhaustively checks `plan` against all traffic interleavings.
/// Returns exploration statistics, or the first violation (with its
/// shortest trace — BFS order guarantees minimal counterexamples).
pub fn check(
    plan: &ReconfigPlan,
    direction: Direction,
    cfg: &Config,
) -> Result<Report, Box<Violation>> {
    let initial = State::initial(cfg, direction);
    let mut parents: HashMap<State, (State, String)> = HashMap::new();
    let mut seen: HashMap<State, usize> = HashMap::new();
    seen.insert(initial.clone(), 0);
    let mut frontier = VecDeque::from([initial]);
    let mut transitions = 0u64;
    let mut depth = 0usize;

    while let Some(state) = frontier.pop_front() {
        let d = seen.get(&state).copied().unwrap_or(0);
        depth = depth.max(d);
        for step in enabled(plan, cfg, &state) {
            transitions += 1;
            let mut next = state.clone();
            if let Err(msg) = apply(cfg, &mut next, step) {
                let mut v = violation(msg, &next, &state, &parents);
                v.trace.push(step.to_string());
                return Err(v);
            }
            if !seen.contains_key(&next) {
                seen.insert(next.clone(), d + 1);
                parents.insert(next.clone(), (state.clone(), step.to_string()));
                frontier.push_back(next);
            }
        }
    }

    Ok(Report {
        states: seen.len(),
        transitions,
        depth,
    })
}

#[cfg(test)]
mod tests {
    use fcc_elastic::epoch::{hot_add_naive, hot_add_plan, hot_remove_naive, hot_remove_plan};

    use super::*;

    #[test]
    fn two_phase_add_never_drops() {
        for switches in 1..=3 {
            let report = check(
                &hot_add_plan(switches),
                Direction::Add,
                &Config::new(switches, 2),
            )
            .expect("safe add plan is clean");
            assert!(report.states > switches, "explored {}", report.states);
        }
    }

    #[test]
    fn guarded_remove_never_drops() {
        for switches in 1..=3 {
            check(
                &hot_remove_plan(switches),
                Direction::Remove,
                &Config::new(switches, 2),
            )
            .expect("safe remove plan is clean");
        }
    }

    #[test]
    fn announce_before_install_drops_with_trace() {
        let v = check(&hot_add_naive(2), Direction::Add, &Config::new(2, 2))
            .expect_err("naive add must drop");
        assert!(v.invariant.contains("dropped"), "got: {}", v.invariant);
        assert!(!v.trace.is_empty());
        // The minimal counterexample announces, injects, then hits the
        // still-routeless switch.
        assert!(v.trace[0].contains("announce"), "trace: {:?}", v.trace);
        assert!(v.to_string().contains("trace ("));
    }

    #[test]
    fn unguarded_prune_drops_inflight_traffic() {
        let v = check(&hot_remove_naive(2), Direction::Remove, &Config::new(2, 2))
            .expect_err("naive remove must drop");
        assert!(v.invariant.contains("dropped"), "got: {}", v.invariant);
        assert!(
            v.trace.iter().any(|s| s.contains("unguarded")),
            "trace: {:?}",
            v.trace
        );
    }

    #[test]
    fn detach_without_quiescence_is_caught() {
        // A hand-built broken plan: retract (stop new traffic) but detach
        // with routes still up — an in-flight flit completes its
        // traversal into the detached port.
        let plan = ReconfigPlan {
            steps: vec![UpdateStep::Retract, UpdateStep::Detach],
        };
        let v = check(&plan, Direction::Remove, &Config::new(1, 1))
            .expect_err("post-detach delivery must be caught");
        assert!(v.invariant.contains("detached"), "got: {}", v.invariant);
    }
}
