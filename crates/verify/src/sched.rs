//! Explicit-state isolation check for the fabric QoS scheduler.
//!
//! Drives the *real* [`fcc_sched::CreditPartition`] — the same ledger the
//! fabric switches enforce at their admission points — through **every**
//! per-window demand pattern a small configuration admits. For K tenants
//! over W windows that is `2^(K*W)` schedules: in each window each tenant
//! either demands saturation (a hog: it spends until the partition says
//! no) or stays idle (its credits are redistributed work-conservingly
//! next window).
//!
//! On every reachable schedule the checker asserts:
//!
//! 1. **Ledger soundness** — the partition's own audit holds after every
//!    window: allocations sum exactly to the pool, no tenant spends past
//!    its containment bound, and every floor is honored.
//! 2. **Floor service** — a tenant that demands in a window is served at
//!    least its guaranteed floor, *regardless* of what every other
//!    tenant (including saturating hogs) does. This is the paper's
//!    multi-tenant isolation claim in miniature: a hog cannot starve a
//!    floor-holding tenant.
//! 3. **Work conservation** — when every tenant demands, the window's
//!    entire effective pool is spent; credits are never stranded.
//!
//! A violation carries the full demand schedule as a counterexample.

use std::fmt;

use fcc_sched::{CreditPartition, TenantId, TenantShare};

/// A small-K checker configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Credit pool per window at the admission point.
    pub pool: u32,
    /// The tenants and their shares, in spend round-robin order.
    pub shares: Vec<(TenantId, TenantShare)>,
    /// Number of windows to explore per schedule.
    pub windows: u32,
}

impl Config {
    /// A hog-versus-victim pair: a floor-holding latency tenant against a
    /// heavily weighted bandwidth hog.
    pub fn hog_pair() -> Config {
        Config {
            pool: 12,
            shares: vec![
                (
                    0,
                    TenantShare {
                        group: 0,
                        weight: 1,
                        floor: 2,
                    },
                ),
                (
                    1,
                    TenantShare {
                        group: 1,
                        weight: 8,
                        floor: 1,
                    },
                ),
            ],
            windows: 4,
        }
    }

    /// Victim, bulk and hog tenants across two groups.
    pub fn hog_triple() -> Config {
        Config {
            pool: 16,
            shares: vec![
                (
                    0,
                    TenantShare {
                        group: 0,
                        weight: 1,
                        floor: 4,
                    },
                ),
                (
                    1,
                    TenantShare {
                        group: 1,
                        weight: 4,
                        floor: 1,
                    },
                ),
                (
                    2,
                    TenantShare {
                        group: 1,
                        weight: 16,
                        floor: 1,
                    },
                ),
            ],
            windows: 3,
        }
    }

    /// Four equal tenants in one group — exercises exact-sum rounding.
    pub fn quad() -> Config {
        Config {
            pool: 10,
            shares: vec![
                (
                    0,
                    TenantShare {
                        group: 0,
                        weight: 3,
                        floor: 1,
                    },
                ),
                (
                    1,
                    TenantShare {
                        group: 0,
                        weight: 3,
                        floor: 1,
                    },
                ),
                (
                    2,
                    TenantShare {
                        group: 0,
                        weight: 2,
                        floor: 2,
                    },
                ),
                (
                    3,
                    TenantShare {
                        group: 0,
                        weight: 1,
                        floor: 1,
                    },
                ),
            ],
            windows: 2,
        }
    }
}

/// Summary of a clean exhaustive run.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Demand schedules explored (`2^(K*W)`).
    pub schedules: u64,
    /// Individual credit spends driven through the ledger.
    pub spends: u64,
}

/// A counterexample: the schedule, where it broke, and why.
#[derive(Debug, Clone)]
pub struct Violation {
    /// `demand[w][k]`: did tenant `k` demand in window `w`?
    pub demand: Vec<Vec<bool>>,
    /// Window in which the invariant broke.
    pub window: u32,
    /// What broke.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "isolation violation in window {}: {}",
            self.window, self.detail
        )?;
        writeln!(f, "demand schedule (rows = windows, D = demand, . = idle):")?;
        for (w, row) in self.demand.iter().enumerate() {
            let cells: String = row.iter().map(|&d| if d { 'D' } else { '.' }).collect();
            writeln!(f, "  w{w}: {cells}")?;
        }
        Ok(())
    }
}

/// Decodes schedule `bits` into `demand[w][k]` for `k` tenants.
fn decode(bits: u64, windows: u32, k: usize) -> Vec<Vec<bool>> {
    (0..windows)
        .map(|w| {
            (0..k)
                .map(|i| bits >> (w as usize * k + i) & 1 == 1)
                .collect()
        })
        .collect()
}

/// Exhaustively checks every demand schedule of `cfg`.
///
/// # Errors
///
/// Returns the first [`Violation`] found, with its full counterexample
/// schedule.
///
/// # Panics
///
/// Panics if the configuration has no tenants, more than 16 demand bits
/// (`K * W`), or duplicate tenant ids.
pub fn check(cfg: &Config) -> Result<Report, Violation> {
    let k = cfg.shares.len();
    let bits = k * cfg.windows as usize;
    assert!(k > 0, "config needs at least one tenant");
    assert!(bits <= 16, "K*W too large for exhaustive exploration");
    let mut spends = 0u64;
    let schedules = 1u64 << bits;
    for schedule in 0..schedules {
        let demand = decode(schedule, cfg.windows, k);
        let mut p = CreditPartition::new(cfg.pool);
        for &(id, share) in &cfg.shares {
            p.add_tenant(id, share);
        }
        let fail = |w: u32, detail: String| Violation {
            demand: demand.clone(),
            window: w,
            detail,
        };
        for w in 0..cfg.windows {
            let row = &demand[w as usize];
            let mut served = vec![0u32; k];
            // Saturating round-robin: every demanding tenant spends until
            // the partition denies all of them — the switch analogue is a
            // backlog draining against the admission gate.
            let mut progress = true;
            while progress {
                progress = false;
                for (i, &(id, _)) in cfg.shares.iter().enumerate() {
                    if row[i] && p.try_spend(id) {
                        served[i] += 1;
                        spends += 1;
                        progress = true;
                    }
                }
            }
            if let Err(e) = p.audit() {
                return Err(fail(w, format!("ledger audit failed: {e}")));
            }
            for (i, &(id, share)) in cfg.shares.iter().enumerate() {
                let floor = share.floor_min1();
                if row[i] && served[i] < floor {
                    return Err(fail(
                        w,
                        format!(
                            "tenant {id} demanded but was served {} < floor {floor}",
                            served[i]
                        ),
                    ));
                }
            }
            if row.iter().all(|&d| d) {
                let total: u32 = served.iter().sum();
                if total != p.pool() {
                    return Err(fail(
                        w,
                        format!(
                            "all tenants demanded but only {total} of {} credits served",
                            p.pool()
                        ),
                    ));
                }
            }
            p.rollover();
        }
    }
    Ok(Report { schedules, spends })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_configs_hold() {
        for cfg in [Config::hog_pair(), Config::hog_triple(), Config::quad()] {
            let report = check(&cfg).unwrap_or_else(|v| panic!("{v}"));
            assert_eq!(
                report.schedules,
                1 << (cfg.shares.len() * cfg.windows as usize)
            );
            assert!(report.spends > 0);
        }
    }

    #[test]
    fn counterexample_renders_the_schedule() {
        let v = Violation {
            demand: vec![vec![true, false], vec![false, true]],
            window: 1,
            detail: "example".into(),
        };
        let s = v.to_string();
        assert!(s.contains("window 1"));
        assert!(s.contains("w0: D."));
        assert!(s.contains("w1: .D"));
    }
}
