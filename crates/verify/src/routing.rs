//! Exhaustive routing model checker for the wormhole switch core.
//!
//! Two families of checks, both against the *real* production code:
//!
//! 1. **Escape-network acyclicity.** For every pod plan in a small-K
//!    sweep of [`fcc_fabric::pods::PodKind`] shapes, walk the escape
//!    route ([`PodPlan::escape_next_hop`]) from every switch to every
//!    edge switch and build the channel dependency graph: channel
//!    `(a, b)` depends on `(b, c)` when some escape route traverses `a ->
//!    b -> c`. Wormhole deadlock is a cycle of channel waits; because
//!    escape lane 0 admits only primary-route flits (see
//!    [`fcc_fabric::wormhole`]), an acyclic escape CDG plus Duato's
//!    argument gives deadlock freedom for the whole fabric. The check
//!    also proves every escape route terminates at its destination
//!    through real neighbor links.
//! 2. **Credit-ledger soundness.** An explicit-state exploration of the
//!    real [`VcLink`] ledger coupled to an abstract peer lane buffer:
//!    every interleaving of head/body/tail dispatches and credit returns
//!    (to a bounded depth) must keep conservation exact — no negative
//!    ledger, no credit minted past the cap, zero recorded violations.
//!
//! The `check-routing` binary sweeps the standard configurations and
//! writes a JSON verdict (with a counterexample cycle or operation trace
//! on failure) for the CI artifact.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use fcc_fabric::pods::{PodKind, PodPlan};
use fcc_fabric::wormhole::{VcConfig, VcLink};

/// A directed channel: one direction of a switch-to-switch cable.
pub type Channel = (usize, usize);

/// Why a routing check failed, with a minimal counterexample.
#[derive(Debug, Clone)]
pub enum RoutingViolation {
    /// An escape route did not terminate at its destination.
    BrokenEscape {
        /// Source switch.
        from: usize,
        /// Destination edge switch.
        to: usize,
        /// The (truncated) path walked.
        path: Vec<usize>,
    },
    /// An escape hop is not a physical neighbor link.
    NotANeighbor {
        /// Source switch of the offending route.
        from: usize,
        /// Destination edge switch.
        to: usize,
        /// The non-existent channel the route tried to use.
        hop: Channel,
    },
    /// The escape channel dependency graph has a cycle.
    CdgCycle {
        /// The channels of the cycle, in dependency order.
        cycle: Vec<Channel>,
        /// For each dependency in the cycle, one `(src, dst)` route pair
        /// that induces it.
        witnesses: Vec<(usize, usize)>,
    },
    /// The credit-ledger exploration hit a conservation violation.
    CreditModel {
        /// The operation trace reaching the bad state.
        trace: Vec<String>,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for RoutingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingViolation::BrokenEscape { from, to, path } => {
                write!(f, "escape route {from} -> {to} never arrives: {path:?}")
            }
            RoutingViolation::NotANeighbor { from, to, hop } => write!(
                f,
                "escape route {from} -> {to} uses non-link channel {hop:?}"
            ),
            RoutingViolation::CdgCycle { cycle, witnesses } => {
                writeln!(f, "escape channel dependency cycle:")?;
                for (ch, w) in cycle.iter().zip(witnesses) {
                    writeln!(f, "  channel {ch:?} (witness route {} -> {})", w.0, w.1)?;
                }
                Ok(())
            }
            RoutingViolation::CreditModel { trace, detail } => {
                writeln!(f, "credit ledger violation: {detail}")?;
                for op in trace {
                    writeln!(f, "  {op}")?;
                }
                Ok(())
            }
        }
    }
}

impl RoutingViolation {
    /// A JSON rendering for the CI counterexample artifact.
    pub fn to_json(&self) -> String {
        fn pairs(v: &[(usize, usize)]) -> String {
            let items: Vec<String> = v.iter().map(|(a, b)| format!("[{a},{b}]")).collect();
            format!("[{}]", items.join(","))
        }
        match self {
            RoutingViolation::BrokenEscape { from, to, path } => {
                let p: Vec<String> = path.iter().map(usize::to_string).collect();
                format!(
                    "{{\"kind\":\"broken_escape\",\"from\":{from},\"to\":{to},\"path\":[{}]}}",
                    p.join(",")
                )
            }
            RoutingViolation::NotANeighbor { from, to, hop } => format!(
                "{{\"kind\":\"not_a_neighbor\",\"from\":{from},\"to\":{to},\"hop\":[{},{}]}}",
                hop.0, hop.1
            ),
            RoutingViolation::CdgCycle { cycle, witnesses } => format!(
                "{{\"kind\":\"cdg_cycle\",\"cycle\":{},\"witnesses\":{}}}",
                pairs(cycle),
                pairs(witnesses)
            ),
            RoutingViolation::CreditModel { trace, detail } => {
                let ops: Vec<String> = trace.iter().map(|t| format!("\"{t}\"")).collect();
                format!(
                    "{{\"kind\":\"credit_model\",\"detail\":\"{detail}\",\"trace\":[{}]}}",
                    ops.join(",")
                )
            }
        }
    }
}

/// Statistics from a clean escape-CDG check.
#[derive(Debug, Clone, Copy, Default)]
pub struct CdgStats {
    /// Directed channels in the plan.
    pub channels: usize,
    /// Dependency edges induced by the escape routes.
    pub deps: usize,
    /// `(src, dst)` route pairs walked.
    pub routes: usize,
}

/// Finds a cycle in a dependency relation over channels, if any.
/// Returns the cycle's channels in order. Exposed for checker tests
/// (production plans should never produce one).
fn find_cycle(channels: &[Channel], deps: &BTreeMap<usize, BTreeSet<usize>>) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; channels.len()];
    // Iterative DFS keeping the grey path for cycle reconstruction.
    for root in 0..channels.len() {
        if color[root] != Color::White {
            continue;
        }
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(
            root,
            deps.get(&root)
                .map(|s| s.iter().rev().copied().collect())
                .unwrap_or_default(),
        )];
        color[root] = Color::Grey;
        let mut path = vec![root];
        while let Some((node, todo)) = stack.last_mut() {
            match todo.pop() {
                Some(next) => match color[next] {
                    Color::Grey => {
                        // Back edge: the cycle is the grey path from
                        // `next` to `node`.
                        let start = path.iter().position(|&n| n == next).unwrap_or(0);
                        return Some(path[start..].to_vec());
                    }
                    Color::White => {
                        color[next] = Color::Grey;
                        path.push(next);
                        let succ = deps
                            .get(&next)
                            .map(|s| s.iter().rev().copied().collect())
                            .unwrap_or_default();
                        stack.push((next, succ));
                    }
                    Color::Black => {}
                },
                None => {
                    color[*node] = Color::Black;
                    path.pop();
                    stack.pop();
                }
            }
        }
    }
    None
}

/// Checks one plan's escape network: routes terminate over real links
/// and the induced channel dependency graph is acyclic.
pub fn check_escape_acyclic(plan: &PodPlan) -> Result<CdgStats, RoutingViolation> {
    // Channel index: both directions of every cable.
    let mut channels: Vec<Channel> = Vec::new();
    for l in &plan.links {
        channels.push((l.a, l.b));
        channels.push((l.b, l.a));
    }
    channels.sort_unstable();
    channels.dedup();
    let index: BTreeMap<Channel, usize> =
        channels.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let mut deps: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    let mut witness: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
    let mut routes = 0usize;
    for s in 0..plan.switches.len() {
        for &e in &plan.edge_switches() {
            if s == e {
                continue;
            }
            routes += 1;
            let path = plan.escape_path(s, e);
            if path.last() != Some(&e) {
                return Err(RoutingViolation::BrokenEscape {
                    from: s,
                    to: e,
                    path,
                });
            }
            let hops: Vec<usize> = path
                .windows(2)
                .map(|w| index.get(&(w[0], w[1])).copied().ok_or((w[0], w[1])))
                .collect::<Result<_, _>>()
                .map_err(|hop| RoutingViolation::NotANeighbor {
                    from: s,
                    to: e,
                    hop,
                })?;
            for w in hops.windows(2) {
                if deps.entry(w[0]).or_default().insert(w[1]) {
                    witness.insert((w[0], w[1]), (s, e));
                }
            }
        }
    }
    match find_cycle(&channels, &deps) {
        None => Ok(CdgStats {
            channels: channels.len(),
            deps: deps.values().map(BTreeSet::len).sum(),
            routes,
        }),
        Some(cycle) => {
            let chans: Vec<Channel> = cycle.iter().map(|&i| channels[i]).collect();
            let witnesses = cycle
                .iter()
                .enumerate()
                .map(|(k, &i)| {
                    let j = cycle[(k + 1) % cycle.len()];
                    witness
                        .get(&(i, j))
                        .copied()
                        .unwrap_or((usize::MAX, usize::MAX))
                })
                .collect();
            Err(RoutingViolation::CdgCycle {
                cycle: chans,
                witnesses,
            })
        }
    }
}

/// Statistics from a clean credit-ledger exploration.
#[derive(Debug, Clone, Copy, Default)]
pub struct LedgerStats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken.
    pub transitions: usize,
}

/// State of the ledger model: the real [`VcLink`] is re-derived from the
/// abstract state on every step, so only the abstract part is hashed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct LedgerState {
    /// Per-lane flits in flight (sent, credit not yet returned).
    in_flight: Vec<u32>,
    /// Per-lane holder (worm id), if held.
    holder: Vec<Option<u64>>,
    /// Per-worm flits still to send (worms are two-flit transfers).
    remaining: Vec<u32>,
}

/// Exhaustively explores every interleaving of worm dispatches and
/// credit returns over the real [`VcLink`] ledger, to `depth` operations
/// deep, asserting conservation after every step.
pub fn check_credit_ledger(
    cfg: VcConfig,
    worms: u32,
    depth: usize,
) -> Result<LedgerStats, RoutingViolation> {
    let lanes = usize::from(cfg.vcs.max(2));
    let init = LedgerState {
        in_flight: vec![0; lanes],
        holder: vec![None; lanes],
        remaining: vec![2; worms as usize],
    };
    let mut seen: BTreeSet<LedgerState> = BTreeSet::new();
    let mut stats = LedgerStats::default();
    // DFS over (state, trace depth). The trace is rebuilt on demand by
    // carrying it alongside.
    let mut stack: Vec<(LedgerState, Vec<String>)> = vec![(init.clone(), Vec::new())];
    seen.insert(init);
    while let Some((state, trace)) = stack.pop() {
        stats.states += 1;
        // Re-derive the real ledger from the abstract state and audit it:
        // conservation must hold in *every* reachable state.
        let mut link = VcLink::new(cfg);
        for (v, (&fl, &h)) in state.in_flight.iter().zip(&state.holder).enumerate() {
            for _ in 0..fl {
                if !link.can_send(v as u8) {
                    return Err(RoutingViolation::CreditModel {
                        trace,
                        detail: format!("lane {v} oversubscribed: {fl} > cap {}", cfg.buf_flits),
                    });
                }
                link.consume(v as u8, h.unwrap_or(0));
            }
            if h.is_none() {
                link.release(v as u8);
            }
        }
        if link.violations > 0 {
            return Err(RoutingViolation::CreditModel {
                trace,
                detail: format!("{} violations replaying state {state:?}", link.violations),
            });
        }
        let conserved = link
            .lanes
            .iter()
            .enumerate()
            .all(|(v, l)| l.credits + state.in_flight[v] == l.cap);
        if !conserved {
            return Err(RoutingViolation::CreditModel {
                trace,
                detail: format!("credits + in_flight != cap in {state:?}"),
            });
        }
        if trace.len() >= depth {
            continue;
        }
        let mut push = |next: LedgerState, op: String, stack: &mut Vec<_>| {
            stats.transitions += 1;
            if seen.insert(next.clone()) {
                let mut t = trace.clone();
                t.push(op);
                stack.push((next, t));
            }
        };
        // Dispatch moves: each live worm may send its next flit on any
        // lane the real allocator would grant it.
        for (w, &rem) in state.remaining.iter().enumerate() {
            if rem == 0 {
                continue;
            }
            let worm = w as u64 + 1;
            for (v, &h) in state.holder.iter().enumerate() {
                let fits = state.in_flight[v] < cfg.buf_flits;
                let mine = h.is_none() || h == Some(worm);
                // Lane 0 stands in for the escape VC: only worm 1's route
                // is "primary" in this abstract model.
                let escape_ok = v > 0 || worm == 1;
                if !(fits && mine && escape_ok) {
                    continue;
                }
                let mut next = state.clone();
                next.in_flight[v] += 1;
                next.remaining[w] -= 1;
                next.holder[v] = if next.remaining[w] == 0 {
                    None
                } else {
                    Some(worm)
                };
                push(next, format!("worm {worm} sends on lane {v}"), &mut stack);
            }
        }
        // Credit returns: the peer drains one flit from any lane.
        for v in 0..lanes {
            if state.in_flight[v] == 0 {
                continue;
            }
            let mut next = state.clone();
            next.in_flight[v] -= 1;
            push(next, format!("peer returns credit on lane {v}"), &mut stack);
        }
    }
    Ok(stats)
}

/// The small-K plan sweep the `check-routing` binary proves acyclic:
/// every spine-leaf shape to 4x3, every mesh and torus to 4x4.
pub fn standard_plans() -> Vec<(String, PodPlan)> {
    let mut out = Vec::new();
    for spines in 1..=4 {
        for lps in 1..=3 {
            out.push((
                format!("spine-leaf {spines}x{lps}"),
                PodPlan::new(
                    PodKind::SpineLeaf {
                        spines,
                        leaves_per_spine: lps,
                    },
                    1,
                    1,
                ),
            ));
        }
    }
    for cols in 1..=4 {
        for rows in 1..=4 {
            out.push((
                format!("mesh {cols}x{rows}"),
                PodPlan::new(PodKind::Mesh { cols, rows }, 1, 1),
            ));
            out.push((
                format!("torus {cols}x{rows}"),
                PodPlan::new(PodKind::Torus { cols, rows }, 1, 1),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_sweep_is_acyclic() {
        for (label, plan) in standard_plans() {
            let stats = check_escape_acyclic(&plan);
            assert!(stats.is_ok(), "{label}: {:?}", stats.err());
        }
    }

    #[test]
    fn cycle_detector_finds_a_planted_ring() {
        // Channels 0 -> 1 -> 2 -> 0: a wait cycle the detector must find.
        let channels = vec![(0usize, 1usize), (1, 2), (2, 0)];
        let mut deps: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        deps.entry(0).or_default().insert(1);
        deps.entry(1).or_default().insert(2);
        deps.entry(2).or_default().insert(0);
        let cycle = find_cycle(&channels, &deps).expect("ring found");
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn credit_model_is_conservation_clean() {
        let stats = check_credit_ledger(
            VcConfig {
                vcs: 2,
                buf_flits: 2,
            },
            2,
            8,
        )
        .expect("ledger clean");
        assert!(stats.states > 50, "nontrivial exploration: {stats:?}");
    }

    #[test]
    fn violations_render_as_json() {
        let v = RoutingViolation::CdgCycle {
            cycle: vec![(0, 1), (1, 0)],
            witnesses: vec![(0, 1), (1, 0)],
        };
        let json = v.to_json();
        assert!(json.contains("\"cdg_cycle\""), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    }
}
