//! Explicit-state model checking of the CC-NUMA coherence protocol.
//!
//! The checker enumerates, breadth-first, every reachable state of a
//! small system — `hosts` coherent caches sharing `lines` cache lines
//! behind one full-map directory — under all interleavings of:
//!
//! - hosts issuing loads and stores (up to `ops_per_host` each),
//! - hosts evicting lines they hold (clean or dirty),
//! - in-order delivery of each host↔directory message channel.
//!
//! The host half of every transition is executed by
//! [`fcc_cache::protocol`] — the same functions `CoherentL1` runs in
//! the simulator — and the directory half by the real
//! [`fcc_memnode::directory::Directory`], including its `Busy`
//! deferral behavior as implemented by `DirectoryNode`. The model
//! contributes only what the fabric contributes in the simulator:
//! FIFO message channels and the interleaving of deliveries.
//!
//! On every reachable state the checker asserts:
//!
//! 1. **SWMR** — at most one host holds a line `Modified`, and never
//!    concurrently with another host's `Shared` copy.
//! 2. **Freshness** — every valid copy carries the globally latest
//!    committed store version (no stale read after an invalidation).
//! 3. **Directory soundness** — the directory's own
//!    [`check_swmr`](Directory::check_swmr), plus, in quiescent
//!    states, exact agreement between the directory's sharer/owner
//!    bookkeeping and the hosts' actual line states.
//! 4. **Deadlock freedom** — every non-quiescent state has at least
//!    one enabled transition.
//!
//! A violation is reported with the complete transition trace from the
//! initial state. [`Mutation`]s deliberately break the protocol to
//! prove the checker catches both safety ([`Mutation::DropInvalidate`])
//! and liveness ([`Mutation::LoseGrant`]) violations.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use fcc_cache::protocol::{self, HostLineState};
use fcc_memnode::directory::{DirOutcome, Directory, Grant, LineState, SnoopKind};
use fcc_proto::addr::NodeId;
use fcc_proto::channel::CacheOpcode;

/// A checker configuration: the system size and op budget to explore.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of coherent hosts (2–3 is exhaustive in seconds).
    pub hosts: usize,
    /// Number of distinct cache lines.
    pub lines: usize,
    /// Loads/stores each host may issue along one execution.
    pub ops_per_host: u8,
    /// Optional protocol fault injected to demonstrate detection.
    pub mutation: Option<Mutation>,
}

impl Config {
    /// A named configuration with no fault injection.
    pub fn new(hosts: usize, lines: usize, ops_per_host: u8) -> Self {
        Config {
            hosts,
            lines,
            ops_per_host,
            mutation: None,
        }
    }
}

/// A deliberate protocol fault, used to validate the checker itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Hosts acknowledge `SnpInv` but keep their copy — breaks SWMR
    /// and freshness (a stale read becomes reachable).
    DropInvalidate,
    /// The directory resolves requests but the grant message is lost —
    /// the requester waits forever (a deadlock becomes reachable).
    LoseGrant,
}

/// Summary of a successful exhaustive run.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Distinct reachable states visited.
    pub states: usize,
    /// Transitions executed (including ones reaching known states).
    pub transitions: u64,
    /// Longest BFS depth (transitions from the initial state).
    pub depth: usize,
}

/// An invariant violation with its full counterexample trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: String,
    /// Human-readable dump of the violating state.
    pub state: String,
    /// Every transition from the initial state to the violation.
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.invariant)?;
        writeln!(f, "trace ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:3}. {step}", i + 1)?;
        }
        write!(f, "state: {}", self.state)
    }
}

impl std::error::Error for Violation {}

/// A message in flight between a host and the directory.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Msg {
    /// Host → directory: a read (`RdShared`) or ownership (`RdOwn`)
    /// request for a line.
    Req { line: usize, write: bool },
    /// Host → directory: an eviction notice (dirty = writeback).
    Evict { line: usize, dirty: bool },
    /// Host → directory: response to a snoop (dirty = data forwarded).
    SnoopRsp { line: usize, dirty: bool },
    /// Directory → host: a snoop.
    Snoop { line: usize, kind: SnoopKind },
    /// Directory → host: the grant completing the host's request,
    /// carrying the data version current at grant time.
    Grant {
        line: usize,
        grant: Grant,
        version: u32,
    },
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Msg::Req { line, write: true } => write!(f, "RdOwn(line {line})"),
            Msg::Req { line, write: false } => write!(f, "RdShared(line {line})"),
            Msg::Evict { line, dirty: true } => write!(f, "DirtyEvict(line {line})"),
            Msg::Evict { line, dirty: false } => write!(f, "CleanEvict(line {line})"),
            Msg::SnoopRsp { line, dirty } => write!(f, "SnoopRsp(line {line}, dirty={dirty})"),
            Msg::Snoop { line, kind } => write!(f, "{kind:?}Snoop(line {line})"),
            Msg::Grant {
                line,
                grant,
                version,
            } => write!(f, "Grant({grant:?}, line {line}, v{version})"),
        }
    }
}

/// One host's protocol-visible state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Host {
    /// Per-line copy: state plus the data version it carries.
    lines: Vec<Option<(HostLineState, u32)>>,
    /// The single outstanding miss (line, is-store), if any.
    outstanding: Option<(usize, bool)>,
    /// Loads/stores this host may still start.
    budget: u8,
}

/// The full model state.
#[derive(Debug, Clone)]
struct State {
    hosts: Vec<Host>,
    dir: Directory,
    /// FIFO channels host → directory, one per host.
    h2d: Vec<VecDeque<Msg>>,
    /// FIFO channels directory → host, one per host.
    d2h: Vec<VecDeque<Msg>>,
    /// Requests the directory bounced `Busy`, queued per line in
    /// arrival order (mirrors `DirectoryNode::deferred`).
    deferred: Vec<VecDeque<(usize, bool)>>,
    /// Globally latest committed store version per line.
    latest: Vec<u32>,
}

/// Hashable identity of a state (directory via its canonical
/// snapshot, which excludes statistics counters).
type StateKey = (
    Vec<Host>,
    Vec<(u64, LineState, Option<(NodeId, Grant, Vec<NodeId>, bool)>)>,
    Vec<VecDeque<Msg>>,
    Vec<VecDeque<Msg>>,
    Vec<VecDeque<(usize, bool)>>,
    Vec<u32>,
);

const LINE_BYTES: u64 = 64;

fn nid(host: usize) -> NodeId {
    NodeId(1 + host as u16)
}

fn host_of(n: NodeId) -> usize {
    (n.0 - 1) as usize
}

fn addr(line: usize) -> u64 {
    line as u64 * LINE_BYTES
}

impl State {
    fn initial(cfg: &Config) -> State {
        State {
            hosts: vec![
                Host {
                    lines: vec![None; cfg.lines],
                    outstanding: None,
                    budget: cfg.ops_per_host,
                };
                cfg.hosts
            ],
            dir: Directory::new(),
            h2d: vec![VecDeque::new(); cfg.hosts],
            d2h: vec![VecDeque::new(); cfg.hosts],
            deferred: vec![VecDeque::new(); cfg.lines],
            latest: vec![0; cfg.lines],
        }
    }

    fn key(&self) -> StateKey {
        (
            self.hosts.clone(),
            self.dir.canonical(),
            self.h2d.clone(),
            self.d2h.clone(),
            self.deferred.clone(),
            self.latest.clone(),
        )
    }

    /// Nothing in flight, nothing outstanding, nothing deferred.
    fn quiescent(&self, cfg: &Config) -> bool {
        self.h2d.iter().all(VecDeque::is_empty)
            && self.d2h.iter().all(VecDeque::is_empty)
            && self.hosts.iter().all(|h| h.outstanding.is_none())
            && self.deferred.iter().all(VecDeque::is_empty)
            && (0..cfg.lines).all(|l| !self.dir.is_busy(addr(l)))
    }

    fn dump(&self) -> String {
        let mut s = String::new();
        for (i, h) in self.hosts.iter().enumerate() {
            s.push_str(&format!(
                "\n  host {i}: lines={:?} outstanding={:?} budget={}",
                h.lines, h.outstanding, h.budget
            ));
        }
        s.push_str(&format!("\n  directory: {:?}", self.dir.canonical()));
        s.push_str(&format!("\n  latest versions: {:?}", self.latest));
        for (i, q) in self.h2d.iter().enumerate() {
            if !q.is_empty() {
                s.push_str(&format!("\n  h2d[{i}]: {q:?}"));
            }
        }
        for (i, q) in self.d2h.iter().enumerate() {
            if !q.is_empty() {
                s.push_str(&format!("\n  d2h[{i}]: {q:?}"));
            }
        }
        for (l, q) in self.deferred.iter().enumerate() {
            if !q.is_empty() {
                s.push_str(&format!("\n  deferred[line {l}]: {q:?}"));
            }
        }
        s
    }
}

/// One enabled transition out of a state.
enum Step {
    /// Host starts a load/store on a line.
    Access {
        host: usize,
        line: usize,
        write: bool,
    },
    /// Host evicts a held line.
    Evict { host: usize, line: usize },
    /// Deliver the head of `h2d[host]` to the directory.
    ToDir { host: usize },
    /// Deliver the head of `d2h[host]` to the host.
    ToHost { host: usize },
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Access {
                host,
                line,
                write: true,
            } => write!(f, "host {host} stores to line {line}"),
            Step::Access {
                host,
                line,
                write: false,
            } => write!(f, "host {host} loads line {line}"),
            Step::Evict { host, line } => write!(f, "host {host} evicts line {line}"),
            Step::ToDir { host } => write!(f, "deliver host {host} → directory"),
            Step::ToHost { host } => write!(f, "deliver directory → host {host}"),
        }
    }
}

/// The checker: BFS over the induced transition system.
struct Checker<'a> {
    cfg: &'a Config,
}

impl Checker<'_> {
    fn enabled(&self, s: &State) -> Vec<Step> {
        let mut steps = Vec::new();
        for (hi, h) in s.hosts.iter().enumerate() {
            if h.outstanding.is_none() && h.budget > 0 {
                for line in 0..self.cfg.lines {
                    for write in [false, true] {
                        steps.push(Step::Access {
                            host: hi,
                            line,
                            write,
                        });
                    }
                }
            }
            for line in 0..self.cfg.lines {
                // CoherentL1 only evicts lines without an outstanding
                // request (an upgrade in flight pins its Shared copy).
                if h.lines[line].is_some() && h.outstanding.map(|(l, _)| l) != Some(line) {
                    steps.push(Step::Evict { host: hi, line });
                }
            }
            if !s.h2d[hi].is_empty() {
                steps.push(Step::ToDir { host: hi });
            }
            if !s.d2h[hi].is_empty() {
                steps.push(Step::ToHost { host: hi });
            }
        }
        steps
    }

    /// Issues a grant for a resolved request, honoring `LoseGrant`.
    fn push_grant(&self, s: &mut State, to: usize, line: usize, grant: Grant) {
        if self.cfg.mutation == Some(Mutation::LoseGrant) {
            return;
        }
        let version = s.latest[line];
        s.d2h[to].push_back(Msg::Grant {
            line,
            grant,
            version,
        });
    }

    /// Feeds one request into the real directory and routes the
    /// resulting snoops/grant; `Busy` requests join the deferred
    /// queue exactly as `DirectoryNode` defers them.
    fn dir_request(&self, s: &mut State, host: usize, line: usize, write: bool) -> bool {
        let outcome = if write {
            s.dir.write(addr(line), nid(host))
        } else {
            s.dir.read(addr(line), nid(host))
        };
        match outcome {
            DirOutcome::Ready(g) => {
                self.push_grant(s, host, line, g);
                false
            }
            DirOutcome::Wait(snoops) => {
                for (node, kind) in snoops {
                    s.d2h[host_of(node)].push_back(Msg::Snoop { line, kind });
                }
                true
            }
            DirOutcome::Busy => {
                s.deferred[line].push_back((host, write));
                false
            }
        }
    }

    /// Retries deferred requests for a line until one blocks again.
    fn retry_deferred(&self, s: &mut State, line: usize) {
        while let Some((host, write)) = s.deferred[line].pop_front() {
            if self.dir_request(s, host, line, write) {
                break;
            }
        }
    }

    /// Applies `step`, returning an in-step violation message if the
    /// transition itself is ill-formed.
    fn apply(&self, s: &mut State, step: &Step) -> Result<(), String> {
        match *step {
            Step::Access { host, line, write } => {
                let h = &mut s.hosts[host];
                h.budget -= 1;
                let state = h.lines[line].map(|(st, _)| st);
                // Real host-side hit/miss classification.
                if protocol::access_hits(state, write) {
                    if write {
                        s.latest[line] += 1;
                        h.lines[line] = Some((HostLineState::Modified, s.latest[line]));
                    }
                } else {
                    h.outstanding = Some((line, write));
                    s.h2d[host].push_back(Msg::Req { line, write });
                }
            }
            Step::Evict { host, line } => {
                let h = &mut s.hosts[host];
                let Some((state, _)) = h.lines[line].take() else {
                    return Err(format!("host {host} evicting line {line} it does not hold"));
                };
                // Real host-side eviction classification.
                let (op, bytes) = protocol::evict_op(state);
                debug_assert!(matches!(
                    op,
                    CacheOpcode::DirtyEvict | CacheOpcode::CleanEvict
                ));
                s.h2d[host].push_back(Msg::Evict {
                    line,
                    dirty: bytes > 0,
                });
            }
            Step::ToDir { host } => {
                let Some(msg) = s.h2d[host].pop_front() else {
                    return Err(format!("delivery from empty channel h2d[{host}]"));
                };
                match msg {
                    Msg::Req { line, write } => {
                        self.dir_request(s, host, line, write);
                    }
                    Msg::Evict { line, .. } => {
                        s.dir.evict(addr(line), nid(host));
                    }
                    Msg::SnoopRsp { line, dirty } => {
                        if let Some((req, grant, _dirty)) =
                            s.dir.snoop_response(addr(line), nid(host), dirty)
                        {
                            self.push_grant(s, host_of(req), line, grant);
                            self.retry_deferred(s, line);
                        }
                    }
                    other => return Err(format!("directory received host message {other}")),
                }
            }
            Step::ToHost { host } => {
                let Some(msg) = s.d2h[host].pop_front() else {
                    return Err(format!("delivery from empty channel d2h[{host}]"));
                };
                match msg {
                    Msg::Snoop { line, kind } => {
                        let op = match kind {
                            SnoopKind::Invalidate => CacheOpcode::SnpInv,
                            SnoopKind::Data => CacheOpcode::SnpData,
                        };
                        let held = s.hosts[host].lines[line];
                        // Real host-side snoop transition.
                        let Some((next, _rsp, bytes)) =
                            protocol::snoop_transition(held.map(|(st, _)| st), op)
                        else {
                            return Err(format!("{op:?} is not a snoop"));
                        };
                        let keep_copy = self.cfg.mutation == Some(Mutation::DropInvalidate)
                            && kind == SnoopKind::Invalidate;
                        if !keep_copy {
                            s.hosts[host].lines[line] =
                                next.map(|st| (st, held.map(|(_, v)| v).unwrap_or(0)));
                        }
                        s.h2d[host].push_back(Msg::SnoopRsp {
                            line,
                            dirty: !keep_copy && bytes > 0,
                        });
                    }
                    // The fill state follows the request (as in
                    // `CoherentL1::on_completion`), not the grant kind.
                    Msg::Grant { line, version, .. } => {
                        let h = &mut s.hosts[host];
                        match h.outstanding.take() {
                            Some((l, write)) if l == line => {
                                // Real host-side fill rule.
                                let filled = protocol::fill_state(write);
                                let v = if write {
                                    s.latest[line] += 1;
                                    s.latest[line]
                                } else {
                                    version
                                };
                                h.lines[line] = Some((filled, v));
                            }
                            other => {
                                h.outstanding = other;
                                return Err(format!(
                                    "host {host} got grant for line {line} with outstanding {other:?}"
                                ));
                            }
                        }
                    }
                    other => return Err(format!("host received directory message {other}")),
                }
            }
        }
        Ok(())
    }

    /// Checks all state invariants; returns the failing one, if any.
    fn check_state(&self, s: &State) -> Option<String> {
        for line in 0..self.cfg.lines {
            let copies: Vec<_> = s
                .hosts
                .iter()
                .enumerate()
                .filter_map(|(i, h)| h.lines[line].map(|(st, v)| (i, st, v)))
                .collect();
            // 1. Single writer / multiple readers.
            let writers = copies
                .iter()
                .filter(|(_, st, _)| *st == HostLineState::Modified)
                .count();
            if writers > 1 || (writers == 1 && copies.len() > 1) {
                return Some(format!(
                    "SWMR violated on line {line}: copies {copies:?} (host, state, version)"
                ));
            }
            // 2. Freshness: every valid copy is the latest committed
            //    version — a stale copy means an invalidation was lost.
            for &(host, st, v) in &copies {
                if v != s.latest[line] {
                    return Some(format!(
                        "stale copy on line {line}: host {host} holds {st:?} v{v}, \
                         latest committed is v{}",
                        s.latest[line]
                    ));
                }
            }
        }
        // 3a. The directory's own bookkeeping invariant.
        if !s.dir.check_swmr() {
            return Some("directory SWMR bookkeeping violated".into());
        }
        // 3b. In quiescent states the directory must agree exactly
        //     with the hosts.
        if s.quiescent(self.cfg) {
            for line in 0..self.cfg.lines {
                let holders: Vec<_> = s
                    .hosts
                    .iter()
                    .enumerate()
                    .filter_map(|(i, h)| h.lines[line].map(|(st, _)| (i, st)))
                    .collect();
                let dir_state = s.dir.state(addr(line));
                let agree = match &dir_state {
                    LineState::Uncached => holders.is_empty(),
                    LineState::Shared(set) => {
                        holders.iter().all(|(_, st)| *st == HostLineState::Shared)
                            && holders.len() == set.len()
                            && holders.iter().all(|(i, _)| set.contains(&nid(*i)))
                    }
                    LineState::Modified(owner) => {
                        holders.len() == 1
                            && holders[0] == (host_of(*owner), HostLineState::Modified)
                    }
                };
                if !agree {
                    return Some(format!(
                        "directory–cache disagreement on line {line}: \
                         directory says {dir_state:?}, hosts hold {holders:?}"
                    ));
                }
            }
        }
        None
    }

    fn violation(
        &self,
        invariant: String,
        state: &State,
        key: &StateKey,
        parents: &HashMap<StateKey, (StateKey, String)>,
    ) -> Box<Violation> {
        let mut trace = Vec::new();
        let mut cur = key.clone();
        while let Some((prev, step)) = parents.get(&cur) {
            trace.push(step.clone());
            cur = prev.clone();
        }
        trace.reverse();
        Box::new(Violation {
            invariant,
            state: state.dump(),
            trace,
        })
    }
}

/// Exhaustively explores `cfg`, returning exploration statistics, or
/// the first invariant violation found (with its shortest trace —
/// BFS order guarantees minimal counterexamples).
pub fn check(cfg: &Config) -> Result<Report, Box<Violation>> {
    let checker = Checker { cfg };
    let initial = State::initial(cfg);
    let initial_key = initial.key();
    let mut parents: HashMap<StateKey, (StateKey, String)> = HashMap::new();
    let mut seen: HashMap<StateKey, usize> = HashMap::new();
    seen.insert(initial_key.clone(), 0);
    let mut frontier = VecDeque::from([(initial, initial_key)]);
    let mut transitions = 0u64;
    let mut depth = 0usize;

    while let Some((state, key)) = frontier.pop_front() {
        let d = seen.get(&key).copied().unwrap_or(0);
        depth = depth.max(d);
        if let Some(inv) = checker.check_state(&state) {
            return Err(checker.violation(inv, &state, &key, &parents));
        }
        let steps = checker.enabled(&state);
        // 4. Deadlock freedom: a non-quiescent state must be able to
        //    make progress.
        if steps.is_empty() && !state.quiescent(cfg) {
            return Err(checker.violation(
                "deadlock: in-flight work but no enabled transition".into(),
                &state,
                &key,
                &parents,
            ));
        }
        for step in steps {
            transitions += 1;
            let mut next = state.clone();
            if let Err(msg) = checker.apply(&mut next, &step) {
                let mut v = checker.violation(msg, &next, &key, &parents);
                v.trace.push(step.to_string());
                return Err(v);
            }
            let next_key = next.key();
            if !seen.contains_key(&next_key) {
                seen.insert(next_key.clone(), d + 1);
                parents.insert(next_key.clone(), (key.clone(), step.to_string()));
                frontier.push_back((next, next_key));
            }
        }
    }

    Ok(Report {
        states: seen.len(),
        transitions,
        depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_hosts_one_line_is_clean() {
        let report = check(&Config::new(2, 1, 2)).expect("protocol is correct");
        assert!(report.states > 100, "got {} states", report.states);
    }

    #[test]
    fn dropped_invalidation_is_caught_with_trace() {
        let mut cfg = Config::new(2, 1, 2);
        cfg.mutation = Some(Mutation::DropInvalidate);
        let v = check(&cfg).expect_err("mutation must be detected");
        assert!(
            v.invariant.contains("SWMR") || v.invariant.contains("stale"),
            "unexpected invariant: {}",
            v.invariant
        );
        assert!(!v.trace.is_empty(), "counterexample must carry a trace");
        // The trace renders end to end.
        let rendered = v.to_string();
        assert!(rendered.contains("trace ("));
    }

    #[test]
    fn lost_grant_deadlocks() {
        let mut cfg = Config::new(2, 1, 1);
        cfg.mutation = Some(Mutation::LoseGrant);
        let v = check(&cfg).expect_err("lost grants must deadlock");
        assert!(v.invariant.contains("deadlock"), "got: {}", v.invariant);
    }
}
