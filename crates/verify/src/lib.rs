//! Verification harnesses for the FCC protocol stack.
//!
//! This crate contains tooling that checks the simulator's protocol
//! engines rather than simulating with them:
//!
//! - [`coherence`] — an explicit-state model checker that drives the
//!   *real* host-side MESI transition rules ([`fcc_cache::protocol`])
//!   and the *real* full-map directory ([`fcc_memnode::directory`])
//!   through every interleaving of loads, stores, evictions and snoop
//!   deliveries that small configurations admit, asserting coherence
//!   safety and deadlock freedom on every reachable state.
//! - [`reconfig`] — an explicit-state checker for the epoch-based
//!   reconfiguration protocol ([`fcc_elastic::epoch`]): it interleaves
//!   every hot-add / hot-remove plan step with in-flight fabric traffic
//!   and proves no flit is dropped at a missing route or delivered to a
//!   detached port, printing a minimal counterexample when a plan is
//!   unsafe.
//! - [`routing`] — a routing model checker for the wormhole switch core:
//!   it proves the escape-VC channel dependency graph of every small-K
//!   pod plan ([`fcc_fabric::pods`]) acyclic — the load-bearing premise
//!   of the switch's Duato-style deadlock-freedom argument — and
//!   explores the real per-VC credit ledger through every bounded
//!   dispatch/return interleaving, asserting exact conservation.
//! - [`sched`] — an exhaustive isolation checker for the fabric QoS
//!   scheduler ([`fcc_sched`]): it drives the real credit-partition
//!   ledger through every small-K per-window demand schedule and proves
//!   a saturating hog can never starve a floor-holding tenant, the
//!   per-tenant ledgers stay conservation-clean, and the partition is
//!   work-conserving.
//!
//! The `check-coherence`, `check-reconfig`, `check-sched` and
//! `check-routing` binaries
//! run the standard configurations and exit non-zero (printing a full
//! counterexample trace) on any violation; `scripts/check.sh` wires
//! them into the repo's verification gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coherence;
pub mod reconfig;
pub mod routing;
pub mod sched;
