//! Verification harnesses for the FCC protocol stack.
//!
//! This crate contains tooling that checks the simulator's protocol
//! engines rather than simulating with them:
//!
//! - [`coherence`] — an explicit-state model checker that drives the
//!   *real* host-side MESI transition rules ([`fcc_cache::protocol`])
//!   and the *real* full-map directory ([`fcc_memnode::directory`])
//!   through every interleaving of loads, stores, evictions and snoop
//!   deliveries that small configurations admit, asserting coherence
//!   safety and deadlock freedom on every reachable state.
//!
//! The `check-coherence` binary runs the standard configurations and
//! exits non-zero (printing a full message trace) on any violation;
//! `scripts/check.sh` wires it into the repo's verification gate.

#![warn(missing_docs)]

pub mod coherence;
