//! Integration tests for the parallel experiment runner: a `--jobs N`
//! run must assemble into exactly the bytes a serial run produces, for
//! every export (report text, scalar JSON, Chrome trace, metrics).
//!
//! Scenarios are isolated (own `Engine`s, own `Capture`, seed-derived
//! RNG streams) and the harness reassembles outputs in scenario order,
//! so thread scheduling must be unobservable. These tests pin that.

use fcc_bench::capture::Capture;
use fcc_bench::harness::{perf_json, results_json, run_ids, ScenarioOutput};

/// A mixed bag of cheap scenarios: traced (t2, e3d) and untraced (t1,
/// e6, e10), in non-alphabetical order to catch accidental sorting.
fn ids() -> Vec<String> {
    ["t2", "t1", "e3d", "e10", "e6"]
        .iter()
        .map(ToString::to_string)
        .collect()
}

/// Reassembles outputs exactly the way the `experiments` binary does:
/// concatenated report text, scalar JSON, absorbed trace JSON, merged
/// metrics JSON.
fn assemble(outputs: Vec<ScenarioOutput>) -> (String, String, String, String) {
    let text: String = outputs.iter().map(|o| o.text.as_str()).collect();
    let results: Vec<_> = outputs
        .iter()
        .map(|o| (o.id.clone(), o.scalars.clone()))
        .collect();
    let mut cap = Capture::recording();
    for o in outputs {
        cap.metrics.merge(&o.metrics);
        if let Some(dump) = o.trace {
            cap.sink.absorb(dump);
        }
    }
    (
        text,
        results_json(&results),
        cap.sink.to_chrome_json(),
        cap.metrics.to_json(),
    )
}

#[test]
fn parallel_run_is_byte_identical_to_serial() {
    let serial = assemble(run_ids(&ids(), true, 0, 1, true, 1));
    let parallel = assemble(run_ids(&ids(), true, 0, 4, true, 1));
    assert_eq!(serial.0, parallel.0, "report text differs");
    assert_eq!(serial.1, parallel.1, "scalar JSON differs");
    assert_eq!(serial.2, parallel.2, "trace JSON differs");
    assert_eq!(serial.3, parallel.3, "metrics JSON differs");
}

#[test]
fn parallel_run_is_byte_identical_under_a_nonzero_seed() {
    let serial = assemble(run_ids(&ids(), true, 42, 1, true, 1));
    let parallel = assemble(run_ids(&ids(), true, 42, 3, true, 1));
    assert_eq!(serial, parallel);
}

#[test]
fn outputs_come_back_in_request_order_with_perf_samples() {
    let outputs = run_ids(&ids(), true, 0, 4, false, 1);
    let got: Vec<&str> = outputs.iter().map(|o| o.id.as_str()).collect();
    assert_eq!(got, ["t2", "t1", "e3d", "e10", "e6"]);
    // Scenarios that drive a DES engine report a nonzero event count
    // (t1 is a pure table and e6 an analytic model — no engine).
    for o in &outputs {
        if matches!(o.id.as_str(), "t2" | "e3d" | "e10") {
            assert!(o.perf.events > 0, "{} reported no events", o.id);
        }
        assert!(o.perf.wall_ms >= 0.0);
    }
    // The perf export covers every scenario, in order.
    let entries: Vec<_> = outputs.iter().map(|o| (o.id.clone(), o.perf)).collect();
    let perf = perf_json(&entries);
    let mut last = 0;
    for id in ["t2", "t1", "e3d", "e10", "e6"] {
        let pos = perf.find(&format!("\"{id}\"")).expect("id in perf JSON");
        assert!(pos > last || last == 0, "{id} out of order in perf JSON");
        last = pos;
    }
}
