//! End-to-end isolation test for the fabric-resident QoS scheduler: a
//! hog and a victim share one switch and one device, and installing a
//! [`fcc_sched::FabricScheduler`] at the switch must (a) contain the
//! hog to its partition, (b) restore the victim's latency, and (c) keep
//! the per-tenant ledger audit clean. This drives the full stack —
//! LoadGen → FHA → switch admission gate → device — rather than the
//! partition in isolation (the `fcc-sched` unit tests and `check-sched`
//! model checker cover that).

use fcc_bench::loadgen::{AddrPattern, LoadCfg, LoadGen, StartLoad};
use fcc_fabric::endpoint::{Endpoint, PipelinedMemory};
use fcc_fabric::switch::{FabricSwitch, QueueDiscipline};
use fcc_fabric::topology::{single_switch, TopologySpec};
use fcc_sched::{CreditPartition, FabricScheduler, TenantShare};
use fcc_sim::{Engine, SimTime};

const HORIZON_US: f64 = 30.0;

struct Outcome {
    victim_p99_ns: f64,
    victim_ops: u64,
    hog_ops: u64,
    audit_findings: usize,
    admitted: u64,
}

fn device() -> Box<dyn Endpoint> {
    Box::new(
        PipelinedMemory::new(
            SimTime::from_ns(200.0),
            SimTime::from_ns(220.0),
            SimTime::from_ns(40.0),
            1 << 30,
        )
        .with_gap_per_byte(0.06),
    )
}

/// Runs hog-vs-victim on one switch, optionally governed.
fn run(scheduled: bool) -> Outcome {
    let mut engine = Engine::new(0x150);
    // FIFO ingress + a deep FHA window is the pathological ungoverned
    // configuration (the same one E3x uses): the hog can keep dozens of
    // 4 KiB writes queued at the shared device.
    let mut spec = TopologySpec::default();
    spec.switch.queueing = QueueDiscipline::Fifo;
    spec.fha_outstanding = 128;
    let topo = single_switch(&mut engine, spec, 2, vec![device()]);
    let range = topo.device().range;
    let sw = topo.switches[0];
    if scheduled {
        let mut part = CreditPartition::new(24);
        // Victim: latency-sensitive, floored. Hog: one weight share.
        part.add_tenant(
            0,
            TenantShare {
                group: 0,
                weight: 8,
                floor: 4,
            },
        );
        part.add_tenant(
            1,
            TenantShare {
                group: 1,
                weight: 1,
                floor: 1,
            },
        );
        let mut sched = FabricScheduler::new(part, SimTime::from_us(1.0));
        sched.map_node(topo.hosts[0].node, 0);
        sched.map_node(topo.hosts[1].node, 1);
        engine
            .component_mut::<FabricSwitch>(sw)
            .install_scheduler(sched);
    }
    let horizon = SimTime::from_us(HORIZON_US);
    let mk = |fha, op_bytes, window| LoadCfg {
        fha,
        base: range.base,
        len: 1 << 20,
        op_bytes,
        write: true,
        window,
        count: None,
        stop_at: horizon,
        pattern: AddrPattern::Sequential,
    };
    // The victim issues shallow 64 B writes; the hog streams 16 KiB
    // writes with a deep window. Fair egress allocation alone cannot
    // protect the victim: every victim flit still waits behind the
    // ~1 us device occupancy of whichever bulk write is in service.
    let victim = engine.add_component("victim", LoadGen::new(mk(topo.hosts[0].fha, 64, 2)));
    let hog = engine.add_component("hog", LoadGen::new(mk(topo.hosts[1].fha, 16384, 48)));
    engine.post(victim, SimTime::ZERO, StartLoad);
    engine.post(hog, SimTime::ZERO, StartLoad);
    engine.run_until_idle();
    let report = engine.component::<FabricSwitch>(sw).audit();
    let admitted = engine
        .component::<FabricSwitch>(sw)
        .scheduler()
        .map_or(0, |s| s.admitted);
    let v = engine.component::<LoadGen>(victim);
    let h = engine.component::<LoadGen>(hog);
    Outcome {
        victim_p99_ns: v.latency.summary_ns().p99,
        victim_ops: v.completed(),
        hog_ops: h.completed(),
        audit_findings: report.findings.len(),
        admitted,
    }
}

#[test]
fn scheduler_contains_the_hog_and_restores_the_victim() {
    let off = run(false);
    let on = run(true);
    assert_eq!(off.audit_findings, 0, "ungoverned audit must be clean");
    assert_eq!(on.audit_findings, 0, "governed audit must be clean");
    assert!(on.admitted > 0, "scheduler governed no traffic");
    assert!(
        off.hog_ops > on.hog_ops,
        "hog must be contained: off {} vs on {}",
        off.hog_ops,
        on.hog_ops
    );
    assert!(on.hog_ops > 0, "hog fully starved despite its floor");
    assert!(
        on.victim_p99_ns < off.victim_p99_ns / 2.0,
        "victim p99 must recover: off {:.0} ns vs on {:.0} ns",
        off.victim_p99_ns,
        on.victim_p99_ns
    );
    assert!(
        on.victim_ops > off.victim_ops,
        "victim throughput must recover: off {} vs on {}",
        off.victim_ops,
        on.victim_ops
    );
}
