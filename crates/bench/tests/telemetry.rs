//! Integration tests for the telemetry wiring across the full stack:
//! determinism of traced runs, the E3b congestion story recovered from
//! the exported trace alone, Perfetto schema shape, and deadlock-report
//! export (a wedged run must be visible in the trace file).

use fcc_bench::capture::Capture;
use fcc_bench::exp_e3;
use fcc_bench::loadgen::{AddrPattern, LoadCfg, LoadGen, StartLoad};
use fcc_fabric::endpoint::PipelinedMemory;
use fcc_fabric::topology::{self, StageSpec, TopologySpec};
use fcc_sim::{Engine, SimTime};
use fcc_telemetry::{json, TraceData};

/// A traced two-switch (host — s0 — s1 — device) run: the golden
/// scenario for determinism and schema checks.
fn two_switch_trace(seed: u64) -> String {
    let mut cap = Capture::recording();
    let mut engine = Engine::new(seed);
    let device = Box::new(PipelinedMemory::new(
        SimTime::from_ns(200.0),
        SimTime::from_ns(220.0),
        SimTime::from_ns(40.0),
        1 << 30,
    ));
    let topo = topology::chain(
        &mut engine,
        TopologySpec::default(),
        vec![
            StageSpec {
                n_hosts: 2,
                devices: vec![],
            },
            StageSpec {
                n_hosts: 0,
                devices: vec![device],
            },
        ],
    );
    cap.begin_scenario("golden", &mut engine, &topo);
    for h in 0..2 {
        let cfg = LoadCfg {
            fha: topo.hosts[h].fha,
            base: topo.devices[0].range.base + (h as u64) * (1 << 16),
            len: 1 << 16,
            op_bytes: 64,
            write: h == 0,
            window: 2,
            count: Some(50),
            stop_at: SimTime::MAX,
            pattern: AddrPattern::Sequential,
        };
        let lg = engine.add_component(format!("load-h{h}"), LoadGen::new(cfg));
        engine.post(lg, SimTime::ZERO, StartLoad);
    }
    engine.run_until_idle();
    cap.end_scenario("golden", &engine, &topo);
    cap.sink.to_chrome_json()
}

#[test]
fn traced_two_switch_runs_are_byte_identical() {
    let a = two_switch_trace(0x60_1D);
    let b = two_switch_trace(0x60_1D);
    assert!(!a.is_empty());
    assert!(a.contains("rtt-"), "RTT spans present");
    assert!(a.contains("switch.forward"), "switch hops present");
    assert_eq!(a, b, "same seed must export a byte-identical trace");
}

#[test]
fn exported_trace_has_perfetto_shape() {
    let text = two_switch_trace(7);
    // The export must be self-contained valid JSON...
    let root = json::parse(&text).expect("trace is valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut saw_meta = false;
    let mut saw_complete = false;
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has ph");
        assert!(ev.get("pid").is_some(), "every event has pid");
        assert!(ev.get("tid").is_some(), "every event has tid");
        match ph {
            "M" => {
                saw_meta = true;
                let name = ev.get("name").and_then(|v| v.as_str()).expect("meta name");
                assert!(
                    name == "process_name" || name == "thread_name",
                    "known metadata record, got {name}"
                );
            }
            "X" => {
                saw_complete = true;
                assert!(ev.get("ts").is_some(), "complete spans carry ts");
                assert!(ev.get("dur").is_some(), "complete spans carry dur");
                assert!(ev.get("cat").is_some(), "complete spans carry cat");
            }
            "i" => {
                assert_eq!(
                    ev.get("s").and_then(|v| v.as_str()),
                    Some("t"),
                    "instants carry thread scope"
                );
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(saw_meta && saw_complete);
    // ...and round-trip through the analyzer.
    let data = TraceData::from_json(&text).expect("analyzer parses the export");
    assert_eq!(data.processes.len(), 1);
    assert!(!data.events.is_empty());
}

#[test]
fn e3b_trace_shows_credit_waits_growing_and_tail_inflation() {
    let mut cap = Capture::recording();
    let r = exp_e3::run_b_captured(true, &mut cap);
    // The run itself shows the paper's drastic degradation...
    assert!(r.p99_inflation() >= 10.0, "p99 {}", r.p99_inflation());
    // ...and the exported trace alone reproduces the whole story.
    let data = TraceData::from_json(&cap.sink.to_chrome_json()).expect("parses");
    let pid_of = |name: &str| -> u32 {
        *data
            .processes
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .unwrap_or_else(|| panic!("process {name} in trace"))
            .0
    };
    let alone = pid_of("e3b-alone");
    let bulk = pid_of("e3b-bulk");
    let wait_alone = data.credit_wait_total(alone);
    let wait_bulk = data.credit_wait_total(bulk);
    assert!(
        wait_bulk > wait_alone.max(1) * 10,
        "credit waits grow with bulk share: alone {wait_alone} ps vs bulk {wait_bulk} ps"
    );
    let inflation = data
        .tail_inflation()
        .into_iter()
        .find(|(name, _, _)| name == "rtt-wr64B")
        .expect("small-write RTTs in both scenarios");
    assert!(
        inflation.1 >= 10.0,
        "trace-derived p99 inflation {} must reproduce the >=10x degradation",
        inflation.1
    );
    // Congestion attribution points into the bulk scenario.
    let (worst_track, _, _) = data.credit_wait_by_track().remove(0);
    assert!(
        worst_track.starts_with("e3b-bulk/"),
        "worst credit-blocked component is a bulk one: {worst_track}"
    );
}

/// A failed FAM module: accepts every transaction and never responds.
/// The requesting host's FHA is left holding the transaction forever —
/// the stranded-work signature the deadlock report must surface.
struct DeadDevice;

impl fcc_fabric::endpoint::Endpoint for DeadDevice {
    fn service(
        &mut self,
        _txn: &fcc_proto::channel::Transaction,
        now: SimTime,
    ) -> fcc_fabric::endpoint::EndpointResponse {
        fcc_fabric::endpoint::EndpointResponse {
            kind: None,
            bytes: 0,
            ready_at: now,
        }
    }

    fn capacity(&self) -> u64 {
        1 << 30
    }
}

#[test]
fn deadlock_report_lands_in_exported_trace() {
    let mut cap = Capture::recording();
    let mut engine = Engine::new(0xDEAD);
    let topo = topology::single_switch(
        &mut engine,
        TopologySpec::default(),
        1,
        vec![Box::new(DeadDevice)],
    );
    cap.begin_scenario("wedged", &mut engine, &topo);
    let cfg = LoadCfg {
        fha: topo.hosts[0].fha,
        base: topo.devices[0].range.base,
        len: 1 << 16,
        op_bytes: 64,
        write: false,
        window: 1,
        count: Some(1),
        stop_at: SimTime::MAX,
        pattern: AddrPattern::Sequential,
    };
    let lg = engine.add_component("load-h0", LoadGen::new(cfg));
    engine.post(lg, SimTime::ZERO, StartLoad);
    engine.run_until_idle();
    let report = engine.deadlock_report();
    assert!(report.is_some(), "run must wedge");
    cap.end_scenario("wedged", &engine, &topo);
    let data = TraceData::from_json(&cap.sink.to_chrome_json()).expect("parses");
    let deadlocks = data.deadlock_events();
    assert!(
        !deadlocks.is_empty(),
        "deadlock report must appear in the exported trace"
    );
    assert!(
        deadlocks.iter().any(|e| e.name.contains("fha")),
        "the stuck FHA is named: {:?}",
        deadlocks.iter().map(|e| &e.name).collect::<Vec<_>>()
    );
    assert_eq!(
        cap.metrics.counter("sim.deadlock.stuck_components"),
        Some(report.map(|r| r.stuck.len() as u64).unwrap_or(0)),
        "deadlock also lands in the metrics stream"
    );
    let rendered = data.render_report();
    assert!(rendered.contains("deadlock"), "report section renders");
}
