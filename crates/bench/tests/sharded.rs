//! Integration tests for the sharded executor's determinism contract:
//! a `--shards M` run must assemble into exactly the bytes a serial run
//! produces, for every export (report text, scalar JSON, Chrome trace,
//! metrics), for every worker count, composed with any `--jobs N`.
//!
//! The shard decomposition is fixed by the topology (one shard per
//! switch domain); `--shards` only picks the worker-thread fan-out, so
//! thread scheduling must be unobservable. Single-engine scenarios
//! (`e3e`, `e5`, `e11`) ignore the knob entirely — they ride along here
//! to pin that passing `--shards` through the harness is a no-op for
//! them.

use fcc_bench::capture::Capture;
use fcc_bench::harness::{results_json, run_ids, ScenarioOutput};

/// The sharded scenarios (`e3x`, the scheduler-governed `e12`, the
/// serving-tier `e13`, and the wormhole pod `e14`) plus single-engine
/// scenarios from three layers (fabric interference, placement policy,
/// elastic composition).
fn ids() -> Vec<String> {
    ["e3x", "e12", "e13", "e14", "e3e", "e5", "e11"]
        .iter()
        .map(ToString::to_string)
        .collect()
}

/// Reassembles outputs exactly the way the `experiments` binary does.
fn assemble(outputs: Vec<ScenarioOutput>) -> (String, String, String, String) {
    let text: String = outputs.iter().map(|o| o.text.as_str()).collect();
    let results: Vec<_> = outputs
        .iter()
        .map(|o| (o.id.clone(), o.scalars.clone()))
        .collect();
    let mut cap = Capture::recording();
    for o in outputs {
        cap.metrics.merge(&o.metrics);
        if let Some(dump) = o.trace {
            cap.sink.absorb(dump);
        }
    }
    (
        text,
        results_json(&results),
        cap.sink.to_chrome_json(),
        cap.metrics.to_json(),
    )
}

#[test]
fn sharded_runs_are_byte_identical_for_every_worker_count() {
    let serial = assemble(run_ids(&ids(), true, 0, 1, true, 1));
    for shards in [2, 4, 8] {
        let sharded = assemble(run_ids(&ids(), true, 0, 1, true, shards));
        assert_eq!(
            serial.0, sharded.0,
            "report text differs at --shards {shards}"
        );
        assert_eq!(
            serial.1, sharded.1,
            "scalar JSON differs at --shards {shards}"
        );
        assert_eq!(
            serial.2, sharded.2,
            "trace JSON differs at --shards {shards}"
        );
        assert_eq!(
            serial.3, sharded.3,
            "metrics JSON differs at --shards {shards}"
        );
    }
}

#[test]
fn sharded_workers_compose_with_parallel_scenario_jobs() {
    let serial = assemble(run_ids(&ids(), true, 0, 1, true, 1));
    let both = assemble(run_ids(&ids(), true, 0, 3, true, 4));
    assert_eq!(serial, both, "--shards 4 + --jobs 3 diverged from serial");
}

#[test]
fn sharded_runs_are_byte_identical_under_a_nonzero_seed() {
    for seed in [42, 0xFCC] {
        let serial = assemble(run_ids(&ids(), true, seed, 1, true, 1));
        let sharded = assemble(run_ids(&ids(), true, seed, 2, true, 2));
        assert_eq!(serial, sharded, "seed {seed} diverged");
    }
}
