//! E10 — §3 Differences #4/#5: fast context switching among execution
//! engines, plus kernel-launch paths.
//!
//! * **Launch path**: invoking a kernel on a fabric-attached accelerator
//!   means writing the execution context into shared FAM and ringing a
//!   doorbell with plain stores (§3 D#4); over a communication fabric the
//!   same launch needs a driver submission, DMA of the context, and a
//!   completion interrupt. Both are measured end to end.
//! * **Context switching**: the FAA engine's cooperative functions are run
//!   with fabric-grade (200 ns) vs communication-fabric-grade (5 µs)
//!   context save/restore costs under a multiplexed workload.

use std::fmt;

use fcc_core::faa::{FaaEngine, FnDone, FnInvoke, FunctionTemplate};
use fcc_fabric::adapter::{HostCompletion, HostOp, HostRequest};
use fcc_fabric::commfabric::{RdmaCompletion, RdmaConfig, RdmaNic, RdmaOp};
use fcc_fabric::topology::{self, FAM_BASE};
use fcc_sim::{Component, ComponentId, Ctx, Engine, Msg, SimTime};

use crate::calib;

/// E10 outcome.
pub struct E10Result {
    /// Kernel-launch latency over the memory fabric (ns): context write +
    /// doorbell store.
    pub fabric_launch_ns: f64,
    /// Kernel-launch latency over RDMA (ns): context DMA + doorbell msg.
    pub rdma_launch_ns: f64,
    /// Multiplexed-FAA completion time with fabric-grade switching (µs).
    pub fast_switch_us: f64,
    /// With communication-fabric-grade switching (µs).
    pub slow_switch_us: f64,
    /// Context switches performed (same in both runs).
    pub switches: u64,
}

impl E10Result {
    /// Launch-path advantage of the memory fabric.
    pub fn launch_advantage(&self) -> f64 {
        self.rdma_launch_ns / self.fabric_launch_ns
    }
}

/// Context descriptor size shipped at launch (registers + queue configs).
const CONTEXT_BYTES: u32 = 4096;

struct LaunchProbe {
    done_at: Option<SimTime>,
    pending: usize,
}

impl Component for LaunchProbe {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if msg.downcast::<HostCompletion>().is_ok() {
            self.pending -= 1;
            if self.pending == 0 {
                self.done_at = Some(ctx.now());
            }
        }
    }
}

/// Launch over the memory fabric: write the context (4 KiB) then a 64 B
/// doorbell store, both as plain fabric writes.
///
/// The FAA sits one FabreX-like switch away (25 ns cables), matching the
/// wire the RDMA baseline uses — the comparison isolates the *path*
/// (plain stores vs driver + DMA + completion), not the link.
fn fabric_launch(seed: u64) -> f64 {
    let mut engine = Engine::new(0xE10 ^ seed);
    let mut spec = calib::topo_spec();
    spec.switch.phys = fcc_proto::phys::PhysConfig::omega_like();
    spec.switch.fwd_latency = SimTime::from_ns(90.0);
    let faa_ctx_buffer: Box<dyn fcc_fabric::endpoint::Endpoint> =
        Box::new(fcc_fabric::endpoint::PipelinedMemory::new(
            SimTime::from_ns(100.0),
            SimTime::from_ns(110.0),
            SimTime::from_ns(20.0),
            1 << 24,
        ));
    let topo = topology::single_switch(&mut engine, spec, 1, vec![faa_ctx_buffer]);
    let probe = engine.add_component(
        "probe",
        LaunchProbe {
            done_at: None,
            pending: 2,
        },
    );
    let fha = topo.hosts[0].fha;
    engine.post(
        fha,
        SimTime::ZERO,
        HostRequest {
            op: HostOp::Write {
                addr: FAM_BASE,
                bytes: CONTEXT_BYTES,
            },
            tag: 1,
            reply_to: probe,
        },
    );
    engine.post(
        fha,
        SimTime::ZERO,
        HostRequest {
            op: HostOp::Write {
                addr: FAM_BASE + CONTEXT_BYTES as u64,
                bytes: 64,
            },
            tag: 2,
            reply_to: probe,
        },
    );
    engine.run_until_idle();
    engine
        .component::<LaunchProbe>(probe)
        .done_at
        .expect("launch completed")
        .as_ns()
}

/// Drives the serialized communication-fabric launch sequence the paper
/// describes (§3 D#4): set up the channel, DMA the execution context,
/// then ring the remote doorbell — each step ordered after the previous
/// completion.
struct RdmaProbe {
    nic: ComponentId,
    step: usize,
    done_at: Option<SimTime>,
}

impl RdmaProbe {
    /// `(write, bytes)` per launch step.
    const STEPS: [(bool, u32); 3] = [
        (true, 64),            // channel/control setup message.
        (true, CONTEXT_BYTES), // execution-context DMA.
        (true, 64),            // doorbell.
    ];

    fn issue(&mut self, ctx: &mut Ctx<'_>) {
        let (write, bytes) = Self::STEPS[self.step];
        ctx.send(
            self.nic,
            SimTime::ZERO,
            RdmaOp {
                write,
                bytes,
                tag: self.step as u64,
                reply_to: ctx.self_id(),
            },
        );
    }
}

impl Component for RdmaProbe {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if msg.downcast::<RdmaCompletion>().is_ok() {
            self.step += 1;
            if self.step >= Self::STEPS.len() {
                self.done_at = Some(ctx.now());
            } else {
                self.issue(ctx);
            }
            return;
        }
        // Kick-off.
        self.issue(ctx);
    }
}

/// Kick-off marker for the RDMA probe.
#[derive(Debug, Clone, Copy)]
struct GoRdma;

/// Launch over the communication fabric: channel setup, context DMA, and
/// doorbell — serialized submission/completion rounds.
fn rdma_launch(seed: u64) -> f64 {
    let mut engine = Engine::new((0xE10 + 1) ^ seed);
    let nic = engine.add_component("nic", RdmaNic::new(RdmaConfig::kernel_bypass()));
    let probe = engine.add_component(
        "probe",
        RdmaProbe {
            nic,
            step: 0,
            done_at: None,
        },
    );
    engine.post(probe, SimTime::ZERO, GoRdma);
    engine.run_until_idle();
    engine
        .component::<RdmaProbe>(probe)
        .done_at
        .expect("launch completed")
        .as_ns()
}

struct FaaSink {
    done: usize,
    finished_at: SimTime,
}

impl Component for FaaSink {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if msg.downcast::<FnDone>().is_ok() {
            self.done += 1;
            self.finished_at = ctx.now();
        }
    }
}

/// Runs the multiplexed-FAA workload with a given context-switch cost.
fn multiplexed_faa(ctx_switch: SimTime, invocations: u64, seed: u64) -> (f64, u64) {
    let mut engine = Engine::new((0xE10 + 2) ^ seed);
    let sink = engine.add_component(
        "sink",
        FaaSink {
            done: 0,
            finished_at: SimTime::ZERO,
        },
    );
    let functions = (0..4)
        .map(|i| FunctionTemplate::uniform(i, SimTime::from_ns(800.0), 0.0, 1024))
        .collect();
    let faa = engine.add_component("faa", FaaEngine::new(functions, ctx_switch, 4));
    // Interleaved arrivals across the four functions.
    for i in 0..invocations {
        engine.post(
            faa,
            SimTime::from_ns(i as f64 * 50.0),
            FnInvoke {
                function: (i % 4) as u32,
                kind: 0,
                bytes: 0,
                tag: i,
                reply_to: sink,
            },
        );
    }
    engine.run_until_idle();
    let s = engine.component::<FaaSink>(sink);
    assert_eq!(s.done as u64, invocations, "all invocations completed");
    let switches = engine.component::<FaaEngine>(faa).ctx_switches.get();
    (s.finished_at.as_us(), switches)
}

/// Runs E10.
pub fn run(quick: bool) -> E10Result {
    run_seeded(quick, 0)
}

/// [`run`] with a caller-supplied RNG seed salt.
pub fn run_seeded(quick: bool, seed: u64) -> E10Result {
    let invocations = if quick { 400 } else { 2000 };
    let fabric_launch_ns = fabric_launch(seed);
    let rdma_launch_ns = rdma_launch(seed);
    let (fast_switch_us, switches) = multiplexed_faa(SimTime::from_ns(200.0), invocations, seed);
    let (slow_switch_us, _) = multiplexed_faa(SimTime::from_us(5.0), invocations, seed);
    E10Result {
        fabric_launch_ns,
        rdma_launch_ns,
        fast_switch_us,
        slow_switch_us,
        switches,
    }
}

impl fmt::Display for E10Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E10 — context shipping and kernel launch paths")?;
        let rows = vec![
            vec![
                "memory fabric (stores + doorbell)".to_string(),
                format!("{:.0}", self.fabric_launch_ns),
            ],
            vec![
                "communication fabric (RDMA)".to_string(),
                format!("{:.0}", self.rdma_launch_ns),
            ],
        ];
        write!(
            f,
            "{}",
            crate::fmt_table(&["kernel launch path", "latency (ns)"], &rows)
        )?;
        writeln!(f, "launch advantage: {:.1}x", self.launch_advantage())?;
        let rows = vec![
            vec![
                "fabric-grade (200 ns)".to_string(),
                format!("{:.0}", self.fast_switch_us),
            ],
            vec![
                "comm-fabric-grade (5 us)".to_string(),
                format!("{:.0}", self.slow_switch_us),
            ],
        ];
        write!(
            f,
            "{}",
            crate::fmt_table(
                &["context switch cost", "multiplexed completion (us)"],
                &rows
            )
        )?;
        writeln!(f, "context switches in the run: {}", self.switches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_launch_beats_rdma_launch() {
        let r = run(true);
        assert!(
            r.launch_advantage() > 1.2,
            "fabric {} vs rdma {}",
            r.fabric_launch_ns,
            r.rdma_launch_ns
        );
        assert!(r.fabric_launch_ns < 3000.0);
    }

    #[test]
    fn slow_context_switches_dominate_multiplexed_runs() {
        let r = run(true);
        assert!(
            r.slow_switch_us > r.fast_switch_us * 2.0,
            "fast {} vs slow {}",
            r.fast_switch_us,
            r.slow_switch_us
        );
        assert!(r.switches > 50, "workload must actually multiplex");
    }
}
