#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Experiment harness: regenerates every table, figure, and quantified
//! in-text claim of the paper.
//!
//! Each `exp_*` module exposes a `run(quick) -> <Result>` function with a
//! `Display` implementation that prints the paper-style table, plus
//! structured fields the integration tests assert *shape* properties on
//! (who wins, by roughly what factor). The `experiments` binary dispatches
//! by experiment id; Criterion micro-benchmarks in `benches/` reuse the
//! same runners.
//!
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured numbers.

pub mod calib;
pub mod capture;
pub mod exp_abl;
pub mod exp_e10;
pub mod exp_e11;
pub mod exp_e12;
pub mod exp_e13;
pub mod exp_e14;
pub mod exp_e3;
pub mod exp_e3x;
pub mod exp_e4;
pub mod exp_e5;
pub mod exp_e6;
pub mod exp_e7;
pub mod exp_e8;
pub mod exp_e9;
pub mod exp_f1;
pub mod exp_nodes;
pub mod exp_t1;
pub mod exp_t2;
pub mod harness;
pub mod loadgen;
pub mod runner;

/// Renders an ASCII table.
pub fn fmt_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    line(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    line(&mut out);
    for row in rows {
        out.push('|');
        for (c, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push('\n');
    }
    line(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = fmt_table(
            &["tier", "ns"],
            &[
                vec!["L1".into(), "5.4".into()],
                vec!["remote".into(), "1575.3".into()],
            ],
        );
        assert!(t.contains("| L1     | 5.4    |"));
        assert!(t.contains("| remote | 1575.3 |"));
    }
}
