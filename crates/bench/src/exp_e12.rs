//! E12 — pod-scale multi-tenant interference with and without the
//! fabric-resident QoS scheduler ([`fcc_sched`]).
//!
//! The topology and tenant mix are E3x's: eight single-switch domains
//! joined by long-haul cables, eight tenants per domain — six
//! latency-sensitive victims issuing shallow local 64 B writes, one local
//! bulk streamer, and one deep-window hog camping a device four chain
//! hops away. E3x *demonstrates* the interference pathology; E12 measures
//! the remedy. Three runs:
//!
//! 1. **idle** — hogs and bulk writers stay silent: the victims'
//!    uncontended p99 floor.
//! 2. **off** — full interference, no scheduler: the pathology.
//! 3. **on** — full interference with a [`fcc_sched::FabricScheduler`]
//!    installed at every switch: per-tenant hierarchical credit
//!    partitions gate admission per window, so hogs are contained to
//!    their share while victims' floors hold.
//!
//! The headline metric is **victim p99 inflation over idle**: the
//! acceptance bound is `inflation_on <= 2.0` while hogs still make
//! progress. Every scheduler-governed switch is audited post-run
//! (per-tenant ledger conservation, floors honored); the experiment
//! reports the violation count, which must be zero.
//!
//! Like E3x, the scenario always runs on the sharded executor and
//! `shards` selects only worker fan-out — results and telemetry exports
//! are byte-identical for any value.

use std::fmt;

use fcc_fabric::credit::AllocPolicy;
use fcc_fabric::sharded::{sharded_chain, DomainSpec, ShardedFabric};
use fcc_fabric::switch::{FabricSwitch, QueueDiscipline};
use fcc_sched::{CreditPartition, FabricScheduler, TenantShare};
use fcc_sim::{ComponentId, Histogram, ShardedEngine, SimTime};
use fcc_telemetry::{record_deadlock, tenant_metric, TraceSink};

use crate::capture::Capture;
use crate::exp_e3::{fabrex_device, fabrex_spec};
use crate::exp_e3x::{CROSS_LATENCY_NS, DOMAINS, TENANTS_PER_DOMAIN};
use crate::loadgen::{AddrPattern, LoadCfg, LoadGen, StartLoad};

/// Victim tenants per domain (shallow local 64 B writers).
const VICTIMS_PER_DOMAIN: usize = 6;
/// The bulk tenant's per-op transfer size.
const BULK_BYTES: u32 = 4096;
/// The hog's window depth (as in E3e/E3x: deep enough to camp credits).
const HOG_WINDOW: usize = 48;
/// Scheduler credit pool per admission window at each switch.
const SCHED_POOL: u32 = 320;
/// Admission window length.
const SCHED_WINDOW_NS: f64 = 1000.0;

/// Tenant-share templates. Victims hold a floor and most of the weight;
/// hogs are confined to a small share once victims are active.
const VICTIM_SHARE: TenantShare = TenantShare {
    group: 0,
    weight: 8,
    floor: 2,
};
const BULK_SHARE: TenantShare = TenantShare {
    group: 1,
    weight: 2,
    floor: 1,
};
const HOG_SHARE: TenantShare = TenantShare {
    group: 2,
    weight: 1,
    floor: 1,
};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Idle,
    Off,
    On,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Idle => "idle",
            Mode::Off => "off",
            Mode::On => "on",
        }
    }

    fn salt(self) -> u64 {
        match self {
            Mode::Idle => 0x1D1E,
            Mode::Off => 0x0FF0,
            Mode::On => 0x0A0A,
        }
    }
}

/// Outcome of one mode's run.
struct ModeRun {
    /// Merged victim latency distribution (ps).
    victim_latency: Histogram,
    /// Mean hog throughput (ops/µs).
    hog_ops_us: f64,
    /// Flits admitted by schedulers (0 when ungoverned).
    admitted: u64,
    /// Admission probes deferred by schedulers.
    deferred: u64,
    /// Per-tenant ledger audit findings across all switches.
    violations: u64,
    /// Events dispatched.
    events: u64,
}

/// E12 outcome.
pub struct E12Result {
    /// Total tenant load generators.
    pub tenants: usize,
    /// Victim p99 latency with hogs silent (ns).
    pub victim_p99_idle_ns: f64,
    /// Victim p99 latency under interference, scheduler off (ns).
    pub victim_p99_off_ns: f64,
    /// Victim p99 latency under interference, scheduler on (ns).
    pub victim_p99_on_ns: f64,
    /// Victim p999 latency, scheduler on (ns).
    pub victim_p999_on_ns: f64,
    /// Mean hog throughput, scheduler off (ops/µs).
    pub hog_ops_us_off: f64,
    /// Mean hog throughput, scheduler on (ops/µs).
    pub hog_ops_us_on: f64,
    /// Flits admitted by the schedulers in the governed run.
    pub sched_admitted: u64,
    /// Admission probes deferred in the governed run.
    pub sched_deferred: u64,
    /// Per-tenant ledger audit findings across every governed switch
    /// (acceptance: zero).
    pub ledger_violations: u64,
    /// Events dispatched across all three runs (deterministic).
    pub total_events: u64,
}

impl E12Result {
    /// Victim p99 inflation over idle with the scheduler off.
    pub fn inflation_off(&self) -> f64 {
        self.victim_p99_off_ns / self.victim_p99_idle_ns.max(1e-9)
    }

    /// Victim p99 inflation over idle with the scheduler on.
    pub fn inflation_on(&self) -> f64 {
        self.victim_p99_on_ns / self.victim_p99_idle_ns.max(1e-9)
    }

    /// The isolation acceptance bound: governed victim p99 stays within
    /// 2x the uncontended baseline.
    pub fn isolation_bounded(&self) -> bool {
        self.inflation_on() <= 2.0
    }
}

/// Runs E12 with one worker thread.
pub fn run_e12(quick: bool) -> E12Result {
    run_e12_captured_seeded(quick, &mut Capture::disabled(), 0, 1)
}

/// Runs E12, feeding telemetry into `cap`, with `shards` worker threads.
pub fn run_e12_captured_seeded(
    quick: bool,
    cap: &mut Capture,
    seed: u64,
    shards: usize,
) -> E12Result {
    let idle = run_mode(Mode::Idle, quick, cap, seed, shards);
    let off = run_mode(Mode::Off, quick, cap, seed, shards);
    let on = run_mode(Mode::On, quick, cap, seed, shards);
    let s_idle = idle.victim_latency.summary_ns();
    let s_off = off.victim_latency.summary_ns();
    let s_on = on.victim_latency.summary_ns();
    E12Result {
        tenants: DOMAINS * TENANTS_PER_DOMAIN,
        victim_p99_idle_ns: s_idle.p99,
        victim_p99_off_ns: s_off.p99,
        victim_p99_on_ns: s_on.p99,
        victim_p999_on_ns: s_on.p999,
        hog_ops_us_off: off.hog_ops_us,
        hog_ops_us_on: on.hog_ops_us,
        sched_admitted: on.admitted,
        sched_deferred: on.deferred,
        ledger_violations: idle.violations + off.violations + on.violations,
        total_events: idle.events + off.events + on.events,
    }
}

/// The scheduler for domain `d`'s switch: the pod-wide share policy,
/// with only the domain's **own** hosts mapped. Admission is enforced at
/// each tenant's attachment point, where a deferred flit waits in its
/// own host-port FIFO and backpressures only its own adapter. Governing
/// transit flits mid-fabric instead would HOL-block ungoverned traffic
/// (completions, other tenants' transit) behind a deferred flit and pin
/// link credits for up to a window — admission control composes with
/// credit flow control only at the edge.
fn scheduler_for(fabric: &ShardedFabric, d: usize) -> FabricScheduler {
    let mut part = CreditPartition::new(SCHED_POOL);
    for dd in 0..DOMAINS {
        for h in 0..TENANTS_PER_DOMAIN {
            let tenant = (dd * TENANTS_PER_DOMAIN + h) as u32;
            let share = if h < VICTIMS_PER_DOMAIN {
                VICTIM_SHARE
            } else if h == VICTIMS_PER_DOMAIN {
                BULK_SHARE
            } else {
                HOG_SHARE
            };
            part.add_tenant(tenant, share);
        }
    }
    let mut sched = FabricScheduler::new(part, SimTime::from_ns(SCHED_WINDOW_NS));
    for (h, host) in fabric.domains[d].hosts.iter().enumerate() {
        let tenant = (d * TENANTS_PER_DOMAIN + h) as u32;
        sched.map_node(host.node, tenant);
    }
    sched
}

#[allow(clippy::too_many_lines)]
fn run_mode(mode: Mode, quick: bool, cap: &mut Capture, seed: u64, shards: usize) -> ModeRun {
    let horizon = if quick {
        SimTime::from_us(25.0)
    } else {
        SimTime::from_us(120.0)
    };
    let mut sharded = ShardedEngine::new(0xE120 ^ seed ^ mode.salt(), DOMAINS);
    let mut spec = fabrex_spec(QueueDiscipline::Fifo, AllocPolicy::Fair);
    spec.fha_outstanding = 128;
    let domains = (0..DOMAINS)
        .map(|_| DomainSpec {
            n_hosts: TENANTS_PER_DOMAIN,
            devices: vec![fabrex_device()],
        })
        .collect();
    let fabric: ShardedFabric = sharded_chain(
        &mut sharded,
        spec,
        domains,
        SimTime::from_ns(CROSS_LATENCY_NS),
    );
    if mode == Mode::On {
        for (d, topo) in fabric.domains.iter().enumerate() {
            let sched = scheduler_for(&fabric, d);
            let engine = sharded.engine_mut(d);
            for &sw in &topo.switches {
                engine
                    .component_mut::<FabricSwitch>(sw)
                    .install_scheduler(sched.clone());
            }
        }
    }
    let mut sinks: Vec<TraceSink> = Vec::new();
    if cap.is_enabled() {
        for (d, topo) in fabric.domains.iter().enumerate() {
            let sink = TraceSink::recording();
            sink.begin_process(&format!("e12-{}-d{d}", mode.label()));
            topo.enable_tracing(sharded.engine_mut(d), &sink);
            sinks.push(sink);
        }
    }
    let mut victims: Vec<(usize, usize, ComponentId)> = Vec::new();
    let mut hogs: Vec<(usize, ComponentId)> = Vec::new();
    for d in 0..DOMAINS {
        let local_range = fabric.domains[d].devices[0].range;
        let remote_range = fabric.domains[(d + DOMAINS / 2) % DOMAINS].devices[0].range;
        for h in 0..TENANTS_PER_DOMAIN {
            let fha = fabric.domains[d].hosts[h].fha;
            let (base, op_bytes, window, class) = if h < VICTIMS_PER_DOMAIN {
                (local_range.base, 64, 4, 0u8)
            } else if h == VICTIMS_PER_DOMAIN {
                (local_range.base + (1 << 24), BULK_BYTES, 8, 1)
            } else {
                (remote_range.base, 64, HOG_WINDOW, 2)
            };
            // Idle mode measures the victims' uncontended floor: only
            // victim generators are started there.
            if mode == Mode::Idle && class != 0 {
                continue;
            }
            let cfg = LoadCfg {
                fha,
                base,
                len: 1 << 20,
                op_bytes,
                write: true,
                window,
                count: None,
                stop_at: horizon,
                pattern: AddrPattern::Sequential,
            };
            let engine = sharded.engine_mut(d);
            let lg =
                engine.add_component(format!("load-{}-d{d}h{h}", mode.label()), LoadGen::new(cfg));
            engine.post(lg, SimTime::ZERO, StartLoad);
            match class {
                0 => victims.push((d, d * TENANTS_PER_DOMAIN + h, lg)),
                1 => {}
                _ => hogs.push((d, lg)),
            }
        }
    }
    sharded.run(shards);
    // Deterministic harvest, in domain order.
    let mut violations = 0u64;
    let (mut admitted, mut deferred) = (0u64, 0u64);
    for d in 0..DOMAINS {
        let engine = sharded.engine(d);
        for &sw in &fabric.domains[d].switches {
            let s = engine.component::<FabricSwitch>(sw);
            let report = s.audit();
            violations += report.findings.len() as u64;
            if let Some(sched) = s.scheduler() {
                admitted += sched.admitted;
                deferred += sched.deferred;
            }
        }
    }
    for (d, sink) in sinks.into_iter().enumerate() {
        if let Some(dump) = sink.into_dump() {
            cap.sink.absorb(dump);
        }
        let engine = sharded.engine(d);
        fabric.domains[d].collect_metrics(
            engine,
            &mut cap.metrics,
            &format!("e12-{}-d{d}.", mode.label()),
        );
        if let Some(report) = engine.deadlock_report() {
            record_deadlock(&cap.sink, &mut cap.metrics, &report, engine.now());
        }
    }
    let mut victim_latency = Histogram::new();
    for &(d, tenant, lg) in &victims {
        let h = &sharded.engine(d).component::<LoadGen>(lg).latency;
        victim_latency.merge(h);
        if cap.is_enabled() {
            cap.metrics.record_histogram(
                &tenant_metric(
                    &format!("e12-{}.", mode.label()),
                    tenant as u32,
                    "latency_ps",
                ),
                h,
            );
        }
    }
    let hog_ops_us = if hogs.is_empty() {
        0.0
    } else {
        hogs.iter()
            .map(|&(d, lg)| {
                sharded.engine(d).component::<LoadGen>(lg).completed() as f64 / horizon.as_us()
            })
            .sum::<f64>()
            / hogs.len() as f64
    };
    ModeRun {
        victim_latency,
        hog_ops_us,
        admitted,
        deferred,
        violations,
        events: sharded.total_events(),
    }
}

impl fmt::Display for E12Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E12 — fabric-resident QoS scheduling under {}-tenant interference",
            self.tenants
        )?;
        let rows = vec![
            vec![
                "idle (hogs silent)".to_string(),
                format!("{:.0}", self.victim_p99_idle_ns),
                "1.00".to_string(),
                "-".to_string(),
            ],
            vec![
                "scheduler off".to_string(),
                format!("{:.0}", self.victim_p99_off_ns),
                format!("{:.2}", self.inflation_off()),
                format!("{:.2}", self.hog_ops_us_off),
            ],
            vec![
                "scheduler on".to_string(),
                format!("{:.0}", self.victim_p99_on_ns),
                format!("{:.2}", self.inflation_on()),
                format!("{:.2}", self.hog_ops_us_on),
            ],
        ];
        write!(
            f,
            "{}",
            crate::fmt_table(
                &["mode", "victim p99 (ns)", "inflation", "hog ops/us"],
                &rows
            )
        )?;
        writeln!(
            f,
            "governed p999 {:.0} ns; {} admitted / {} deferred flits; \
             {} ledger violations; {} events",
            self.victim_p999_on_ns,
            self.sched_admitted,
            self.sched_deferred,
            self.ledger_violations,
            self.total_events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar results and event counts are identical for any worker
    /// fan-out (shards select threads, not decomposition).
    #[test]
    fn results_identical_across_worker_counts() {
        let base = run_e12_captured_seeded(true, &mut Capture::disabled(), 7, 1);
        for workers in [2, 4] {
            let r = run_e12_captured_seeded(true, &mut Capture::disabled(), 7, workers);
            assert_eq!(r.total_events, base.total_events, "workers={workers}");
            assert_eq!(r.victim_p99_idle_ns, base.victim_p99_idle_ns);
            assert_eq!(r.victim_p99_off_ns, base.victim_p99_off_ns);
            assert_eq!(r.victim_p99_on_ns, base.victim_p99_on_ns);
            assert_eq!(r.hog_ops_us_on, base.hog_ops_us_on);
            assert_eq!(r.sched_admitted, base.sched_admitted);
            assert_eq!(r.sched_deferred, base.sched_deferred);
        }
    }

    /// The acceptance criteria: bounded victim inflation under a clean
    /// per-tenant ledger audit, while hogs still make progress.
    #[test]
    fn scheduler_bounds_victim_inflation_with_clean_ledgers() {
        let r = run_e12(true);
        assert_eq!(r.tenants, 64);
        assert_eq!(r.ledger_violations, 0, "tenant ledger audit must be clean");
        assert!(r.victim_p99_idle_ns > 0.0, "victims idle-ran");
        assert!(
            r.isolation_bounded(),
            "victim p99 inflation {:.2} exceeds the 2x bound (idle {:.0} ns, on {:.0} ns)",
            r.inflation_on(),
            r.victim_p99_idle_ns,
            r.victim_p99_on_ns
        );
        assert!(r.hog_ops_us_on > 0.0, "hogs fully starved by the scheduler");
        assert!(r.sched_admitted > 0, "scheduler governed no traffic");
    }
}
