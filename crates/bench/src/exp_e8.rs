//! E8 — the §5 case study: MIMO baseband processing over UniFabric.
//!
//! The real uplink pipeline (FFT → ZF equalization → demap → Viterbi)
//! first runs in full to establish functional correctness (BER at a
//! workable SNR). The same frame's kernel task graph then executes under
//! three deployments:
//!
//! * **host-only** — every kernel on the host core, data local;
//! * **naive composable** — kernels on two FAAs, but every data object
//!   lives in far memory and is reached with synchronous 4 KiB loads
//!   (the §3 D#1 stall regime);
//! * **UniFabric** — the paper's port: objects in the unified heap (CSI
//!   pinned hot near the FAAs), frames streamed by the elastic
//!   transaction engine at wire rate and overlapped, kernels as
//!   idempotent tasks on both FAAs.
//!
//! A failure-injection pass shows the UniFabric deployment re-executes
//! through an FAA power-domain crash and still completes.

use std::fmt;

use fcc_baseband::pipeline::UplinkPipeline;
use fcc_core::task::{DagRuntime, Executor, Half, RecoveryMode, TaskSpec};
use fcc_sim::SimTime;
use fcc_workloads::failure::{FailureEvent, FailureSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One deployment's outcome.
#[derive(Debug, Clone)]
pub struct ModeOutcome {
    /// Label.
    pub mode: &'static str,
    /// Frame processing makespan (µs).
    pub frame_us: f64,
}

/// E8 outcome.
pub struct E8Result {
    /// Bit error rate of the real pipeline at 15 dB.
    pub ber_15db: f64,
    /// BER at 35 dB (must be zero).
    pub ber_35db: f64,
    /// Deployment comparison.
    pub modes: Vec<ModeOutcome>,
    /// Makespan of the UniFabric deployment with a mid-frame FAA crash.
    pub unifabric_with_failure_us: f64,
}

impl E8Result {
    /// The named mode.
    pub fn get(&self, mode: &str) -> f64 {
        self.modes
            .iter()
            .find(|m| m.mode == mode)
            .map(|m| m.frame_us)
            .expect("mode present")
    }
}

/// Synchronous far-memory access cost: 4 KiB pipelined loads at the
/// Table 2 remote profile (≈1.8 µs per 4 KiB with MLP 4 → ~0.45 ns/B).
const SYNC_NS_PER_BYTE: f64 = 0.45;
/// Streamed (eTrans at wire rate) cost per byte: 512 Gbit/s ≈ 0.0156 ns/B,
/// doubled for the read+write copy.
const STREAM_NS_PER_BYTE: f64 = 0.033;

fn bytes_touched(t: &TaskSpec) -> u64 {
    t.reads.iter().map(|r| r.len).sum::<u64>() + t.writes.iter().map(|w| w.len).sum::<u64>()
}

fn inflate(tasks: &[TaskSpec], ns_per_byte: f64, skip_csi_reads: bool) -> Vec<TaskSpec> {
    tasks
        .iter()
        .map(|t| {
            let mut bytes = bytes_touched(t);
            // Equalize tasks read exactly [fft_out, csi].
            if skip_csi_reads && t.reads.len() == 2 {
                // The CSI matrix (second read of equalize tasks) is pinned
                // hot near the FAAs by the heap: no fabric crossing.
                bytes = bytes.saturating_sub(t.reads[1].len);
            }
            let mut t = t.clone();
            t.compute += SimTime::from_ns(bytes as f64 * ns_per_byte);
            t
        })
        .collect()
}

fn host_executors() -> Vec<Executor> {
    vec![Executor {
        domain: 0,
        speed: 1.0,
        half: Half::Bottom,
    }]
}

fn faa_executors() -> Vec<Executor> {
    vec![
        Executor {
            domain: 1,
            speed: 1.0,
            half: Half::Bottom,
        },
        Executor {
            domain: 2,
            speed: 1.0,
            half: Half::Bottom,
        },
    ]
}

/// Runs E8.
pub fn run(quick: bool) -> E8Result {
    run_seeded(quick, 0)
}

/// [`run`] with a caller-supplied RNG seed salt.
pub fn run_seeded(quick: bool, seed: u64) -> E8Result {
    // Functional pass: the real DSP pipeline.
    let mut rng = StdRng::seed_from_u64(0xE8 ^ seed);
    let pipeline = UplinkPipeline::default();
    let frames = if quick { 3 } else { 10 };
    let mut errs15 = 0usize;
    let mut total15 = 0usize;
    let mut errs35 = 0usize;
    let mut total35 = 0usize;
    for _ in 0..frames {
        let f15 = pipeline.generate_frame(15.0, &mut rng);
        let r15 = pipeline.process(&f15);
        errs15 += r15.bit_errors;
        total15 += r15.total_bits;
        let f35 = pipeline.generate_frame(35.0, &mut rng);
        let r35 = pipeline.process(&f35);
        errs35 += r35.bit_errors;
        total35 += r35.total_bits;
    }
    // Deployment comparison on the kernel task graph.
    let tasks = pipeline.build_tasks(0x1000_0000, 0x2000_0000, 0x3000_0000, SimTime::from_us(1.0));
    let rt_host = DagRuntime::new(host_executors(), RecoveryMode::Idempotent);
    let rt_faa = DagRuntime::new(faa_executors(), RecoveryMode::Idempotent);
    let no_failures = FailureSchedule::explicit(vec![]);
    let host_only = rt_host.run(&tasks, &no_failures).makespan.as_us();
    let naive = rt_faa
        .run(&inflate(&tasks, SYNC_NS_PER_BYTE, false), &no_failures)
        .makespan
        .as_us();
    let unifabric_tasks = inflate(&tasks, STREAM_NS_PER_BYTE, true);
    let unifabric = rt_faa.run(&unifabric_tasks, &no_failures).makespan.as_us();
    // Failure resilience: crash FAA domain 1 mid-frame.
    let crash = FailureSchedule::explicit(vec![FailureEvent {
        at: SimTime::from_us(unifabric * 0.4),
        domain: 1,
        recovered_at: SimTime::from_us(unifabric * 0.4 + 5.0),
    }]);
    let with_failure = rt_faa.run(&unifabric_tasks, &crash);
    assert!(with_failure.correct, "idempotent kernels recover correctly");
    E8Result {
        ber_15db: errs15 as f64 / total15 as f64,
        ber_35db: errs35 as f64 / total35 as f64,
        modes: vec![
            ModeOutcome {
                mode: "host-only",
                frame_us: host_only,
            },
            ModeOutcome {
                mode: "naive composable",
                frame_us: naive,
            },
            ModeOutcome {
                mode: "UniFabric",
                frame_us: unifabric,
            },
        ],
        unifabric_with_failure_us: with_failure.makespan.as_us(),
    }
}

impl fmt::Display for E8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E8 — MIMO baseband case study over UniFabric")?;
        writeln!(
            f,
            "  functional: BER {:.5} @ 15 dB, {:.5} @ 35 dB (real FFT/ZF/QAM/Viterbi)",
            self.ber_15db, self.ber_35db
        )?;
        let base = self.get("host-only");
        let rows: Vec<Vec<String>> = self
            .modes
            .iter()
            .map(|m| {
                vec![
                    m.mode.to_string(),
                    format!("{:.2}", m.frame_us),
                    format!("{:.2}x", base / m.frame_us),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            crate::fmt_table(
                &["deployment", "frame makespan (us)", "speedup vs host"],
                &rows
            )
        )?;
        writeln!(
            f,
            "with a mid-frame FAA crash, UniFabric completes (idempotent \
             re-execution) in {:.2} us",
            self.unifabric_with_failure_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_shape() {
        let r = run(true);
        assert_eq!(r.ber_35db, 0.0, "clean at high SNR");
        assert!(r.ber_15db < 0.2, "usable at 15 dB: {}", r.ber_15db);
        let host = r.get("host-only");
        let naive = r.get("naive composable");
        let uni = r.get("UniFabric");
        assert!(
            naive > host * 2.0,
            "naive composable must pay dearly: host {host}, naive {naive}"
        );
        assert!(
            uni < naive / 2.0,
            "UniFabric recovers most of the loss: {uni} vs {naive}"
        );
        assert!(
            uni < host * 1.2,
            "two FAAs + placement ≈ or beat the host: {uni} vs {host}"
        );
        assert!(r.unifabric_with_failure_us > uni, "crash costs something");
    }
}
