//! E3x — E3e's credit-starvation pathology at rack scale: 64 tenants
//! across an eight-domain sharded fabric chain.
//!
//! Where E3e shows one hog starving one victim across a three-switch
//! chain, E3x composes the same mechanics at the scale the paper argues
//! fabrics must operate: eight single-switch domains joined by long-haul
//! cables ([`fcc_fabric::sharded::sharded_chain`]), eight tenants per
//! domain. Six victims per domain issue shallow 64 B writes to their
//! local device; one bulk writer per domain streams 4 KiB writes locally;
//! one hog per domain camps a *remote* device four chain hops away with a
//! deep window, so every inter-domain cable carries standing backlog in
//! both directions.
//!
//! The scenario always runs on the sharded executor
//! ([`fcc_sim::ShardedEngine`], one shard per domain); the `shards`
//! argument picks only the **worker-thread fan-out**, never the
//! decomposition, so results and telemetry exports are byte-identical for
//! any value. This is the workload `bench_gate shards` uses to prove the
//! conservative-lookahead executor's wall-clock win.

use std::fmt;

use fcc_fabric::credit::AllocPolicy;
use fcc_fabric::sharded::{sharded_chain, DomainSpec, ShardedFabric};
use fcc_fabric::switch::QueueDiscipline;
use fcc_sim::{jain_fairness, ComponentId, ShardedEngine, SimTime};
use fcc_telemetry::{record_deadlock, TraceSink};

use crate::capture::Capture;
use crate::exp_e3::{fabrex_device, fabrex_spec};
use crate::loadgen::{AddrPattern, LoadCfg, LoadGen, StartLoad};

/// Switch domains in the chain (= shards of the executor).
pub const DOMAINS: usize = 8;
/// Tenants (load generators) per domain.
pub const TENANTS_PER_DOMAIN: usize = 8;
/// One-way latency of each inter-domain cable — and therefore the
/// executor's conservative lookahead.
pub const CROSS_LATENCY_NS: f64 = 200.0;

/// Victim tenants per domain (shallow local 64 B writers).
const VICTIMS_PER_DOMAIN: usize = 6;
/// The bulk tenant's per-op transfer size.
const BULK_BYTES: u32 = 4096;
/// The hog's window depth: enough to fill its FEA queue and camp the
/// inter-domain cable credits, as in E3e.
const HOG_WINDOW: usize = 48;

/// E3x outcome.
pub struct E3xResult {
    /// Total tenant load generators.
    pub tenants: usize,
    /// Mean victim throughput (ops/µs) across all domains.
    pub victim_ops_us: f64,
    /// Jain fairness index over the individual victim throughputs.
    pub victim_fairness: f64,
    /// Mean bulk-writer throughput (ops/µs).
    pub bulk_ops_us: f64,
    /// Mean cross-domain hog throughput (ops/µs).
    pub hog_ops_us: f64,
    /// Events dispatched across all shard engines (deterministic).
    pub total_events: u64,
}

/// Runs E3x with one worker thread.
pub fn run_x(quick: bool) -> E3xResult {
    run_x_captured_seeded(quick, &mut Capture::disabled(), 0, 1)
}

/// Runs E3x, feeding telemetry into `cap`, with `shards` worker threads.
///
/// Telemetry is captured through one [`TraceSink`] per domain (a sink
/// may not span engines that run on different threads) and absorbed into
/// `cap` in domain order after the run, so the export is byte-identical
/// to a serial run.
pub fn run_x_captured_seeded(
    quick: bool,
    cap: &mut Capture,
    seed: u64,
    shards: usize,
) -> E3xResult {
    let horizon = if quick {
        SimTime::from_us(25.0)
    } else {
        SimTime::from_us(120.0)
    };
    let mut sharded = ShardedEngine::new(0xE3C0 ^ seed, DOMAINS);
    let mut spec = fabrex_spec(QueueDiscipline::Fifo, AllocPolicy::Fair);
    spec.fha_outstanding = 128;
    let domains = (0..DOMAINS)
        .map(|_| DomainSpec {
            n_hosts: TENANTS_PER_DOMAIN,
            devices: vec![fabrex_device()],
        })
        .collect();
    let fabric: ShardedFabric = sharded_chain(
        &mut sharded,
        spec,
        domains,
        SimTime::from_ns(CROSS_LATENCY_NS),
    );
    // Per-domain trace sinks: each engine runs on a worker thread, so
    // each gets its own sink; they are re-interned into `cap` in domain
    // order below.
    let mut sinks: Vec<TraceSink> = Vec::new();
    if cap.is_enabled() {
        for (d, topo) in fabric.domains.iter().enumerate() {
            let sink = TraceSink::recording();
            sink.begin_process(&format!("e3x-d{d}"));
            topo.enable_tracing(sharded.engine_mut(d), &sink);
            sinks.push(sink);
        }
    }
    // Tenants. Per domain: six shallow local victims, one local bulk
    // streamer, one deep-window hog camping the device four hops away.
    let mut victims: Vec<(usize, ComponentId)> = Vec::new();
    let mut bulks: Vec<(usize, ComponentId)> = Vec::new();
    let mut hogs: Vec<(usize, ComponentId)> = Vec::new();
    for d in 0..DOMAINS {
        let local_range = fabric.domains[d].devices[0].range;
        let remote_range = fabric.domains[(d + DOMAINS / 2) % DOMAINS].devices[0].range;
        for h in 0..TENANTS_PER_DOMAIN {
            let fha = fabric.domains[d].hosts[h].fha;
            let (base, op_bytes, window, class) = if h < VICTIMS_PER_DOMAIN {
                (local_range.base, 64, 4, 0u8)
            } else if h == VICTIMS_PER_DOMAIN {
                (local_range.base + (1 << 24), BULK_BYTES, 8, 1)
            } else {
                (remote_range.base, 64, HOG_WINDOW, 2)
            };
            let cfg = LoadCfg {
                fha,
                base,
                len: 1 << 20,
                op_bytes,
                write: true,
                window,
                count: None,
                stop_at: horizon,
                pattern: AddrPattern::Sequential,
            };
            let engine = sharded.engine_mut(d);
            let lg = engine.add_component(format!("load-d{d}h{h}"), LoadGen::new(cfg));
            engine.post(lg, SimTime::ZERO, StartLoad);
            match class {
                0 => victims.push((d, lg)),
                1 => bulks.push((d, lg)),
                _ => hogs.push((d, lg)),
            }
        }
    }
    sharded.run(shards);
    // Deterministic harvest, in domain order.
    for (d, sink) in sinks.into_iter().enumerate() {
        if let Some(dump) = sink.into_dump() {
            cap.sink.absorb(dump);
        }
        let engine = sharded.engine(d);
        fabric.domains[d].collect_metrics(engine, &mut cap.metrics, &format!("e3x-d{d}."));
        if let Some(report) = engine.deadlock_report() {
            record_deadlock(&cap.sink, &mut cap.metrics, &report, engine.now());
        }
    }
    let tput = |lgs: &[(usize, ComponentId)]| -> Vec<f64> {
        lgs.iter()
            .map(|&(d, lg)| {
                sharded.engine(d).component::<LoadGen>(lg).completed() as f64 / horizon.as_us()
            })
            .collect()
    };
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let victim_tputs = tput(&victims);
    E3xResult {
        tenants: DOMAINS * TENANTS_PER_DOMAIN,
        victim_ops_us: mean(&victim_tputs),
        victim_fairness: jain_fairness(&victim_tputs),
        bulk_ops_us: mean(&tput(&bulks)),
        hog_ops_us: mean(&tput(&hogs)),
        total_events: sharded.total_events(),
    }
}

impl fmt::Display for E3xResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E3x — {} tenants across {DOMAINS} sharded switch domains",
            self.tenants
        )?;
        let rows = vec![
            vec![
                "victims (local 64 B)".to_string(),
                format!("{:.2}", self.victim_ops_us),
            ],
            vec![
                "bulk (local 4 KiB)".to_string(),
                format!("{:.2}", self.bulk_ops_us),
            ],
            vec![
                "hogs (cross-domain 64 B)".to_string(),
                format!("{:.2}", self.hog_ops_us),
            ],
        ];
        write!(
            f,
            "{}",
            crate::fmt_table(&["tenant class", "ops/us"], &rows)
        )?;
        writeln!(
            f,
            "victim fairness {:.3} (Jain), {} events — cross-domain hogs keep \
             every inter-domain cable loaded in both directions",
            self.victim_fairness, self.total_events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scenario's scalar results and event count are identical for
    /// any worker fan-out (shards select threads, not decomposition).
    #[test]
    fn results_identical_across_worker_counts() {
        let base = run_x_captured_seeded(true, &mut Capture::disabled(), 7, 1);
        for workers in [2, 4] {
            let r = run_x_captured_seeded(true, &mut Capture::disabled(), 7, workers);
            assert_eq!(r.total_events, base.total_events, "workers={workers}");
            assert_eq!(r.victim_ops_us, base.victim_ops_us);
            assert_eq!(r.bulk_ops_us, base.bulk_ops_us);
            assert_eq!(r.hog_ops_us, base.hog_ops_us);
        }
    }

    #[test]
    fn every_tenant_class_makes_progress() {
        let r = run_x(true);
        assert_eq!(r.tenants, 64);
        assert!(r.victim_ops_us > 0.0, "victims starved completely");
        assert!(r.bulk_ops_us > 0.0, "bulk writers starved completely");
        assert!(r.hog_ops_us > 0.0, "hogs starved completely");
        assert!(r.victim_fairness > 0.5, "victim fairness collapsed");
    }
}
