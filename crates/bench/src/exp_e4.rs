//! E4 — design principle #1: data movement as a managed service.
//!
//! A worker must process `k` chunks of 64 KiB living in far memory, each
//! followed by a fixed compute phase. Two executions:
//!
//! * **Synchronous**: the worker itself loads each chunk with pipelined
//!   loads (the initiator *is* the executor), stalling for the whole
//!   transfer before computing — the paper's "stall-induced overheads".
//! * **Managed (eTrans)**: transfers are delegated to a migration agent
//!   via the elastic transaction engine, double-buffered: chunk `i+1`
//!   migrates into a staging device while the worker computes on chunk
//!   `i`, so transfer time hides behind compute.

use std::fmt;

use fcc_core::etrans::{
    ETrans, ETransDone, MigrationAgent, SubmitETrans, TransAttrs, TransOwnership, TransactionEngine,
};
use fcc_fabric::adapter::{HostCompletion, HostOp, HostRequest};
use fcc_fabric::topology::{self, FAM_BASE};
use fcc_sim::{Component, ComponentId, Ctx, Engine, Msg, SimTime};

use crate::calib;

const CHUNK: u32 = 64 * 1024;

/// E4 outcome.
pub struct E4Result {
    /// Chunks processed.
    pub chunks: usize,
    /// Compute per chunk (µs).
    pub compute_us: f64,
    /// Synchronous total completion time (µs).
    pub sync_us: f64,
    /// Managed (eTrans, double-buffered) completion time (µs).
    pub managed_us: f64,
    /// Time the synchronous worker spent stalled on transfers (µs).
    pub sync_stall_us: f64,
    /// Time the managed worker spent stalled (µs).
    pub managed_stall_us: f64,
}

impl E4Result {
    /// Completion-time speedup of the managed service.
    pub fn speedup(&self) -> f64 {
        self.sync_us / self.managed_us
    }
}

/// Self-message ending a compute phase.
#[derive(Debug, Clone, Copy)]
struct ComputeDone;

/// Synchronous worker: read chunk (as 4 KiB pipelined loads), compute,
/// repeat.
struct SyncWorker {
    fha: ComponentId,
    chunks: usize,
    compute: SimTime,
    current: usize,
    reads_left: u32,
    reads_out: u32,
    stall_started: SimTime,
    stall_total: SimTime,
    finished_at: Option<SimTime>,
    next_tag: u64,
}

const SUB: u32 = 4096;
const SUBS_PER_CHUNK: u32 = CHUNK / SUB;
const PIPELINE: u32 = 4;

impl SyncWorker {
    fn start_chunk(&mut self, ctx: &mut Ctx<'_>) {
        self.reads_left = SUBS_PER_CHUNK;
        self.reads_out = 0;
        self.stall_started = ctx.now();
        self.pump(ctx);
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        while self.reads_out < PIPELINE && self.reads_left > 0 {
            let idx = SUBS_PER_CHUNK - self.reads_left;
            self.reads_left -= 1;
            self.reads_out += 1;
            let tag = self.next_tag;
            self.next_tag += 1;
            ctx.send(
                self.fha,
                SimTime::ZERO,
                HostRequest {
                    op: HostOp::Read {
                        addr: FAM_BASE
                            + self.current as u64 * CHUNK as u64
                            + idx as u64 * SUB as u64,
                        bytes: SUB,
                    },
                    tag,
                    reply_to: ctx.self_id(),
                },
            );
        }
    }
}

impl Component for SyncWorker {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<HostCompletion>() {
            Ok(_hc) => {
                self.reads_out -= 1;
                if self.reads_left > 0 {
                    self.pump(ctx);
                } else if self.reads_out == 0 {
                    // Chunk loaded: stall over, compute.
                    self.stall_total += ctx.now() - self.stall_started;
                    ctx.send_self(self.compute, ComputeDone);
                }
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<ComputeDone>() {
            Ok(ComputeDone) => {
                self.current += 1;
                if self.current >= self.chunks {
                    self.finished_at = Some(ctx.now());
                } else {
                    self.start_chunk(ctx);
                }
            }
            Err(m) => {
                // Kick-off message.
                let _ = m;
                self.start_chunk(ctx);
            }
        }
    }
}

/// Managed worker: prefetches chunk `i+1` via eTrans while computing on
/// chunk `i`; waits only when the prefetch has not finished in time.
struct ManagedWorker {
    etrans: ComponentId,
    staging_base: u64,
    chunks: usize,
    compute: SimTime,
    current: usize,
    ready: Vec<bool>,
    computing: bool,
    stall_started: Option<SimTime>,
    stall_total: SimTime,
    finished_at: Option<SimTime>,
}

impl ManagedWorker {
    fn prefetch(&mut self, ctx: &mut Ctx<'_>, chunk: usize) {
        if chunk >= self.chunks {
            return;
        }
        ctx.send(
            self.etrans,
            SimTime::ZERO,
            SubmitETrans {
                etrans: ETrans {
                    src: vec![(FAM_BASE + chunk as u64 * CHUNK as u64, CHUNK)],
                    dst: vec![(self.staging_base + (chunk % 2) as u64 * CHUNK as u64, CHUNK)],
                    immediate: false,
                    attrs: TransAttrs::default(),
                    ownership: TransOwnership::Caller,
                },
                tag: chunk as u64,
                reply_to: ctx.self_id(),
            },
        );
    }

    fn try_compute(&mut self, ctx: &mut Ctx<'_>) {
        if self.computing || self.current >= self.chunks {
            return;
        }
        if self.ready[self.current] {
            if let Some(s) = self.stall_started.take() {
                self.stall_total += ctx.now() - s;
            }
            self.computing = true;
            // Prefetch the next chunk while computing this one.
            self.prefetch(ctx, self.current + 1);
            ctx.send_self(self.compute, ComputeDone);
        } else if self.stall_started.is_none() {
            self.stall_started = Some(ctx.now());
        }
    }
}

impl Component for ManagedWorker {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<ETransDone>() {
            Ok(done) => {
                self.ready[done.tag as usize] = true;
                self.try_compute(ctx);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<ComputeDone>() {
            Ok(ComputeDone) => {
                self.computing = false;
                self.current += 1;
                if self.current >= self.chunks {
                    self.finished_at = Some(ctx.now());
                } else {
                    self.try_compute(ctx);
                }
            }
            Err(m) => {
                // Kick-off: prefetch chunk 0 and wait.
                let _ = m;
                self.prefetch(ctx, 0);
                self.try_compute(ctx);
            }
        }
    }
}

/// Kick-off marker.
#[derive(Debug, Clone, Copy)]
struct Start;

/// Runs E4.
pub fn run(quick: bool) -> E4Result {
    run_seeded(quick, 0)
}

/// [`run`] with a caller-supplied RNG seed salt.
pub fn run_seeded(quick: bool, seed: u64) -> E4Result {
    let chunks = if quick { 8 } else { 32 };
    let compute = SimTime::from_us(20.0);
    // Synchronous.
    let sync = {
        let mut engine = Engine::new(0xE4 ^ seed);
        let topo = topology::single_switch(
            &mut engine,
            calib::topo_spec(),
            1,
            vec![calib::fam(1 << 30)],
        );
        let w = engine.add_component(
            "sync-worker",
            SyncWorker {
                fha: topo.hosts[0].fha,
                chunks,
                compute,
                current: 0,
                reads_left: 0,
                reads_out: 0,
                stall_started: SimTime::ZERO,
                stall_total: SimTime::ZERO,
                finished_at: None,
                next_tag: 0,
            },
        );
        engine.post(w, SimTime::ZERO, Start);
        engine.run_until_idle();
        let worker = engine.component::<SyncWorker>(w);
        (
            worker.finished_at.expect("finished").as_us(),
            worker.stall_total.as_us(),
        )
    };
    // Managed.
    let managed = {
        let mut engine = Engine::new((0xE4 + 1) ^ seed);
        // Two hosts: worker host + migration-agent host (same memory
        // domain), one far FAM + one staging device.
        let topo = topology::single_switch(
            &mut engine,
            calib::topo_spec(),
            2,
            vec![calib::fam(1 << 30), calib::staging(1 << 24)],
        );
        let staging_base = topo.devices[1].range.base;
        let agent = engine.add_component("agent", MigrationAgent::new(topo.hosts[1].fha, 4096, 4));
        let te = engine.add_component("etrans", TransactionEngine::new(vec![agent]));
        let w = engine.add_component(
            "managed-worker",
            ManagedWorker {
                etrans: te,
                staging_base,
                chunks,
                compute,
                current: 0,
                ready: vec![false; chunks],
                computing: false,
                stall_started: None,
                stall_total: SimTime::ZERO,
                finished_at: None,
            },
        );
        engine.post(w, SimTime::ZERO, Start);
        engine.run_until_idle();
        let worker = engine.component::<ManagedWorker>(w);
        (
            worker.finished_at.expect("finished").as_us(),
            worker.stall_total.as_us(),
        )
    };
    E4Result {
        chunks,
        compute_us: compute.as_us(),
        sync_us: sync.0,
        managed_us: managed.0,
        sync_stall_us: sync.1,
        managed_stall_us: managed.1,
    }
}

impl fmt::Display for E4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E4 — data movement as a managed service ({} x 64 KiB chunks, {:.0} us compute each)",
            self.chunks, self.compute_us
        )?;
        let rows = vec![
            vec![
                "synchronous loads".to_string(),
                format!("{:.0}", self.sync_us),
                format!("{:.0}", self.sync_stall_us),
            ],
            vec![
                "eTrans + migration agent".to_string(),
                format!("{:.0}", self.managed_us),
                format!("{:.0}", self.managed_stall_us),
            ],
        ];
        write!(
            f,
            "{}",
            crate::fmt_table(&["mode", "completion (us)", "worker stall (us)"], &rows)
        )?;
        writeln!(f, "managed-service speedup: {:.2}x", self.speedup())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn managed_movement_hides_transfer_stalls() {
        let r = run(true);
        assert!(
            r.speedup() > 1.15,
            "managed must beat sync: {} vs {}",
            r.sync_us,
            r.managed_us
        );
        assert!(
            r.managed_stall_us < r.sync_stall_us / 3.0,
            "stalls mostly hidden: {} vs {}",
            r.managed_stall_us,
            r.sync_stall_us
        );
        // Managed completion approaches the compute-only floor.
        let floor = r.chunks as f64 * r.compute_us;
        assert!(
            r.managed_us < floor * 1.35,
            "{} vs floor {floor}",
            r.managed_us
        );
    }
}
