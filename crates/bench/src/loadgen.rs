//! A closed-loop load generator over an FHA.
//!
//! Keeps `window` operations of a fixed size in flight against a region,
//! recording per-op latency. Used by the E3 switch experiments, which need
//! transfer sizes the cache-line-granular `CpuCore` does not issue
//! (e.g. the paper's 16 KiB interfering writes).

use fcc_fabric::adapter::{HostCompletion, HostOp, HostRequest};
use fcc_sim::{Component, ComponentId, Ctx, Histogram, Msg, SimTime};

/// Starts a load generator run.
#[derive(Debug, Clone, Copy)]
pub struct StartLoad;

/// Address selection.
#[derive(Debug, Clone, Copy)]
pub enum AddrPattern {
    /// Sequential with wraparound.
    Sequential,
    /// Uniform random (cacheline aligned).
    Random,
}

/// Configuration for a [`LoadGen`].
#[derive(Debug, Clone, Copy)]
pub struct LoadCfg {
    /// Target FHA.
    pub fha: ComponentId,
    /// Region base address.
    pub base: u64,
    /// Region length.
    pub len: u64,
    /// Bytes per operation.
    pub op_bytes: u32,
    /// Whether ops are writes.
    pub write: bool,
    /// Operations kept in flight.
    pub window: usize,
    /// Total operations to issue (`None` = run until `stop_at`).
    pub count: Option<u64>,
    /// Stop issuing at this time (open-ended runs).
    pub stop_at: SimTime,
    /// Address pattern.
    pub pattern: AddrPattern,
}

/// The load generator component.
pub struct LoadGen {
    cfg: LoadCfg,
    issued: u64,
    completed: u64,
    in_flight: usize,
    cursor: u64,
    next_tag: u64,
    started: bool,
    /// Per-op latency (ps).
    pub latency: Histogram,
    /// Completion time of the last op.
    pub finished_at: SimTime,
}

impl LoadGen {
    /// Creates a generator.
    pub fn new(cfg: LoadCfg) -> Self {
        LoadGen {
            cfg,
            issued: 0,
            completed: 0,
            in_flight: 0,
            cursor: 0,
            next_tag: 0,
            started: false,
            latency: Histogram::new(),
            finished_at: SimTime::ZERO,
        }
    }

    /// Completed operations.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Achieved throughput in operations/µs over the run.
    pub fn ops_per_us(&self) -> f64 {
        if self.finished_at == SimTime::ZERO {
            0.0
        } else {
            self.completed as f64 / self.finished_at.as_us()
        }
    }

    fn next_addr(&mut self, ctx: &mut Ctx<'_>) -> u64 {
        let slots = (self.cfg.len / self.cfg.op_bytes.max(64) as u64).max(1);
        let slot = match self.cfg.pattern {
            AddrPattern::Sequential => {
                let s = self.cursor % slots;
                self.cursor += 1;
                s
            }
            AddrPattern::Random => {
                use rand::Rng;
                ctx.rng().gen_range(0..slots)
            }
        };
        self.cfg.base + slot * self.cfg.op_bytes.max(64) as u64
    }

    fn may_issue(&self, now: SimTime) -> bool {
        if let Some(count) = self.cfg.count {
            if self.issued >= count {
                return false;
            }
        } else if now >= self.cfg.stop_at {
            return false;
        }
        self.in_flight < self.cfg.window
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        while self.may_issue(ctx.now()) {
            let addr = self.next_addr(ctx);
            let tag = self.next_tag;
            self.next_tag += 1;
            self.issued += 1;
            self.in_flight += 1;
            let op = if self.cfg.write {
                HostOp::Write {
                    addr,
                    bytes: self.cfg.op_bytes,
                }
            } else {
                HostOp::Read {
                    addr,
                    bytes: self.cfg.op_bytes,
                }
            };
            ctx.send(
                self.cfg.fha,
                SimTime::ZERO,
                HostRequest {
                    op,
                    tag,
                    reply_to: ctx.self_id(),
                },
            );
        }
    }
}

impl Component for LoadGen {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<StartLoad>() {
            Ok(StartLoad) => {
                assert!(!self.started, "load generator restarted");
                self.started = true;
                self.pump(ctx);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<HostCompletion>() {
            Ok(hc) => {
                self.in_flight -= 1;
                self.completed += 1;
                self.latency.record_time(hc.latency());
                self.finished_at = ctx.now();
                self.pump(ctx);
            }
            Err(m) => panic!("loadgen: unexpected message {}", m.type_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use fcc_fabric::topology::{self, FAM_BASE};
    use fcc_sim::Engine;

    use crate::calib;

    use super::*;

    #[test]
    fn closed_loop_completes_count() {
        let mut engine = Engine::new(1);
        let topo = topology::single_switch(
            &mut engine,
            calib::topo_spec(),
            1,
            vec![calib::fam(1 << 24)],
        );
        let lg = engine.add_component(
            "lg",
            LoadGen::new(LoadCfg {
                fha: topo.hosts[0].fha,
                base: FAM_BASE,
                len: 1 << 20,
                op_bytes: 64,
                write: true,
                window: 4,
                count: Some(100),
                stop_at: SimTime::MAX,
                pattern: AddrPattern::Sequential,
            }),
        );
        engine.post(lg, SimTime::ZERO, StartLoad);
        engine.run_until_idle();
        let g = engine.component::<LoadGen>(lg);
        assert_eq!(g.completed(), 100);
        assert!(g.latency.summary_ns().p50 > 1000.0, "remote write > 1us");
        assert!(g.ops_per_us() > 1.0, "window 4 pipelines");
    }

    #[test]
    fn timed_run_stops_at_deadline() {
        let mut engine = Engine::new(1);
        let topo = topology::single_switch(
            &mut engine,
            calib::topo_spec(),
            1,
            vec![calib::fam(1 << 24)],
        );
        let lg = engine.add_component(
            "lg",
            LoadGen::new(LoadCfg {
                fha: topo.hosts[0].fha,
                base: FAM_BASE,
                len: 1 << 20,
                op_bytes: 64,
                write: false,
                window: 8,
                count: None,
                stop_at: SimTime::from_us(50.0),
                pattern: AddrPattern::Random,
            }),
        );
        engine.post(lg, SimTime::ZERO, StartLoad);
        engine.run_until_idle();
        let g = engine.component::<LoadGen>(lg);
        assert!(g.completed() > 10);
        assert!(g.finished_at < SimTime::from_us(60.0));
    }
}
