//! A small deterministic fork-join runner for scenario fan-out.
//!
//! The build environment carries no `rayon`, so this is the std-only
//! equivalent of a work-stealing `par_map` specialized to the harness's
//! needs: a bounded pool of scoped threads claims items off a shared
//! cursor, runs them, and files results back *by input index*, so the
//! output order (and therefore every downstream export) is independent of
//! thread scheduling. Combined with per-item isolated `Engine`s this is
//! the classic embarrassingly-parallel regime of parallel DES (Fujimoto):
//! replicates share nothing, so no synchronization protocol is needed —
//! only deterministic result assembly.
//!
//! Claiming follows a longest-job-first schedule (callers pass a cost
//! estimate per item): with 20 scenarios whose durations span 3 orders of
//! magnitude, starting the long poles first keeps the makespan near
//! `max(longest item, total/cores)` instead of stranding a long tail on
//! one core.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Maps `f` over `items` on up to `jobs` threads, returning results in
/// input order.
///
/// `cost` supplies a relative duration estimate per item; higher-cost
/// items are claimed first (ties fall back to input order). `f` receives
/// `(input_index, item)`. With `jobs <= 1` (or a single item) everything
/// runs inline on the caller's thread — byte-identical results either
/// way, just without the thread pool.
///
/// # Panics
///
/// Propagates panics from `f` (via scoped-thread join).
pub fn par_map<T, R>(
    items: Vec<T>,
    jobs: usize,
    cost: impl Fn(usize, &T) -> u64,
    f: impl Fn(usize, T) -> R + Sync,
) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let n = items.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    // Longest-job-first claim order; stable on ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| cost(b, &items[b]).cmp(&cost(a, &items[a])).then(a.cmp(&b)));

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&idx) = order.get(k) else {
                    break;
                };
                // Poisoning only happens when another worker panicked,
                // and scope() is about to propagate that panic anyway.
                let item = work[idx]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take();
                let Some(item) = item else {
                    continue;
                };
                let r = f(idx, item);
                results.lock().unwrap_or_else(PoisonError::into_inner)[idx] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Some(r) => r,
            // Unreachable: every index is claimed exactly once and scope()
            // re-raises worker panics before we get here.
            None => panic!("runner produced no result for item {i}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..50).collect();
        // Cost inversely related to index: late items are claimed first,
        // yet results must land by input index.
        let out = par_map(items, 4, |i, _| 1000 - i as u64, |i, v| (i, v * 2));
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*doubled, (i as u64) * 2);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_map(items.clone(), 1, |_, _| 0, |i, v| v * 31 + i as u64);
        let parallel = par_map(items, 8, |_, _| 0, |i, v| v * 31 + i as u64);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = par_map(
            vec![(); 100],
            7,
            |_, _| 1,
            |_, ()| counter.fetch_add(1, Ordering::Relaxed),
        );
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_and_single_item_edge_cases() {
        let none: Vec<u32> = par_map(Vec::<u32>::new(), 4, |_, _| 0, |_, v| v);
        assert!(none.is_empty());
        let one = par_map(vec![9u32], 4, |_, _| 0, |_, v| v + 1);
        assert_eq!(one, vec![10]);
    }
}
