//! Memory-node-type comparison (§3 Difference #2, measured).
//!
//! The paper's point: "the performance and efficiency of memory fabric
//! hinge on the chosen memory node type and its access pattern and
//! locality". Here the CPU-less expander and the CC-NUMA node run through
//! the full fabric simulation:
//!
//! * **expander**: every access crosses the fabric — cheap hardware,
//!   constant (high) latency;
//! * **CC-NUMA, private lines**: after the cold miss, a [`CoherentL1`]
//!   hits locally — directory hardware buys locality;
//! * **CC-NUMA, write-shared lines**: two hosts ping-pong a line; every
//!   write pays a directory round trip *plus* a snoop round trip to the
//!   other host — coherence has a price exactly when sharing is real.

use std::fmt;

use fcc_cache::coherent::{CoherentAccess, CoherentDone, CoherentL1};
use fcc_fabric::adapter::{Fha, HostCompletion, HostOp, HostRequest};
use fcc_fabric::switch::{FabricSwitch, SwitchConfig};
use fcc_memnode::ccnuma::DirectoryNode;
use fcc_memnode::dram::DramTiming;
use fcc_proto::addr::{AddrMap, AddrRange, NodeId};
use fcc_proto::link::CreditConfig;
use fcc_proto::phys::PhysConfig;
use fcc_sim::{Component, ComponentId, Ctx, Engine, Msg, SimTime};

/// Node-type comparison outcome (mean ns per access).
pub struct NodeTypeResult {
    /// Raw expander access (every op crosses the fabric).
    pub expander_ns: f64,
    /// CC-NUMA private working set: cold miss then local hits.
    pub ccnuma_private_ns: f64,
    /// CC-NUMA write-shared line ping-pong between two hosts.
    pub ccnuma_pingpong_ns: f64,
    /// Snoops the directory issued during the ping-pong phase.
    pub snoops: u64,
}

struct Collect {
    latencies: Vec<SimTime>,
}

impl Component for Collect {
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<CoherentDone>() {
            Ok(d) => {
                self.latencies.push(d.latency);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<HostCompletion>() {
            Ok(hc) => self.latencies.push(hc.latency()),
            Err(m) => panic!("collect: unexpected {}", m.type_name()),
        }
    }
}

struct Rig {
    engine: Engine,
    fhas: Vec<ComponentId>,
    caches: Vec<ComponentId>,
    dir: ComponentId,
    sink: ComponentId,
}

fn build(seed: u64) -> Rig {
    let mut engine = Engine::new(0xD2 ^ seed);
    let phys = PhysConfig::omega_like();
    let credit = CreditConfig::default();
    let dir_nid = NodeId(10);
    let mut map = AddrMap::new();
    map.add_direct(AddrRange::new(0, 1 << 24), dir_nid);
    let sw = engine.add_component("fs", FabricSwitch::new(SwitchConfig::fabrex_like()));
    let mut fhas = Vec::new();
    let mut caches = Vec::new();
    for h in 0..2u16 {
        let nid = NodeId(1 + h);
        let fha = engine.add_component(
            format!("fha{h}"),
            Fha::new(nid, phys, credit, map.clone(), 8),
        );
        let cache = engine.add_component(
            format!("l1-{h}"),
            CoherentL1::new(fha, 256, SimTime::from_ns(5.0)),
        );
        engine.component_mut::<Fha>(fha).set_snoop_handler(cache);
        {
            let s = engine.component_mut::<FabricSwitch>(sw);
            let p = s.add_port();
            s.connect(p, fha);
            s.routing.add_pbr(nid, p);
        }
        engine.component_mut::<Fha>(fha).connect(sw);
        fhas.push(fha);
        caches.push(cache);
    }
    let dir = engine.add_component(
        "ccnuma",
        DirectoryNode::new(dir_nid, phys, credit, DramTiming::default(), 1 << 24),
    );
    {
        let s = engine.component_mut::<FabricSwitch>(sw);
        let p = s.add_port();
        s.connect(p, dir);
        s.routing.add_pbr(dir_nid, p);
    }
    engine.component_mut::<DirectoryNode>(dir).connect(sw);
    let sink = engine.add_component("collect", Collect { latencies: vec![] });
    Rig {
        engine,
        fhas,
        caches,
        dir,
        sink,
    }
}

fn drain_mean(rig: &mut Rig) -> f64 {
    rig.engine.run_until_idle();
    let c = rig.engine.component_mut::<Collect>(rig.sink);
    let lats = std::mem::take(&mut c.latencies);
    if lats.is_empty() {
        return 0.0;
    }
    lats.iter().map(|l| l.as_ns()).sum::<f64>() / lats.len() as f64
}

/// Runs the node-type comparison.
pub fn run(quick: bool) -> NodeTypeResult {
    run_seeded(quick, 0)
}

/// [`run`] with a caller-supplied RNG seed salt.
pub fn run_seeded(quick: bool, seed: u64) -> NodeTypeResult {
    let ops = if quick { 100 } else { 500 };
    // Expander-style: raw CXL.mem reads through the FHA (no local cache).
    let expander_ns = {
        let mut rig = build(seed);
        for i in 0..ops {
            let sink = rig.sink;
            rig.engine.post(
                rig.fhas[0],
                rig.engine.now(),
                HostRequest {
                    op: HostOp::Read {
                        addr: 0x10_0000 + i * 64,
                        bytes: 64,
                    },
                    tag: i,
                    reply_to: sink,
                },
            );
            rig.engine.run_until_idle();
        }
        drain_mean(&mut rig)
    };
    // CC-NUMA private: host 0 loops over a 64-line set that fits its L1.
    // One warm-up pass populates the cache; only the steady state counts.
    let ccnuma_private_ns = {
        let mut rig = build(seed);
        for warm in 0..64u64 {
            let sink = rig.sink;
            rig.engine.post(
                rig.caches[0],
                rig.engine.now(),
                CoherentAccess {
                    addr: 0x20_0000 + warm * 64,
                    write: false,
                    tag: warm,
                    reply_to: sink,
                },
            );
            rig.engine.run_until_idle();
        }
        let _ = drain_mean(&mut rig); // discard the cold pass.
        for round in 0..ops {
            let line = 0x20_0000 + (round % 64) * 64;
            let sink = rig.sink;
            rig.engine.post(
                rig.caches[0],
                rig.engine.now(),
                CoherentAccess {
                    addr: line,
                    write: false,
                    tag: 1000 + round,
                    reply_to: sink,
                },
            );
            rig.engine.run_until_idle();
        }
        drain_mean(&mut rig)
    };
    // CC-NUMA write-shared ping-pong on one line.
    let (ccnuma_pingpong_ns, snoops) = {
        let mut rig = build(seed);
        for round in 0..ops {
            let sink = rig.sink;
            rig.engine.post(
                rig.caches[(round % 2) as usize],
                rig.engine.now(),
                CoherentAccess {
                    addr: 0x30_0000,
                    write: true,
                    tag: round,
                    reply_to: sink,
                },
            );
            rig.engine.run_until_idle();
        }
        let mean = drain_mean(&mut rig);
        let snoops = rig
            .engine
            .component::<DirectoryNode>(rig.dir)
            .snoops_issued
            .get();
        (mean, snoops)
    };
    NodeTypeResult {
        expander_ns,
        ccnuma_private_ns,
        ccnuma_pingpong_ns,
        snoops,
    }
}

impl fmt::Display for NodeTypeResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "node types — §3 D#2 measured through the fabric (FabreX-like wire)"
        )?;
        let rows = vec![
            vec![
                "CPU-less expander (every access remote)".to_string(),
                format!("{:.0}", self.expander_ns),
            ],
            vec![
                "CC-NUMA, private working set (cached)".to_string(),
                format!("{:.0}", self.ccnuma_private_ns),
            ],
            vec![
                "CC-NUMA, write-shared ping-pong".to_string(),
                format!("{:.0}", self.ccnuma_pingpong_ns),
            ],
        ];
        write!(
            f,
            "{}",
            crate::fmt_table(&["node type / pattern", "mean access (ns)"], &rows)
        )?;
        writeln!(
            f,
            "directory snoops during ping-pong: {} (every write after the \
             first invalidates the other host)",
            self.snoops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_type_ordering_holds() {
        let r = run(true);
        // Private CC-NUMA data caches locally: far below the expander.
        assert!(
            r.ccnuma_private_ns < r.expander_ns / 5.0,
            "cached {} vs expander {}",
            r.ccnuma_private_ns,
            r.expander_ns
        );
        // Write sharing pays for the snoop round trip: worse than the
        // plain expander access.
        assert!(
            r.ccnuma_pingpong_ns > r.expander_ns,
            "ping-pong {} vs expander {}",
            r.ccnuma_pingpong_ns,
            r.expander_ns
        );
        // Nearly every ping-pong write snoops the other side.
        assert!(r.snoops as f64 > 0.8 * 100.0);
    }
}
